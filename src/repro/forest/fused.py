"""Fused flat-array evaluator for a fitted forest.

:class:`~repro.forest.tree.DecisionTreeRegressor` already stores each
tree as flat ``feature/threshold/left/right/value`` arrays.  Prediction
over a *forest* nevertheless pays per-tree Python dispatch: one method
call, five attribute loads and a NumPy-scalar-indexing walk per tree
per sample.  That dispatch dominates the simulator's wall-clock — the
dynamic chunker invokes the forest inside its binary search on every
scheduling iteration.

:class:`FusedForest` stacks all trees' node arrays into one structure
(child indices rebased to global node ids) and offers two evaluators:

* :meth:`leaf_votes_one` — a single feature vector.  The node tables
  are kept as plain Python lists, because CPython list indexing is
  several times faster than NumPy scalar indexing on this access
  pattern; one flat loop walks every tree without per-tree dispatch.
* :meth:`leaf_votes` — a matrix of rows, traversed level-synchronously
  with vectorized NumPy gathers: all (row, tree) walkers descend one
  level per pass, so the loop count is the maximum depth, not
  ``n_rows * n_trees``.

Both return the per-tree *leaf votes* so the caller can apply exactly
the same aggregation (mean or quantile) as the reference per-tree
path — the fused evaluators are bit-identical to it by construction.
"""

from __future__ import annotations

import numpy as np

from repro.forest.tree import _NO_CHILD, DecisionTreeRegressor


class FusedForest:
    """All trees of a fitted forest, stacked into one node table."""

    def __init__(self, trees: list[DecisionTreeRegressor]) -> None:
        if not trees:
            raise ValueError("need at least one fitted tree")
        features: list[np.ndarray] = []
        thresholds: list[np.ndarray] = []
        lefts: list[np.ndarray] = []
        rights: list[np.ndarray] = []
        values: list[np.ndarray] = []
        roots: list[int] = []
        offset = 0
        for tree in trees:
            if tree._feature is None:
                raise ValueError("all trees must be fitted")
            n = tree.node_count
            roots.append(offset)
            features.append(tree._feature)
            thresholds.append(tree._threshold)
            # Rebase child pointers to the stacked table; leaves keep
            # their sentinel so the traversal terminates identically.
            left = tree._left.copy()
            right = tree._right.copy()
            left[left != _NO_CHILD] += offset
            right[right != _NO_CHILD] += offset
            lefts.append(left)
            rights.append(right)
            values.append(tree._value)
            offset += n

        self.n_trees = len(trees)
        self.roots = np.array(roots, dtype=np.int64)
        self.feature = np.concatenate(features)
        self.threshold = np.concatenate(thresholds)
        self.left = np.concatenate(lefts)
        self.right = np.concatenate(rights)
        self.value = np.concatenate(values)
        # Leaves point at themselves in the scalar fast path: the walk
        # below then needs no sentinel test inside the loop.
        self.max_depth = self._measure_depth()
        # Python-list mirrors for the scalar walk (CPython list
        # indexing beats NumPy scalar indexing ~3x on this pattern).
        self._py_feature: list[int] = self.feature.tolist()
        self._py_threshold: list[float] = self.threshold.tolist()
        self._py_left: list[int] = self.left.tolist()
        self._py_right: list[int] = self.right.tolist()
        self._py_value: list[float] = self.value.tolist()
        self._py_roots: list[int] = self.roots.tolist()

    def _measure_depth(self) -> int:
        """Longest root-to-leaf path in the stacked table."""
        depth = np.zeros(len(self.feature), dtype=np.int64)
        deepest = 0
        for root in self.roots.tolist():
            depth[root] = 0
        # Children always have larger ids than their parent within a
        # tree (fit() appends), and roots restart at each offset, so a
        # single forward sweep computes depths.
        for node in range(len(self.feature)):
            if self.feature[node] == _NO_CHILD:
                deepest = max(deepest, int(depth[node]))
                continue
            depth[self.left[node]] = depth[node] + 1
            depth[self.right[node]] = depth[node] + 1
        return deepest

    def leaf_votes_one(self, features) -> list[float]:
        """Per-tree leaf values for one sample, in tree order.

        Bit-identical to ``[tree.predict_one(features) for tree in
        trees]``: same nodes, same comparisons, same leaf payloads.
        """
        feat = self._py_feature
        thresh = self._py_threshold
        left = self._py_left
        right = self._py_right
        value = self._py_value
        votes: list[float] = []
        for node in self._py_roots:
            f = feat[node]
            while f != _NO_CHILD:
                if features[f] <= thresh[node]:
                    node = left[node]
                else:
                    node = right[node]
                f = feat[node]
            votes.append(value[node])
        return votes

    def leaf_votes(self, x: np.ndarray) -> np.ndarray:
        """Per-tree leaf values for a batch: shape (n_rows, n_trees).

        All (row, tree) walkers advance one level per pass, so the
        Python-level loop runs ``max_depth`` times regardless of batch
        size.  Votes are bit-identical to the scalar walk: the same
        ``x <= threshold`` comparisons route to the same leaves.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        n_rows = x.shape[0]
        node = np.broadcast_to(self.roots, (n_rows, self.n_trees)).copy()
        rows = np.arange(n_rows)[:, None]
        for _ in range(self.max_depth):
            feat = self.feature[node]
            internal = feat != _NO_CHILD
            if not internal.any():
                break
            fv = x[rows, np.where(internal, feat, 0)]
            go_left = fv <= self.threshold[node]
            nxt = np.where(go_left, self.left[node], self.right[node])
            node = np.where(internal, nxt, node)
        return self.value[node]
