"""Bagged random forest over :class:`DecisionTreeRegressor`.

Supports mean aggregation (standard regression) and quantile
aggregation across trees; the dynamic chunker uses a high latency
quantile so that chunk-size predictions err small, matching the
under-prediction tuning described in Section 3.6.1 of the paper.
"""

from __future__ import annotations

import math

import numpy as np

from repro.forest.fused import FusedForest
from repro.forest.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees."""

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        """Args:
        n_trees: Number of bootstrap trees.
        max_depth: Depth limit per tree.
        min_samples_leaf: Leaf-size minimum per tree.
        max_features: Features sampled per split (``None`` = all).
        seed: Seed for bootstrap sampling and feature sub-sampling.
        """
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: list[DecisionTreeRegressor] = []
        self._fused: FusedForest | None = None

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit ``n_trees`` trees on bootstrap resamples of (x, y)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(x) != len(y):
            raise ValueError("x and y must have the same length")
        if len(x) == 0:
            raise ValueError("cannot fit a forest on zero samples")
        rng = np.random.default_rng(self.seed)
        n = len(x)
        self._trees = []
        for _ in range(self.n_trees):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            )
            tree.fit(x[sample], y[sample])
            self._trees.append(tree)
        self._fused = None  # stale node tables; rebuilt lazily
        return self

    @property
    def fused(self) -> FusedForest:
        """Stacked flat-array evaluator over all trees (lazily built)."""
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        if self._fused is None:
            self._fused = FusedForest(self._trees)
        return self._fused

    @staticmethod
    def _aggregate(votes: list[float], quantile: float | None) -> float:
        """Collapse per-tree votes; shared by every prediction path so
        the fused evaluators stay bit-identical to the per-tree one.

        The quantile branch hand-rolls ``np.quantile(votes, q)`` with
        the default linear interpolation — same arithmetic (including
        the ``gamma >= 0.5`` lerp form NumPy uses for floating-point
        symmetry), so the result is bit-identical while skipping
        ~30us of ufunc dispatch on a ~16-element vote list.  Pinned
        against ``np.quantile`` in ``tests/test_forest_fused.py``.
        """
        if quantile is None:
            return float(sum(votes) / len(votes))
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(
                f"quantile must be in [0, 1], got {quantile}"
            )
        ordered = sorted(votes)
        virtual = quantile * (len(votes) - 1)
        lo = math.floor(virtual)
        gamma = virtual - lo
        a = ordered[lo]
        b = ordered[min(lo + 1, len(votes) - 1)]
        diff = b - a
        if gamma >= 0.5:
            return float(b - diff * (1.0 - gamma))
        return float(a + diff * gamma)

    def predict_one(
        self,
        features: np.ndarray | tuple[float, ...],
        quantile: float | None = None,
    ) -> float:
        """Predict one sample.

        Args:
            features: Feature vector.
            quantile: When given, return this quantile of the per-tree
                predictions instead of their mean.  A high quantile
                (e.g. 0.8) yields conservative (large) latency
                estimates, which the chunker uses to stay on the safe
                side of SLOs.
        """
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        votes = self.fused.leaf_votes_one(features)
        return self._aggregate(votes, quantile)

    def predict_one_pertree(
        self,
        features: np.ndarray | tuple[float, ...],
        quantile: float | None = None,
    ) -> float:
        """Reference per-tree evaluation path.

        Kept as the ground truth the fused evaluator is tested — and
        benchmarked — against; see ``tests/test_forest_fused.py``.
        """
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        votes = [tree.predict_one(features) for tree in self._trees]
        return self._aggregate(votes, quantile)

    def predict_batch(
        self, x: np.ndarray, quantile: float | None = None
    ) -> np.ndarray:
        """Predict many samples with one level-synchronous traversal.

        Rows are walked through all trees simultaneously (see
        :meth:`FusedForest.leaf_votes`); the per-row aggregation is the
        same helper the scalar path uses, so results are bit-identical
        to ``[predict_one(row) for row in x]``.
        """
        if not self._trees:
            raise RuntimeError("forest is not fitted")
        votes = self.fused.leaf_votes(x)
        return np.array(
            [self._aggregate(row.tolist(), quantile) for row in votes]
        )

    def predict(
        self, x: np.ndarray, quantile: float | None = None
    ) -> np.ndarray:
        """Predict a batch of samples."""
        return self.predict_batch(x, quantile=quantile)

    def mean_relative_error(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean |pred - y| / y on a held-out set (paper cites <10%)."""
        y = np.asarray(y, dtype=np.float64)
        preds = self.predict_batch(x)
        mask = y > 0
        return float(np.mean(np.abs(preds[mask] - y[mask]) / y[mask]))
