"""CART regression tree with variance-reduction (MSE) splits.

Nodes are stored in flat arrays rather than linked objects so that
prediction — which the scheduler performs many times per simulated
iteration — is a tight iterative loop.
"""

from __future__ import annotations

import numpy as np

_NO_CHILD = -1


class DecisionTreeRegressor:
    """A binary regression tree grown greedily to minimize MSE.

    Attributes:
        max_depth: Maximum tree depth (root is depth 0).
        min_samples_leaf: A split is rejected if it would create a leaf
            smaller than this.
        min_samples_split: Nodes smaller than this become leaves.
        max_features: Number of features considered per split; ``None``
            considers all.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        min_samples_split: int = 4,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._rng = rng or np.random.default_rng(0)
        # Flat node arrays, filled by fit().
        self._feature: np.ndarray | None = None
        self._threshold: np.ndarray | None = None
        self._left: np.ndarray | None = None
        self._right: np.ndarray | None = None
        self._value: np.ndarray | None = None

    @property
    def node_count(self) -> int:
        return 0 if self._feature is None else len(self._feature)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on training matrix ``x`` and targets ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if len(x) != len(y):
            raise ValueError("x and y must have the same length")
        if len(x) == 0:
            raise ValueError("cannot fit a tree on zero samples")

        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        values: list[float] = []

        def new_node() -> int:
            features.append(_NO_CHILD)
            thresholds.append(0.0)
            lefts.append(_NO_CHILD)
            rights.append(_NO_CHILD)
            values.append(0.0)
            return len(features) - 1

        # Iterative depth-first growth with an explicit stack keeps us
        # clear of Python's recursion limit on deep trees.
        root = new_node()
        stack: list[tuple[int, np.ndarray, int]] = [
            (root, np.arange(len(x)), 0)
        ]
        while stack:
            node, idx, depth = stack.pop()
            y_node = y[idx]
            values[node] = float(y_node.mean())
            if (
                depth >= self.max_depth
                or len(idx) < self.min_samples_split
                or float(y_node.max() - y_node.min()) == 0.0
            ):
                continue
            split = self._best_split(x, y, idx)
            if split is None:
                continue
            feat, thresh, left_idx, right_idx = split
            left = new_node()
            right = new_node()
            features[node] = feat
            thresholds[node] = thresh
            lefts[node] = left
            rights[node] = right
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))

        self._feature = np.array(features, dtype=np.int64)
        self._threshold = np.array(thresholds, dtype=np.float64)
        self._left = np.array(lefts, dtype=np.int64)
        self._right = np.array(rights, dtype=np.int64)
        self._value = np.array(values, dtype=np.float64)
        return self

    def _best_split(
        self, x: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> tuple[int, float, np.ndarray, np.ndarray] | None:
        """Return (feature, threshold, left_idx, right_idx) or None.

        For each candidate feature the samples are sorted once and the
        sum-of-squared-errors of every prefix/suffix pair is evaluated
        with prefix sums, so the scan is O(n log n) per feature.
        """
        n_features = x.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            candidates = self._rng.choice(
                n_features, size=self.max_features, replace=False
            )
        else:
            candidates = np.arange(n_features)

        y_node = y[idx]
        n = len(idx)
        total_sum = y_node.sum()
        total_sq = float(y_node @ y_node)
        parent_sse = total_sq - total_sum * total_sum / n

        best_gain = 1e-12  # require strictly positive improvement
        best: tuple[int, float, np.ndarray, np.ndarray] | None = None
        min_leaf = self.min_samples_leaf
        for feat in candidates:
            col = x[idx, feat]
            order = np.argsort(col, kind="stable")
            col_sorted = col[order]
            y_sorted = y_node[order]
            prefix_sum = np.cumsum(y_sorted)
            prefix_sq = np.cumsum(y_sorted * y_sorted)

            # Valid split positions: between i-1 and i where the value
            # changes and both sides satisfy the leaf-size minimum.
            positions = np.arange(min_leaf, n - min_leaf + 1)
            if len(positions) == 0:
                continue
            changed = col_sorted[positions] != col_sorted[positions - 1]
            positions = positions[changed]
            if len(positions) == 0:
                continue

            left_n = positions.astype(np.float64)
            left_sum = prefix_sum[positions - 1]
            left_sq = prefix_sq[positions - 1]
            right_n = n - left_n
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            sse = (
                left_sq
                - left_sum * left_sum / left_n
                + right_sq
                - right_sum * right_sum / right_n
            )
            gains = parent_sse - sse
            k = int(np.argmax(gains))
            if gains[k] > best_gain:
                pos = positions[k]
                thresh = 0.5 * (col_sorted[pos - 1] + col_sorted[pos])
                left_mask = order[:pos]
                right_mask = order[pos:]
                best = (
                    int(feat),
                    float(thresh),
                    idx[left_mask],
                    idx[right_mask],
                )
                best_gain = gains[k]
        return best

    def predict_one(self, features: np.ndarray | tuple[float, ...]) -> float:
        """Predict a single sample; the scheduler's hot path."""
        if self._feature is None:
            raise RuntimeError("tree is not fitted")
        node = 0
        feature = self._feature
        threshold = self._threshold
        left = self._left
        right = self._right
        while feature[node] != _NO_CHILD:
            if features[feature[node]] <= threshold[node]:
                node = left[node]
            else:
                node = right[node]
        return float(self._value[node])

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict a batch of samples."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        return np.array([self.predict_one(row) for row in x])
