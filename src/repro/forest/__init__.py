"""A from-scratch random-forest regressor (NumPy only).

The paper trains "a lightweight random forest model which predicts the
execution time of a given batch" (Section 3.6.1).  scikit-learn is not
a dependency of this reproduction, so this package implements the two
pieces needed: CART regression trees with variance-reduction splits,
and a bagged forest with optional quantile aggregation — the quantile
is how we reproduce the paper's "tune the model to err on the side of
under-predicting chunk size" (over-predicting latency).
"""

from repro.forest.tree import DecisionTreeRegressor
from repro.forest.forest import RandomForestRegressor
from repro.forest.fused import FusedForest

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor", "FusedForest"]
