"""Deadline-violation accounting (Figures 10-12 vocabulary).

A request violates its SLO when its governing deadline is missed:
TTFT for interactive tiers, TTLT for non-interactive ones.  TBT misses
are tracked separately (the paper reports them as negligible once the
chunk budget respects the strictest tier).  Violations are broken down
overall, per QoS bucket, by request length (short vs long at the 90th
percentile of prompt tokens, Figure 11) and by importance hint
(Figure 12's "Important" column).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.request import Request


@dataclass
class ViolationReport:
    """Violation percentages over one run.

    All percentages are in [0, 100].  ``long_threshold`` records the
    prompt-length cutoff used for the short/long split.
    """

    total_requests: int
    overall_pct: float
    short_pct: float
    long_pct: float
    important_pct: float
    low_priority_pct: float
    per_tier_pct: dict[str, float] = field(default_factory=dict)
    tbt_miss_pct: float = 0.0
    relegated_pct: float = 0.0
    long_threshold: float = 0.0

    def tier(self, name: str) -> float:
        """Violation percentage of one QoS bucket (NaN if absent)."""
        return self.per_tier_pct.get(name, float("nan"))


def _pct(flags: np.ndarray, mask: np.ndarray | None = None) -> float:
    if mask is not None:
        flags = flags[mask]
    if len(flags) == 0:
        return float("nan")
    return float(100.0 * flags.mean())


def violation_report(
    requests: Iterable[Request],
    now: float | None = None,
    long_percentile: float = 90.0,
) -> ViolationReport:
    """Compute the full violation breakdown for a set of requests.

    Args:
        requests: Requests that were submitted during the measurement
            interval (finished or not).
        now: Measurement timestamp; unfinished requests whose deadline
            has not yet passed at ``now`` are *excluded* (their outcome
            is unknown).  With ``now=None`` unfinished requests count
            as violations.
        long_percentile: Prompt-length percentile splitting short from
            long requests (paper: 90th).
    """
    requests = list(requests)
    if now is not None:
        requests = [
            r
            for r in requests
            if r.is_finished or r.violated_by(now)
        ]
    if not requests:
        return ViolationReport(
            total_requests=0,
            overall_pct=float("nan"),
            short_pct=float("nan"),
            long_pct=float("nan"),
            important_pct=float("nan"),
            low_priority_pct=float("nan"),
        )

    violated = np.array(
        [
            r.violated_by(now) if now is not None else r.violated_deadline
            for r in requests
        ],
        dtype=bool,
    )
    prompts = np.array([r.prompt_tokens for r in requests], dtype=np.float64)
    important = np.array([r.important for r in requests], dtype=bool)
    threshold = float(np.percentile(prompts, long_percentile))
    is_long = prompts >= threshold

    per_tier: dict[str, float] = {}
    tier_names = sorted({r.qos.name for r in requests})
    for name in tier_names:
        mask = np.array([r.qos.name == name for r in requests], dtype=bool)
        per_tier[name] = _pct(violated, mask)

    # TBT pacing is judged on Eq. 2 deadlines, over interactive
    # requests that met their TTFT — a late first token poisons every
    # subsequent per-token deadline, which would double-count the TTFT
    # violation as thousands of TBT violations.
    on_time = [
        r
        for r in requests
        if r.is_finished
        and r.is_interactive
        and r.first_token_time is not None
        and r.first_token_time <= r.first_token_deadline
    ]
    total_tokens = sum(r.decoded for r in on_time)
    tbt_misses = sum(r.tbt_deadline_misses for r in on_time)
    tbt_miss_pct = (
        100.0 * tbt_misses / total_tokens if total_tokens else 0.0
    )

    return ViolationReport(
        total_requests=len(requests),
        overall_pct=_pct(violated),
        short_pct=_pct(violated, ~is_long),
        long_pct=_pct(violated, is_long),
        important_pct=_pct(violated, important),
        low_priority_pct=_pct(violated, ~important),
        per_tier_pct=per_tier,
        tbt_miss_pct=tbt_miss_pct,
        relegated_pct=100.0
        * sum(1 for r in requests if r.relegated)
        / len(requests),
        long_threshold=threshold,
    )
