"""Per-request latency extraction and percentile helpers."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.request import Request


def governing_latency(request: Request, now: float | None = None) -> float:
    """The latency metric the request's QoS class is judged on.

    Interactive requests are judged on TTFT, non-interactive ones on
    TTLT (Section 3.2).  For requests still unfinished at measurement
    time, the elapsed wait so far is returned when ``now`` is given
    (a lower bound on the eventual latency); otherwise ``inf``.
    """
    if request.is_interactive:
        value = request.ttft
    else:
        value = request.ttlt
    if value is not None:
        return value
    if now is None:
        return math.inf
    return max(0.0, now - request.arrival_time)


def latency_percentiles(
    requests: Iterable[Request],
    quantiles: Sequence[float] = (0.50, 0.95, 0.99),
    now: float | None = None,
) -> dict[float, float]:
    """Quantiles of the governing latency over ``requests``.

    Returns NaN entries for an empty request set.
    """
    values = np.array(
        [governing_latency(r, now) for r in requests], dtype=np.float64
    )
    if len(values) == 0:
        return {q: float("nan") for q in quantiles}
    # With ``now`` given every value is finite (unfinished requests
    # contribute their elapsed wait); without it they are +inf and a
    # quantile falling inside the unfinished mass reports inf, which is
    # the honest answer.
    values.sort()
    result = {}
    for q in quantiles:
        index = min(len(values) - 1, int(math.ceil(q * len(values))) - 1)
        result[q] = float(values[max(0, index)])
    return result


def rolling_percentile(
    requests: Iterable[Request],
    quantile: float = 0.99,
    window: float = 60.0,
    step: float | None = None,
    now: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Rolling-window latency percentile keyed by arrival time.

    Reproduces Figure 13's "rolling average of p99 latency": requests
    are bucketed by arrival into windows of ``window`` seconds and the
    requested quantile of the governing latency is computed per window.

    Returns:
        ``(window_centers, values)`` arrays; empty windows carry NaN.
    """
    requests = list(requests)
    if not requests:
        return np.array([]), np.array([])
    step = step or window
    arrivals = np.array([r.arrival_time for r in requests])
    values = np.array([governing_latency(r, now) for r in requests])
    t0, t1 = arrivals.min(), arrivals.max()
    centers = []
    series = []
    t = t0
    while t <= t1:
        mask = (arrivals >= t) & (arrivals < t + window)
        centers.append(t + window / 2.0)
        if mask.any():
            series.append(float(np.quantile(values[mask], quantile)))
        else:
            series.append(float("nan"))
        t += step
    return np.array(centers), np.array(series)
