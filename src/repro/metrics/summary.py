"""Run-level summaries combining latency and violation views."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.request import Request
from repro.metrics.latency import latency_percentiles
from repro.metrics.slo import ViolationReport, violation_report


@dataclass
class RunSummary:
    """Everything the experiment tables need from one simulation run.

    Attributes:
        num_requests: Requests included in the measurement.
        finished: How many completed.
        violations: Full violation breakdown.
        latency_percentiles_by_tier: ``{tier: {q: seconds}}`` of the
            governing latency per QoS bucket.
        overall_percentiles: Governing-latency quantiles over all
            requests (mixing TTFT and TTLT, as Figure 2 does for the
            strictest class comparisons).
        qps_served: Completed requests per second of measured span.
        mean_ttft / mean_tbt: Auxiliary aggregate latencies.
    """

    num_requests: int
    finished: int
    violations: ViolationReport
    latency_percentiles_by_tier: dict[str, dict[float, float]] = field(
        default_factory=dict
    )
    overall_percentiles: dict[float, float] = field(default_factory=dict)
    qps_served: float = 0.0
    mean_ttft: float = float("nan")
    mean_tbt: float = float("nan")
    #: Simulated time between the last arrival and full completion.
    #: A stable (non-divergent) system drains quickly; a run operating
    #: beyond capacity accumulates backlog that shows up here.  Set by
    #: the experiment runner, 0 when unknown.
    drain_time: float = 0.0
    #: Span of the arrival process in simulated seconds.
    arrival_span: float = 0.0
    #: Growth of mean queueing delay between the second and fourth
    #: quarters of the arrival stream (seconds).  Near zero in steady
    #: state; ramps linearly when the offered load exceeds capacity.
    queue_delay_trend: float = 0.0
    #: Scheduler-decision counters collected by the engine during the
    #: run (relegations by tier, preemptions, decode evictions, KV
    #: high-water utilization, chunk-size histogram).  Filled in by
    #: :func:`repro.experiments.runner.run_replica_trace`; empty for
    #: summaries built straight from a request list.
    scheduler_stats: dict = field(default_factory=dict)
    #: Per-request latency attribution
    #: (:class:`repro.obs.audit.AttributionReport`), filled in by
    #: :func:`repro.experiments.runner.run_replica_trace` when the run
    #: is audited; ``None`` otherwise.  Deliberately excluded from
    #: :func:`repro.metrics.export.summary_to_dict` so audited and
    #: unaudited runs serialize identically (the determinism pin).
    attribution: object | None = None

    def tier_percentile(self, tier: str, q: float) -> float:
        return self.latency_percentiles_by_tier.get(tier, {}).get(
            q, float("nan")
        )

    @property
    def meets_goodput_bar(self) -> bool:
        """The paper's goodput criterion: <= 1% deadline violations."""
        return (
            self.violations.total_requests > 0
            and self.violations.overall_pct <= 1.0
        )


def summarize_run(
    requests: Iterable[Request],
    now: float | None = None,
    quantiles: tuple[float, ...] = (0.50, 0.95, 0.99),
) -> RunSummary:
    """Build a :class:`RunSummary` from simulated requests."""
    requests = list(requests)
    finished = [r for r in requests if r.is_finished]

    by_tier: dict[str, list[Request]] = {}
    for request in requests:
        by_tier.setdefault(request.qos.name, []).append(request)
    tier_percentiles = {
        tier: latency_percentiles(rs, quantiles, now=now)
        for tier, rs in sorted(by_tier.items())
    }

    ttfts = [r.ttft for r in finished if r.ttft is not None]
    tbts = [r.max_tbt for r in finished if r.decoded > 1]

    if finished:
        span_start = min(r.arrival_time for r in requests)
        span_end = max(
            r.completion_time for r in finished if r.completion_time
        )
        span = max(1e-9, span_end - span_start)
        qps = len(finished) / span
    else:
        qps = 0.0

    trend = _queue_delay_trend(requests, now)

    return RunSummary(
        num_requests=len(requests),
        finished=len(finished),
        violations=violation_report(requests, now=now),
        latency_percentiles_by_tier=tier_percentiles,
        overall_percentiles=latency_percentiles(requests, quantiles, now=now),
        qps_served=qps,
        mean_ttft=(sum(ttfts) / len(ttfts)) if ttfts else float("nan"),
        mean_tbt=(sum(tbts) / len(tbts)) if tbts else float("nan"),
        queue_delay_trend=trend,
    )


def _queue_delay_trend(requests: list[Request], now: float | None) -> float:
    """Mean sojourn growth from mid-run to late-run arrivals.

    The delay proxy is the request's governing latency: TTFT for
    interactive requests, TTLT for non-interactive (elapsed wait for
    unfinished ones).  Comparing the 25-50% arrival window against the
    final 25% cancels warm-up effects and intrinsic service costs,
    leaving the linear ramp that a beyond-capacity run exhibits — even
    when chunk-sharing lets every request *start* quickly.
    """
    if len(requests) < 8:
        return 0.0

    from repro.metrics.latency import governing_latency

    def delay(r: Request) -> float:
        value = governing_latency(r, now)
        if value == float("inf"):
            return 0.0  # unfinished and no clock: no information
        return value

    ordered = sorted(requests, key=lambda r: r.arrival_time)
    n = len(ordered)
    early = ordered[n // 4 : n // 2]
    late = ordered[3 * n // 4 :]
    mean_early = sum(delay(r) for r in early) / len(early)
    mean_late = sum(delay(r) for r in late) / len(late)
    return mean_late - mean_early
