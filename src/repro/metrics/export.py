"""Export run summaries and experiment results to CSV / JSON.

Experiment tables are the artifacts users archive and plot; this
module writes them in machine-readable forms without adding any
dependency beyond the standard library.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Any

from repro.experiments.result import ExperimentResult
from repro.metrics.summary import RunSummary


def result_to_csv(result: ExperimentResult, path: str | Path) -> None:
    """Write an experiment's rows as CSV with a stable column order."""
    columns = result.columns()
    with Path(path).open("w", newline="") as sink:
        writer = csv.DictWriter(sink, fieldnames=columns)
        writer.writeheader()
        for row in result.rows:
            writer.writerow({c: row.get(c, "") for c in columns})


def result_to_json(result: ExperimentResult, path: str | Path) -> None:
    """Write an experiment (rows + provenance) as JSON."""
    payload = {
        "experiment": result.experiment,
        "title": result.title,
        "notes": result.notes,
        "rows": [_jsonable(row) for row in result.rows],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_result_json(path: str | Path) -> ExperimentResult:
    """Round-trip loader for :func:`result_to_json` files."""
    payload = json.loads(Path(path).read_text())
    return ExperimentResult(
        experiment=payload["experiment"],
        title=payload["title"],
        rows=payload["rows"],
        notes=payload["notes"],
    )


def summary_to_dict(summary: RunSummary) -> dict[str, Any]:
    """Flatten a :class:`RunSummary` into a JSON-friendly dict."""
    violations = summary.violations
    flat: dict[str, Any] = {
        "num_requests": summary.num_requests,
        "finished": summary.finished,
        "qps_served": summary.qps_served,
        "mean_ttft": summary.mean_ttft,
        "mean_tbt": summary.mean_tbt,
        "drain_time": summary.drain_time,
        "arrival_span": summary.arrival_span,
        "queue_delay_trend": summary.queue_delay_trend,
        "violations": {
            "overall_pct": violations.overall_pct,
            "short_pct": violations.short_pct,
            "long_pct": violations.long_pct,
            "important_pct": violations.important_pct,
            "low_priority_pct": violations.low_priority_pct,
            "per_tier_pct": dict(violations.per_tier_pct),
            "tbt_miss_pct": violations.tbt_miss_pct,
            "relegated_pct": violations.relegated_pct,
        },
        "latency_percentiles_by_tier": {
            tier: {str(q): v for q, v in percentiles.items()}
            for tier, percentiles in
            summary.latency_percentiles_by_tier.items()
        },
        "overall_percentiles": {
            str(q): v for q, v in summary.overall_percentiles.items()
        },
        "scheduler_stats": dict(summary.scheduler_stats),
    }
    return _jsonable(flat)


def summary_to_json(summary: RunSummary, path: str | Path) -> None:
    Path(path).write_text(json.dumps(summary_to_dict(summary), indent=2))


def _jsonable(value: Any) -> Any:
    """Recursively replace NaN/inf with ``None`` (JSON ``null``).

    JSON has no token for either; Python's ``json.dumps`` emits the
    invalid literals ``NaN``/``Infinity`` unless told otherwise, and
    the former string-placeholder scheme ("nan"/"inf") made numeric
    columns type-unstable for consumers (a latency column mixing
    floats and strings).  ``null`` round-trips as the unambiguous
    "no measurement" marker — exactly what an empty run's undefined
    ``mean_ttft`` is.
    """
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value
