"""Latency extraction, SLO accounting and summaries.

Implements the paper's measurement vocabulary: TTFT / TBT / TTLT
(Section 2.1), deadline violations overall / per tier / by request
length (Figures 10-11), goodput (requests per second within SLO,
Section 4.1.2) and rolling-window percentiles (Figure 13).
"""

from repro.metrics.latency import (
    governing_latency,
    latency_percentiles,
    rolling_percentile,
)
from repro.metrics.slo import ViolationReport, violation_report
from repro.metrics.summary import RunSummary, summarize_run
from repro.metrics.export import (
    load_result_json,
    result_to_csv,
    result_to_json,
    summary_to_dict,
    summary_to_json,
)

__all__ = [
    "load_result_json",
    "result_to_csv",
    "result_to_json",
    "summary_to_dict",
    "summary_to_json",
    "governing_latency",
    "latency_percentiles",
    "rolling_percentile",
    "ViolationReport",
    "violation_report",
    "RunSummary",
    "summarize_run",
]
