"""Gateway admission control: rate limits and backpressure shedding.

Two deterministic mechanisms, both evaluated on the *virtual* clock so
a ``--speed inf`` replay sheds exactly the same requests as a paced
one:

* **Token buckets** — one per QoS tier, refilled at ``rate`` requests
  per virtual second up to ``burst``.  An arrival that finds its
  bucket empty is refused at the door (``rate_limit``).
* **Queue-depth backpressure** — when the cluster-wide prefill backlog
  reaches ``max_queue_depth``, something must give.  The victim is
  chosen by the *relegation demotable ordering* from
  :class:`repro.core.relegation.RelegationPolicy`: free-tier
  (non-``important``) requests only, largest remaining prefill service
  first, ties to the smallest request id.  The arriving request is
  itself a candidate — if it is the preferred victim (or no free-tier
  work is queued) it is refused instead (``backpressure``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.relegation import ViolationChecker
from repro.core.request import Request

REASON_RATE_LIMIT = "rate_limit"
REASON_BACKPRESSURE = "backpressure"


class TokenBucket:
    """A deterministic token bucket on the virtual clock."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def try_take(self, now: float) -> bool:
        """Take one token at virtual time ``now``; False when empty."""
        if now > self._last:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last) * self.rate
            )
            self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def fill(self, now: float) -> float:
        """Tokens available at ``now`` without taking one (pure peek:
        no refill state is committed, so a scrape never perturbs
        admission)."""
        if now <= self._last:
            return self.tokens
        return min(
            self.burst, self.tokens + (now - self._last) * self.rate
        )


@dataclass(frozen=True, kw_only=True)
class AdmissionConfig:
    """Gateway admission knobs.

    Attributes:
        rate: Default per-tier token-bucket refill in requests per
            virtual second; ``None`` disables rate limiting.
        burst: Bucket capacity (initial credit), in requests.
        max_queue_depth: Cluster-wide prefill-backlog cap; ``None``
            disables backpressure.
        per_tier_rate: Per-tier overrides of ``rate`` (a tier mapped to
            a rate here is limited even when ``rate`` is ``None``).
    """

    rate: float | None = None
    burst: float = 8.0
    max_queue_depth: int | None = None
    per_tier_rate: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be > 0 or None")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 or None")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``victim`` is an already-queued request to evict in favour of the
    arrival (backpressure chose it over the newcomer).
    """

    admitted: bool
    reason: str | None = None
    victim: Request | None = None


def pick_shed_victim(
    candidates: Iterable[Request], checker: ViolationChecker
) -> Request | None:
    """Choose a backpressure victim by the relegation demotable order.

    Mirrors the max-heap in
    :meth:`repro.core.relegation.RelegationPolicy.plan` — keyed
    ``(-prefill_service, request_id)`` over free-tier requests — so the
    gateway sheds exactly the work relegation would have demoted first:
    the largest remaining prefill, ties to the smallest request id.
    Returns ``None`` when every candidate is important.
    """
    pool = [r for r in candidates if not r.important]
    if not pool:
        return None
    return min(
        pool,
        key=lambda r: (-checker.prefill_service_time(r), r.request_id),
    )


class AdmissionController:
    """Stateful admission: per-tier buckets plus backpressure."""

    def __init__(
        self, config: AdmissionConfig, checker: ViolationChecker
    ) -> None:
        self.config = config
        self.checker = checker
        self._buckets: dict[str, TokenBucket] = {}

    def _bucket(self, tier: str) -> TokenBucket | None:
        rate = self.config.per_tier_rate.get(tier, self.config.rate)
        if rate is None:
            return None
        bucket = self._buckets.get(tier)
        if bucket is None:
            bucket = self._buckets[tier] = TokenBucket(
                rate, self.config.burst
            )
        return bucket

    def fill_levels(self, now: float) -> dict[str, float]:
        """Per-tier bucket fill at virtual time ``now``.

        Only tiers whose bucket exists (i.e. that have seen at least
        one rate-limited arrival) appear; an unlimited tier has no
        bucket and no meaningful fill.
        """
        return {
            tier: bucket.fill(now)
            for tier, bucket in sorted(self._buckets.items())
        }

    def decide(
        self,
        request: Request,
        now: float,
        *,
        queue_depth: int,
        pending: Iterable[Request],
    ) -> AdmissionDecision:
        """Admission verdict for ``request`` arriving at ``now``.

        ``queue_depth`` is the cluster-wide prefill backlog and
        ``pending`` the queued-but-unstarted requests backpressure may
        shed instead of the arrival.
        """
        bucket = self._bucket(request.qos.name)
        if bucket is not None and not bucket.try_take(now):
            return AdmissionDecision(False, REASON_RATE_LIMIT)
        cap = self.config.max_queue_depth
        if cap is not None and queue_depth >= cap:
            victim = pick_shed_victim(
                list(pending) + [request], self.checker
            )
            if victim is None or victim is request:
                return AdmissionDecision(False, REASON_BACKPRESSURE)
            return AdmissionDecision(
                True, REASON_BACKPRESSURE, victim=victim
            )
        return AdmissionDecision(True)
