"""The virtual↔wall clock bridge for online serving.

The simulator runs on a virtual clock; a live gateway runs on the wall
clock.  :class:`VirtualClock` maps between them with a *speed* factor:
``speed=1`` replays in real time, ``speed=10`` ten times faster, and
``speed=inf`` removes wall pacing entirely — the gateway drains events
as fast as the host allows, which is exactly the batch simulator's
semantics (and why ``--speed inf`` replay is byte-identical to it).
"""

from __future__ import annotations

import math
import time
from typing import Callable


class VirtualClock:
    """Maps wall time to simulated time via a speed factor.

    Args:
        speed: Virtual seconds per wall second (> 0, or ``inf`` for
            as-fast-as-possible).
        timer: Wall-clock source; injectable for tests.
    """

    def __init__(
        self,
        speed: float = math.inf,
        *,
        timer: Callable[[], float] = time.monotonic,
    ) -> None:
        speed = float(speed)
        if not speed > 0:
            raise ValueError(f"speed must be > 0 (or inf), got {speed}")
        self.speed = speed
        self._timer = timer
        self._wall0: float | None = None
        self._virtual0 = 0.0

    @property
    def is_realtime(self) -> bool:
        """True when wall pacing applies (finite speed)."""
        return math.isfinite(self.speed)

    @property
    def started(self) -> bool:
        return self._wall0 is not None

    def start(self, virtual_now: float = 0.0) -> None:
        """Anchor wall time *now* to virtual time ``virtual_now``."""
        self._wall0 = self._timer()
        self._virtual0 = float(virtual_now)

    def set_speed(
        self, speed: float, *, virtual_now: float | None = None
    ) -> None:
        """Change the speed factor without a jump in virtual time.

        A started clock re-anchors at the virtual time the old speed
        had reached, so ``target()`` is continuous across the change
        (it merely bends).  Switching *from* ``inf`` has no target of
        its own — pass ``virtual_now`` (typically the simulator's
        ``now``) to anchor there; it also overrides the anchor for
        finite→finite changes when given.
        """
        speed = float(speed)
        if not speed > 0:
            raise ValueError(f"speed must be > 0 (or inf), got {speed}")
        if self.started:
            anchor = virtual_now
            if anchor is None:
                anchor = self.target()
            if anchor is None:  # inf -> finite with no anchor given
                anchor = self._virtual0
            self._wall0 = self._timer()
            self._virtual0 = float(anchor)
        self.speed = speed

    def target(self) -> float | None:
        """Virtual time the wall clock has reached, or ``None`` when
        unpaced (``speed=inf``) — meaning "drain everything"."""
        if not self.is_realtime:
            return None
        if self._wall0 is None:
            raise RuntimeError("clock not started")
        return self._virtual0 + (self._timer() - self._wall0) * self.speed

    def wall_delay_until(self, virtual_time: float) -> float:
        """Wall seconds to sleep before ``virtual_time`` is reached."""
        target = self.target()
        if target is None:
            return 0.0
        return max(0.0, (virtual_time - target) / self.speed)
