"""Stdlib HTTP front end for the serving gateway.

No web framework: a :class:`ThreadingHTTPServer` whose handler threads
bridge into the gateway's asyncio loop with
``asyncio.run_coroutine_threadsafe``.  Endpoints:

* ``POST /v1/completions`` — submit a simulated request.  JSON body:
  ``{"prompt_tokens": int, "max_tokens": int, "tier": "Q1",
  "important": bool, "stream": bool, "app_id": str,
  "token_ids": [int, ...], "session_id": str,
  "parent_request_id": int}`` (the last three optional: concrete
  prompt identity for ``kv_reuse="radix"`` stacks and multi-turn
  session linkage).  With
  ``stream`` true the response is Server-Sent Events, one
  ``data: {...}`` line per output token and a final ``data: [DONE]``;
  otherwise a single JSON object once the request finishes.  Admission
  refusals return 429 with the shed reason.
* ``GET /metrics`` — Prometheus text exposition (gateway counters
  plus whatever the attached observer's registry holds), including the
  scrape-time ``queue_depth`` and token-bucket fill gauges.
* ``GET /v1/stats`` — the gateway's plain JSON counters plus one live
  telemetry frame (virtual time, queue depth, sketch quantiles,
  per-tier goodput; see :mod:`repro.obs.live`).
* ``GET /v1/live`` — Server-Sent Events stream of live frames, one
  ``data: {...}`` per frame.  Query params: ``frames=N`` stops after N
  frames (0 = until the client disconnects), ``interval=S`` wall
  seconds between frames (default 1.0).
* ``GET /healthz`` — liveness plus the current virtual time.  On a
  fault-tolerant deployment whose alive fraction has crossed a
  graceful-degradation threshold the status is ``degraded`` (still
  HTTP 200 — the gateway *is* serving, just shedding tiers) with the
  ``alive_fraction`` and ``degradation_level`` that triggered it.

Live frames are built on the gateway's asyncio loop, never from the
handler thread, so a scrape observes a consistent simulator state and
cannot race the drive loop.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs.live import build_live_snapshot
from repro.serve.gateway import AdmissionRefused, ServeGateway


class GatewayRuntime:
    """Runs a gateway's asyncio loop on a dedicated daemon thread.

    The stdlib HTTP server blocks per connection; this runtime gives
    its handler threads (and the CLI main thread) a loop to submit
    coroutines into.
    """

    def __init__(self, gateway: ServeGateway) -> None:
        self.gateway = gateway
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )

    def _main(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_forever()
        finally:
            self.loop.close()

    def start(self, timeout: float = 10.0) -> None:
        self._thread.start()
        self.call(self.gateway.start(), timeout=timeout)

    def call(self, coro, timeout: float | None = None):
        """Run ``coro`` on the gateway loop; return its result."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout)

    def stop(self, timeout: float = 30.0) -> None:
        if not self._thread.is_alive():
            return
        self.call(self.gateway.stop(), timeout=timeout)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=timeout)


def _health_payload(gateway: ServeGateway) -> dict:
    """Health status honouring graceful degradation (satellite of the
    fault layer: a half-dead pool is *degraded*, not plain ``ok``).

    Always HTTP 200 — the gateway is up and serving; the body tells
    load balancers and dashboards that tiers are being shed.
    """
    payload = {
        "status": "ok" if gateway.running else "stopping",
        "virtual_now": gateway.session.now,
        "speed": gateway.config.speed
        if gateway.clock.is_realtime else "inf",
    }
    deployment = gateway.session.deployment
    resilience = getattr(deployment, "resilience", None)
    if resilience is None:
        return payload
    alive = deployment.alive_fraction
    level = resilience.degradation_level(alive)
    payload["alive_fraction"] = alive
    payload["degradation_level"] = level
    if gateway.running and level >= 1:
        payload["status"] = "degraded"
    return payload


class GatewayHTTPServer(ThreadingHTTPServer):
    """The gateway's HTTP listener; one handler thread per connection."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        runtime: GatewayRuntime,
        *,
        call_timeout: float = 600.0,
    ) -> None:
        super().__init__(address, _GatewayHandler)
        self.runtime = runtime
        self.call_timeout = call_timeout
        self._serve_thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> None:
        """Serve on a daemon thread (the CLI owns the main thread)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._serve_thread.start()

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)


class _GatewayHandler(BaseHTTPRequestHandler):
    server: GatewayHTTPServer  # narrowed for attribute access

    # Handler threads talk to the CLI via the response stream only;
    # access logs would interleave with the CLI's own output.
    def log_message(self, format: str, *args) -> None:
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _live_snapshot(self) -> dict:
        """Build one telemetry frame on the gateway loop (thread-safe)."""
        runtime = self.server.runtime

        async def snap() -> dict:
            return build_live_snapshot(runtime.gateway)

        return runtime.call(snap(), timeout=self.server.call_timeout)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        gateway = self.server.runtime.gateway
        parsed = urlparse(self.path)
        if parsed.path == "/v1/live":
            self._stream_live(parse_qs(parsed.query))
            return
        if self.path == "/healthz":
            self._send_json(200, _health_payload(gateway))
        elif self.path == "/metrics":
            body = gateway.prometheus_text().encode()
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/v1/stats":
            snapshot = self._live_snapshot()
            payload = dict(snapshot.pop("gateway"))
            payload.update(snapshot)
            self._send_json(200, payload)
        else:
            self._send_json(404, {"error": "not_found", "path": self.path})

    def _stream_live(self, query: dict[str, list[str]]) -> None:
        """SSE stream of live telemetry frames (``GET /v1/live``)."""
        try:
            frames = int(query.get("frames", ["0"])[0])
            interval = float(query.get("interval", ["1.0"])[0])
            if frames < 0 or not interval > 0:
                raise ValueError
        except ValueError:
            self._send_json(400, {
                "error": "bad_request",
                "detail": "frames must be >= 0 and interval > 0",
            })
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        sent = 0
        try:
            while frames == 0 or sent < frames:
                snapshot = self._live_snapshot()
                self.wfile.write(
                    b"data: " + json.dumps(snapshot).encode() + b"\n\n"
                )
                self.wfile.flush()
                sent += 1
                if frames and sent >= frames:
                    break
                if not self.server.runtime.gateway.running:
                    break
                time.sleep(interval)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler contract)
        if self.path != "/v1/completions":
            self._send_json(404, {"error": "not_found", "path": self.path})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(payload, dict):
                raise ValueError("body must be a JSON object")
            prompt_tokens = int(payload["prompt_tokens"])
            decode_tokens = int(payload.get("max_tokens", 16))
            tier = str(payload.get("tier", "Q1"))
            important = bool(payload.get("important", True))
            stream = bool(payload.get("stream", False))
            app_id = str(payload.get("app_id", "api"))
            raw_ids = payload.get("token_ids")
            token_ids = (
                tuple(int(t) for t in raw_ids)
                if raw_ids is not None else None
            )
            raw_session = payload.get("session_id")
            session_id = (
                str(raw_session) if raw_session is not None else None
            )
            raw_parent = payload.get("parent_request_id")
            parent_request_id = (
                int(raw_parent) if raw_parent is not None else None
            )
        except (KeyError, ValueError, TypeError,
                json.JSONDecodeError) as error:
            self._send_json(400, {"error": "bad_request",
                                  "detail": str(error)})
            return

        runtime = self.server.runtime
        gateway = runtime.gateway
        try:
            request = runtime.call(
                gateway.submit(
                    prompt_tokens=prompt_tokens,
                    decode_tokens=decode_tokens,
                    tier=tier,
                    important=important,
                    app_id=app_id,
                    token_ids=token_ids,
                    session_id=session_id,
                    parent_request_id=parent_request_id,
                ),
                timeout=self.server.call_timeout,
            )
        except AdmissionRefused as refused:
            self._send_json(429, {
                "error": "admission_refused",
                "reason": refused.reason,
                "request_id": refused.request.request_id,
                "tier": refused.request.qos.name,
            })
            return
        except (KeyError, ValueError) as error:
            self._send_json(400, {"error": "bad_request",
                                  "detail": str(error)})
            return

        if stream:
            self._stream_tokens(request.request_id)
        else:
            finished = runtime.call(
                gateway.result(request.request_id),
                timeout=self.server.call_timeout,
            )
            self._send_json(200, _completion_payload(finished))

    def _stream_tokens(self, request_id: int) -> None:
        runtime = self.server.runtime
        gateway = runtime.gateway
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            while True:
                event = runtime.call(
                    gateway.next_token(request_id),
                    timeout=self.server.call_timeout,
                )
                if event is None:
                    break
                self.wfile.write(
                    b"data: " + json.dumps({
                        "request_id": event.request_id,
                        "token_index": event.index,
                        "virtual_time": event.virtual_time,
                    }).encode() + b"\n\n"
                )
                self.wfile.flush()
            request = gateway.request_state(request_id)
            if request is not None:
                self.wfile.write(
                    b"data: " + json.dumps(
                        _completion_payload(request)
                    ).encode() + b"\n\n"
                )
            self.wfile.write(b"data: [DONE]\n\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up


def _completion_payload(request) -> dict:
    return {
        "request_id": request.request_id,
        "tier": request.qos.name,
        "prompt_tokens": request.prompt_tokens,
        "tokens": request.decoded,
        "finished": request.is_finished,
        "cancelled": request.cancelled,
        "cancel_reason": request.cancel_reason,
        "ttft_s": request.ttft,
        "ttlt_s": request.ttlt,
        "violated": (
            request.violated_deadline if request.is_finished
            or request.cancelled else None
        ),
    }
