"""The online serving gateway (see ``docs/SERVING.md``).

Turns the batch-oriented simulator into a continuously-serving system:

* :mod:`repro.serve.clock` — the virtual↔wall clock bridge (a
  ``--speed`` factor; ``inf`` = deterministic as-fast-as-possible);
* :mod:`repro.serve.admission` — per-tier token-bucket rate limiting
  and queue-depth backpressure reusing the relegation victim ordering;
* :mod:`repro.serve.gateway` — the asyncio gateway: OpenAI-style
  ``submit``/``stream`` calls over a :class:`repro.api.Session`;
* :mod:`repro.serve.http` — a stdlib ``http.server`` JSON endpoint
  with SSE token streaming, ``/metrics``, ``/healthz`` and the
  ``/v1/live`` telemetry stream (see :mod:`repro.obs.live`).
"""

from repro.serve.admission import (
    REASON_BACKPRESSURE,
    REASON_RATE_LIMIT,
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
    pick_shed_victim,
)
from repro.serve.clock import VirtualClock
from repro.serve.gateway import (
    AdmissionRefused,
    GatewayConfig,
    GatewayStats,
    ServeGateway,
    TokenEvent,
)
from repro.serve.http import GatewayHTTPServer, GatewayRuntime

__all__ = [
    "REASON_BACKPRESSURE",
    "REASON_RATE_LIMIT",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRefused",
    "GatewayConfig",
    "GatewayHTTPServer",
    "GatewayRuntime",
    "GatewayStats",
    "ServeGateway",
    "TokenBucket",
    "TokenEvent",
    "VirtualClock",
    "pick_shed_victim",
]
