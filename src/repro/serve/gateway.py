"""The asyncio serving gateway: continuous arrivals over a Session.

:class:`ServeGateway` exposes OpenAI-style ``submit`` / ``stream`` /
``result`` coroutines over a :class:`repro.api.Session` and drives the
simulation through a :class:`~repro.serve.clock.VirtualClock`:

* **Online mode** (:meth:`start` / :meth:`run`): a background task
  advances the simulator to the wall clock's virtual target, sleeping
  exactly until the next pending event (or a new submission wakes it).
  With ``speed=inf`` it drains instead of pacing.
* **Offline replay** (:meth:`replay`): the deterministic
  ``--speed inf`` path — every trace arrival is scheduled as a
  simulator event, admission runs at the arrival's virtual time, and
  the resulting :class:`~repro.metrics.summary.RunSummary` is
  byte-identical to the batch path when admission is unlimited (the
  regression test pins this).

Tokens stream through the engine's ``token_hook`` into per-request
``asyncio.Queue``s; admission decisions flow to the observer as
gateway events and Prometheus counters.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import AsyncIterator, Iterable

from repro.api import Session
from repro.core.qos import DEFAULT_TIERS, QoSSpec
from repro.core.relegation import ViolationChecker
from repro.core.request import Request
from repro.engine.replica import ReplicaEngine
from repro.metrics.summary import RunSummary
from repro.serve.admission import (
    REASON_BACKPRESSURE,
    AdmissionConfig,
    AdmissionController,
)
from repro.serve.clock import VirtualClock

#: Cancel reason recorded on requests evicted by gateway backpressure.
SHED_CANCEL_REASON = "gateway_backpressure"


@dataclass(kw_only=True)
class GatewayConfig:
    """Gateway knobs.

    Attributes:
        speed: Virtual seconds per wall second; ``inf`` disables wall
            pacing (deterministic as-fast-as-possible mode).
        admission: Rate-limit / backpressure configuration.
        max_tick: Upper bound on one wall sleep in the drive loop, so
            shutdown and new submissions stay responsive.
    """

    speed: float = math.inf
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    max_tick: float = 0.2


@dataclass(frozen=True)
class TokenEvent:
    """One streamed output token."""

    request_id: int
    index: int  # 1-based output-token index
    virtual_time: float


class AdmissionRefused(Exception):
    """Raised by :meth:`ServeGateway.submit` when admission says no."""

    def __init__(self, request: Request, reason: str) -> None:
        super().__init__(
            f"request {request.request_id} refused: {reason}"
        )
        self.request = request
        self.reason = reason


class GatewayStats:
    """Always-on plain-integer gateway counters (observer-independent)."""

    def __init__(self) -> None:
        self.admitted: dict[str, int] = {}
        self.shed: dict[tuple[str, str], int] = {}
        self.tokens_streamed: dict[str, int] = {}

    @property
    def admitted_total(self) -> int:
        return sum(self.admitted.values())

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def tokens_streamed_total(self) -> int:
        return sum(self.tokens_streamed.values())

    def to_dict(self) -> dict:
        return {
            "admitted": dict(sorted(self.admitted.items())),
            "admitted_total": self.admitted_total,
            "shed": {
                f"{tier}/{reason}": count
                for (tier, reason), count in sorted(self.shed.items())
            },
            "shed_total": self.shed_total,
            "tokens_streamed": dict(sorted(self.tokens_streamed.items())),
            "tokens_streamed_total": self.tokens_streamed_total,
        }


class _Ticket:
    """Per-request delivery state inside the gateway."""

    __slots__ = ("request", "engine", "queue", "done")

    def __init__(
        self,
        request: Request,
        queue: "asyncio.Queue[TokenEvent | None] | None",
    ) -> None:
        self.request = request
        self.engine: ReplicaEngine | None = None
        self.queue = queue
        self.done = False


class ServeGateway:
    """Online request front door over a :class:`repro.api.Session`.

    Args:
        session: The serving stack to drive.  The gateway installs
            token and completion hooks on it; the session must not be
            advanced by anyone else while the gateway runs.
        config: Speed and admission knobs.
        tiers: Tier-name → :class:`QoSSpec` for :meth:`submit`;
            defaults to the paper's Q1/Q2/Q3.
    """

    def __init__(
        self,
        session: Session,
        *,
        config: GatewayConfig | None = None,
        tiers: Iterable[QoSSpec] | None = None,
    ) -> None:
        self.session = session
        self.config = config or GatewayConfig()
        self.clock = VirtualClock(self.config.speed)
        self.tiers: dict[str, QoSSpec] = {
            spec.name: spec for spec in (tiers or DEFAULT_TIERS)
        }
        checker = ViolationChecker(
            session.execution_model.seconds_per_prefill_token()
        )
        self.admission = AdmissionController(
            self.config.admission, checker
        )
        self.stats = GatewayStats()
        #: Every request offered to the gateway (admitted or shed).
        self.offered: list[Request] = []
        self._observer = session.engines[0].observer
        self._tickets: dict[int, _Ticket] = {}
        self._next_id = 0
        self._running = False
        self._wake: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        session.set_token_hook(self._on_token)
        session.set_completion_hook(self._on_completion)

    # --- engine callbacks (fire during Session.advance) -------------------

    def _on_token(self, request: Request, now: float) -> None:
        ticket = self._tickets.get(request.request_id)
        if ticket is None or ticket.request is not request:
            return
        tier = request.qos.name
        self.stats.tokens_streamed[tier] = (
            self.stats.tokens_streamed.get(tier, 0) + 1
        )
        self._observer.on_token_streamed(request, now)
        if ticket.queue is not None:
            ticket.queue.put_nowait(
                TokenEvent(request.request_id, request.decoded, now)
            )

    def _on_completion(self, request: Request, now: float) -> None:
        ticket = self._tickets.get(request.request_id)
        if ticket is None or ticket.request is not request:
            return
        self._observer.on_span_end("gateway", request, now)
        self._close_ticket(ticket)

    def _close_ticket(self, ticket: _Ticket) -> None:
        if ticket.done:
            return
        ticket.done = True
        if ticket.queue is not None:
            ticket.queue.put_nowait(None)

    # --- admission (shared by online submit and offline replay) -----------

    def _pending_unstarted(self) -> list[Request]:
        """Queued requests no engine has served yet — the only work
        backpressure may shed without wasting done computation."""
        pending: list[Request] = []
        for engine in self.session.engines:
            for request in engine.scheduler.pending_requests():
                if request.prefill_done == 0 and not request.cancelled:
                    pending.append(request)
        return pending

    def _arrive(self, request: Request) -> str | None:
        """Run admission at the current virtual time; inject on accept.

        Returns the refusal reason, or ``None`` when admitted.
        """
        now = self.session.now
        depth = self.session.queue_depth()
        self._observer.on_span_start("gateway", request, now)
        self._observer.on_span_start("admission", request, now)
        decision = self.admission.decide(
            request,
            now,
            queue_depth=depth,
            pending=self._pending_unstarted(),
        )
        self._observer.on_span_end("admission", request, now)
        if not decision.admitted:
            request.shed = True
            self._record_shed(request, now, decision.reason, depth)
            self._observer.on_span_end("gateway", request, now)
            ticket = self._tickets.get(request.request_id)
            if ticket is not None:
                self._close_ticket(ticket)
            return decision.reason
        if decision.victim is not None:
            self._shed_victim(decision.victim, now, depth)
        engine = self.session.submit_now(request)
        ticket = self._tickets.get(request.request_id)
        if ticket is not None:
            ticket.engine = engine
        tier = request.qos.name
        self.stats.admitted[tier] = self.stats.admitted.get(tier, 0) + 1
        self._observer.on_gateway_admitted(request, now, depth)
        return None

    def _shed_victim(
        self, victim: Request, now: float, depth: int
    ) -> None:
        ticket = self._tickets.get(victim.request_id)
        if ticket is not None and ticket.engine is not None:
            ticket.engine.cancel_request(victim, SHED_CANCEL_REASON)
        else:
            self.session.cancel(victim, SHED_CANCEL_REASON)
        self._record_shed(victim, now, REASON_BACKPRESSURE, depth)
        self._observer.on_span_end("gateway", victim, now)
        if ticket is not None:
            self._close_ticket(ticket)

    def _record_shed(
        self, request: Request, now: float, reason: str | None, depth: int
    ) -> None:
        reason = reason or "unknown"
        key = (request.qos.name, reason)
        self.stats.shed[key] = self.stats.shed.get(key, 0) + 1
        self._observer.on_gateway_shed(request, now, reason, depth)

    # --- offline deterministic replay --------------------------------------

    def replay(
        self,
        trace: Iterable[Request],
        *,
        max_events: int | None = None,
    ) -> RunSummary:
        """Replay a trace as fast as possible (the ``--speed inf`` path).

        Each arrival is a simulator event at its trace timestamp;
        admission runs at that virtual instant with live queue depths.
        No asyncio is involved, and with admission unlimited the event
        sequence — and therefore the summary — is byte-identical to
        submitting the trace through the batch helpers.
        """
        if self.clock.is_realtime:
            raise ValueError(
                "replay() is the speed=inf path; drive paced replays "
                "through repro.workload.replay.OpenLoopReplay"
            )
        requests = list(trace)
        simulator = self.session.simulator
        for request in requests:
            self.offered.append(request)
            self._tickets[request.request_id] = _Ticket(request, None)
            simulator.schedule(
                max(request.arrival_time, simulator.now),
                lambda r=request: self._arrive(r),
            )
        self.session.drain(
            max_events=(
                max_events
                if max_events is not None
                else self.session.config.max_events
            )
        )
        return self.session.summary(requests=requests)

    # --- online mode -------------------------------------------------------

    async def start(self) -> None:
        """Start the drive loop on the running event loop."""
        if self._running:
            raise RuntimeError("gateway already running")
        self._running = True
        self._wake = asyncio.Event()
        self.clock.start(self.session.now)
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Stop the drive loop and terminate all open streams."""
        self._running = False
        if self._wake is not None:
            self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        for ticket in self._tickets.values():
            self._close_ticket(ticket)

    async def _run(self) -> None:
        assert self._wake is not None
        while self._running:
            target = self.clock.target()
            if target is None:
                self.session.advance()
            elif target > self.session.now:
                self.session.advance(until=target)
            next_time = self.session.next_event_time()
            if not self._running:
                break
            if next_time is not None:
                timeout: float | None = min(
                    self.config.max_tick,
                    self.clock.wall_delay_until(next_time),
                )
            elif self.clock.is_realtime:
                timeout = self.config.max_tick
            else:
                timeout = None  # drained; sleep until a submission
            try:
                if timeout is None:
                    await self._wake.wait()
                else:
                    await asyncio.wait_for(self._wake.wait(), timeout)
            except asyncio.TimeoutError:
                continue
            self._wake.clear()

    def _fresh_id(self) -> int:
        while self._next_id in self._tickets:
            self._next_id += 1
        request_id = self._next_id
        self._next_id += 1
        return request_id

    async def submit(
        self,
        *,
        prompt_tokens: int,
        decode_tokens: int = 16,
        tier: str = "Q1",
        important: bool = True,
        app_id: str = "api",
        arrival_time: float | None = None,
        token_ids: tuple[int, ...] | None = None,
        session_id: str | None = None,
        parent_request_id: int | None = None,
    ) -> Request:
        """Accept one request at the current virtual time.

        Returns the admitted :class:`Request` (stream its tokens with
        :meth:`stream` / :meth:`next_token`); raises
        :class:`AdmissionRefused` when admission sheds it at the door.
        ``arrival_time`` backdates the request's latency anchor (the
        open-loop replay driver uses it); admission still runs now.
        ``token_ids`` (length ``prompt_tokens``) gives the prompt a
        concrete identity so stacks with ``kv_reuse="radix"`` can skip
        prefill for prefixes already resident; ``session_id`` /
        ``parent_request_id`` link multi-turn conversation turns.
        """
        if not self._running:
            raise RuntimeError("gateway is not running")
        spec = self.tiers.get(tier)
        if spec is None:
            raise KeyError(
                f"unknown tier {tier!r}; options: {sorted(self.tiers)}"
            )
        target = self.clock.target()
        if target is not None and target > self.session.now:
            # Catch the simulator up so admission sees current state.
            self.session.advance(until=target)
        now = self.session.now
        request = Request(
            request_id=self._fresh_id(),
            arrival_time=(
                min(arrival_time, now) if arrival_time is not None else now
            ),
            prompt_tokens=prompt_tokens,
            decode_tokens=decode_tokens,
            qos=spec,
            app_id=app_id,
            important=important,
            token_ids=token_ids,
            session_id=session_id,
            parent_request_id=parent_request_id,
        )
        self.offered.append(request)
        self._tickets[request.request_id] = _Ticket(
            request, asyncio.Queue()
        )
        reason = self._arrive(request)
        assert self._wake is not None
        self._wake.set()
        if reason is not None:
            raise AdmissionRefused(request, reason)
        return request

    async def next_token(self, request_id: int) -> TokenEvent | None:
        """Await the request's next streamed token; ``None`` when done."""
        ticket = self._tickets[request_id]
        if ticket.queue is None:
            return None
        if ticket.done and ticket.queue.empty():
            return None
        return await ticket.queue.get()

    async def stream(
        self, request_id: int
    ) -> AsyncIterator[TokenEvent]:
        """Async-iterate the request's tokens until completion."""
        while True:
            event = await self.next_token(request_id)
            if event is None:
                return
            yield event

    async def result(self, request_id: int) -> Request:
        """Drain the request's stream and return it once finished."""
        while await self.next_token(request_id) is not None:
            pass
        return self._tickets[request_id].request

    # --- introspection -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    def request_state(self, request_id: int) -> Request | None:
        ticket = self._tickets.get(request_id)
        return ticket.request if ticket is not None else None

    def prometheus_text(self) -> str:
        """Prometheus exposition for ``/metrics``.

        Served from the observer's registry when one is attached (the
        CLI wires a :class:`~repro.obs.observer.TracingObserver`);
        otherwise rendered from the always-on plain counters so the
        gateway series are never absent.
        """
        now = self.session.now
        depth = self.session.queue_depth()
        fills = self.admission.fill_levels(now)
        fleet = self._fleet_snapshot()
        registry = getattr(self._observer, "registry", None)
        if registry is not None:
            registry.gauge(
                "repro_gateway_queue_depth",
                "Cluster-wide prefill backlog seen by admission",
            ).set(depth)
            if fills:
                fill_gauge = registry.gauge(
                    "repro_gateway_token_bucket_fill",
                    "Admission token-bucket fill per tier",
                    labelnames=("tier",),
                )
                for tier, level in fills.items():
                    fill_gauge.labels(tier=tier).set(level)
            if fleet is not None:
                registry.gauge(
                    "repro_fleet_size",
                    "Provisioned (non-released) fleet replicas",
                ).set(fleet["size"])
                hw_gauge = registry.gauge(
                    "repro_fleet_replicas",
                    "Provisioned fleet replicas per hardware class",
                    labelnames=("hardware",),
                )
                for name, count in fleet["by_hardware"].items():
                    hw_gauge.labels(hardware=name).set(count)
                registry.gauge(
                    "repro_fleet_burn_rate",
                    "Recent SLO error-budget burn rate of the fleet",
                ).set(fleet["burn_rate"])
            return registry.to_prometheus_text()
        lines = [
            "# HELP repro_gateway_queue_depth Cluster-wide prefill "
            "backlog seen by admission",
            "# TYPE repro_gateway_queue_depth gauge",
            f"repro_gateway_queue_depth {depth}",
        ]
        if fills:
            lines += [
                "# HELP repro_gateway_token_bucket_fill Admission "
                "token-bucket fill per tier",
                "# TYPE repro_gateway_token_bucket_fill gauge",
            ]
            for tier, level in fills.items():
                lines.append(
                    "repro_gateway_token_bucket_fill"
                    f'{{tier="{tier}"}} {level}'
                )
        lines += [
            "# HELP repro_gateway_admitted_total Requests admitted "
            "by the serving gateway",
            "# TYPE repro_gateway_admitted_total counter",
        ]
        for tier, count in sorted(self.stats.admitted.items()):
            lines.append(
                f'repro_gateway_admitted_total{{tier="{tier}"}} {count}'
            )
        lines += [
            "# HELP repro_gateway_shed_total Requests refused or "
            "evicted by the serving gateway",
            "# TYPE repro_gateway_shed_total counter",
        ]
        for (tier, reason), count in sorted(self.stats.shed.items()):
            lines.append(
                f'repro_gateway_shed_total{{tier="{tier}",'
                f'reason="{reason}"}} {count}'
            )
        lines += [
            "# HELP repro_gateway_tokens_streamed_total Output tokens "
            "delivered to streaming consumers",
            "# TYPE repro_gateway_tokens_streamed_total counter",
        ]
        for tier, count in sorted(self.stats.tokens_streamed.items()):
            lines.append(
                "repro_gateway_tokens_streamed_total"
                f'{{tier="{tier}"}} {count}'
            )
        if fleet is not None:
            lines += [
                "# HELP repro_fleet_size Provisioned (non-released) "
                "fleet replicas",
                "# TYPE repro_fleet_size gauge",
                f"repro_fleet_size {fleet['size']}",
                "# HELP repro_fleet_replicas Provisioned fleet "
                "replicas per hardware class",
                "# TYPE repro_fleet_replicas gauge",
            ]
            for name, count in sorted(fleet["by_hardware"].items()):
                lines.append(
                    f'repro_fleet_replicas{{hardware="{name}"}} {count}'
                )
            lines += [
                "# HELP repro_fleet_burn_rate Recent SLO error-budget "
                "burn rate of the fleet",
                "# TYPE repro_fleet_burn_rate gauge",
                f"repro_fleet_burn_rate {fleet['burn_rate']}",
            ]
        return "\n".join(lines) + "\n"

    def _fleet_snapshot(self) -> dict | None:
        """Fleet gauges for ``/metrics`` and ``/v1/live`` (None when
        the session is not fleet-backed)."""
        fleet = getattr(self.session, "fleet", None)
        if fleet is None:
            return None
        return {
            "size": fleet.fleet_size,
            "active": fleet.active_replicas,
            "by_hardware": fleet.size_by_hardware(),
            "burn_rate": fleet.recent_burn_rate(self.session.now),
            "alive_fraction": fleet.alive_fraction,
            "gpu_hours": fleet.gpu_hours,
            "faults_skipped": fleet.faults_skipped,
        }
