"""The unified public Python API: config in, summary out.

Entry points accreted across the codebase as the reproduction grew:
``make_scheduler`` / ``scheduler_factory`` / ``build_trace`` /
``run_replica_trace`` in :mod:`repro.experiments.runner`, plus
:meth:`ClusterDeployment.run` for multi-replica runs.  This module is
the one documented front door that composes them:

* :class:`ServeConfig` — a keyword-only description of the serving
  stack (deployment, scheduler, replica count, routing).
* :func:`simulate` — one call from workload to
  :class:`~repro.metrics.summary.RunSummary`, replacing the
  build-trace / make-scheduler / run-replica-trace dance.
* :class:`Session` — an incremental handle over the same stack for
  callers that interleave submission with simulation (the online
  gateway in :mod:`repro.serve` is built on it).

The legacy helpers in :mod:`repro.experiments.runner` remain as thin
delegating wrappers, and their outputs are byte-identical: both paths
run the exact same construction and event sequence.

Example::

    from repro.api import ServeConfig, simulate
    from repro.workload import AZURE_CODE

    summary = simulate(
        dataset=AZURE_CODE, qps=3.0, num_requests=500, seed=7,
        config=ServeConfig(scheduler="qoserve"),
    )
    print(summary.violations.overall_pct)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.core.qos import DEFAULT_TIERS, QoSSpec
from repro.core.request import Request
from repro.engine.interface import Scheduler
from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.metrics.summary import RunSummary, summarize_run
from repro.obs.metrics import DEFAULT_CHUNK_BUCKETS, bucket_counts
from repro.obs.observer import Observer
from repro.perfmodel.execution import ExecutionModel
from repro.schedulers import (
    ConServeScheduler,
    EDFScheduler,
    FCFSScheduler,
    MedhaScheduler,
    QoServeConfig,
    QoServeScheduler,
    SJFScheduler,
    SRPFScheduler,
)
from repro.simcore.simulator import Simulator
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.datasets import DATASETS, DatasetSpec
from repro.workload.tiers import TierAssigner, TierMix
from repro.workload.trace import Trace, TraceBuilder

if False:  # pragma: no cover - hint only; resolved lazily below
    from repro.cluster.deployment import ClusterDeployment  # noqa: F401
    from repro.cluster.fleet import FleetConfig, FleetDeployment  # noqa: F401
    from repro.faults.plan import FaultPlan  # noqa: F401

#: Mirrors :data:`repro.cluster.deployment.ROUTING_STRATEGIES`; kept
#: as a literal so validating a :class:`ServeConfig` does not import
#: the cluster package (which imports this module back through the
#: experiment helpers).
ROUTING_STRATEGIES = (
    "round-robin", "least-loaded", "power-of-two", "perf-aware",
)

#: Autoscaling policies a fleet-backed :class:`ServeConfig` accepts.
FLEET_AUTOSCALERS = ("off", "busy-fraction", "burn-rate")

#: Engine cores a :class:`ServeConfig` can pick: ``"objects"`` is the
#: reference per-request implementation
#: (:class:`~repro.engine.replica.ReplicaEngine`), ``"arrays"`` the
#: struct-of-arrays drop-in
#: (:class:`~repro.engine.arrays.ArrayReplicaEngine`) — bit-identical
#: results, vectorized iteration loop (see docs/PERFORMANCE.md).
ENGINE_KINDS = ("objects", "arrays")


def resolve_engine_cls(engine: str) -> type[ReplicaEngine]:
    """Map an :data:`ENGINE_KINDS` name to its engine class."""
    if engine == "objects":
        return ReplicaEngine
    if engine == "arrays":
        from repro.engine.arrays import ArrayReplicaEngine

        return ArrayReplicaEngine
    raise ValueError(
        f"unknown engine {engine!r}; options: {ENGINE_KINDS}"
    )

#: Scheduler identifiers accepted by :func:`make_scheduler`.  The
#: "sarathi-" prefix used in the paper's figures maps to the bare
#: policies: every baseline here runs on the chunked Sarathi engine.
SCHEDULER_KINDS = (
    "fcfs",
    "sjf",
    "srpf",
    "edf",
    "qoserve",
    "qoserve-oracle",
    "medha",
    "conserve",
)


def make_scheduler(
    kind: str,
    execution_model: ExecutionModel,
    chunk_size: int = 256,
    qoserve_config: QoServeConfig | None = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a scheduler by name.

    Args:
        kind: One of :data:`SCHEDULER_KINDS` (case-insensitive,
            "sarathi-" prefix tolerated).
        execution_model: Needed by predictor-backed schedulers.
        chunk_size: Fixed token budget for the Sarathi baselines.
        qoserve_config: Overrides the default QoServe configuration.
        **kwargs: Forwarded to the scheduler constructor.
    """
    key = kind.lower().removeprefix("sarathi-")
    if key == "fcfs":
        return FCFSScheduler(chunk_size=chunk_size, **kwargs)
    if key == "sjf":
        return SJFScheduler(chunk_size=chunk_size, **kwargs)
    if key == "srpf":
        return SRPFScheduler(chunk_size=chunk_size, **kwargs)
    if key == "edf":
        return EDFScheduler(chunk_size=chunk_size, **kwargs)
    if key == "qoserve":
        return QoServeScheduler(
            execution_model, qoserve_config or QoServeConfig(), **kwargs
        )
    if key == "qoserve-oracle":
        config = qoserve_config or QoServeConfig(use_forest_predictor=False)
        return QoServeScheduler(execution_model, config, **kwargs)
    if key == "medha":
        return MedhaScheduler(execution_model, **kwargs)
    if key == "conserve":
        return ConServeScheduler(**kwargs)
    raise KeyError(f"unknown scheduler kind {kind!r}")


def build_trace(
    dataset: DatasetSpec | str,
    qps: float,
    num_requests: int,
    seed: int = 42,
    mix: TierMix | None = None,
    low_priority_fraction: float = 0.0,
    arrivals: ArrivalProcess | None = None,
) -> Trace:
    """Standard trace construction used across experiments.

    ``dataset`` accepts a :class:`DatasetSpec` or one of the registered
    preset names (:data:`repro.workload.DATASETS`).
    """
    if isinstance(dataset, str):
        spec = DATASETS.get(dataset)
        if spec is None:
            raise KeyError(
                f"unknown dataset {dataset!r}; "
                f"options: {sorted(DATASETS)}"
            )
        dataset = spec
    assigner = TierAssigner(
        mix=mix or TierMix.equal_thirds(),
        low_priority_fraction=low_priority_fraction,
    )
    return TraceBuilder(
        dataset,
        arrivals=arrivals or PoissonArrivals(qps),
        tier_assigner=assigner,
        seed=seed,
    ).build(num_requests)


def engine_scheduler_stats(engine: ReplicaEngine) -> dict:
    """Flatten the engine's always-on decision counters for export.

    These come from plain integer counters kept by the engine itself
    (not the optional :mod:`repro.obs` observer), so they are available
    — and identical — whether or not tracing is enabled.
    """
    relegations_by_tier: dict[str, int] = {}
    for request in engine.submitted:
        if request.relegated:
            tier = request.qos.name
            relegations_by_tier[tier] = relegations_by_tier.get(tier, 0) + 1
    return {
        "relegations_by_tier": dict(sorted(relegations_by_tier.items())),
        "relegations_total": sum(relegations_by_tier.values()),
        "preemptions": engine.stall_preemptions,
        "decode_evictions": engine.decode_evictions,
        "kv_high_water_utilization": engine.kv_cache.high_water_utilization,
        "chunk_size_histogram": bucket_counts(
            engine.chunk_tokens_hist, DEFAULT_CHUNK_BUCKETS
        ),
        "iterations": engine.iterations_run,
    }


def aggregate_scheduler_stats(engines: Iterable[ReplicaEngine]) -> dict:
    """Merge per-replica :func:`engine_scheduler_stats` cluster-wide.

    Counts sum; the KV high-water mark is the max across replicas (the
    binding capacity constraint); chunk-size buckets add element-wise.
    """
    merged: dict = {
        "relegations_by_tier": {},
        "relegations_total": 0,
        "preemptions": 0,
        "decode_evictions": 0,
        "kv_high_water_utilization": 0.0,
        "chunk_size_histogram": {},
        "iterations": 0,
    }
    for engine in engines:
        stats = engine_scheduler_stats(engine)
        for tier, count in stats["relegations_by_tier"].items():
            merged["relegations_by_tier"][tier] = (
                merged["relegations_by_tier"].get(tier, 0) + count
            )
        merged["relegations_total"] += stats["relegations_total"]
        merged["preemptions"] += stats["preemptions"]
        merged["decode_evictions"] += stats["decode_evictions"]
        merged["kv_high_water_utilization"] = max(
            merged["kv_high_water_utilization"],
            stats["kv_high_water_utilization"],
        )
        for bucket, count in stats["chunk_size_histogram"].items():
            merged["chunk_size_histogram"][bucket] = (
                merged["chunk_size_histogram"].get(bucket, 0) + count
            )
        merged["iterations"] += stats["iterations"]
    merged["relegations_by_tier"] = dict(
        sorted(merged["relegations_by_tier"].items())
    )
    return merged


@dataclass(frozen=True, kw_only=True)
class ServeConfig:
    """Keyword-only description of one serving stack.

    Attributes:
        deployment: Named (model, hardware, TP) row of Table 1; see
            :data:`repro.experiments.configs.DEPLOYMENTS`.
        scheduler: Policy name from :data:`SCHEDULER_KINDS`.
        chunk_size: Fixed token budget for the Sarathi baselines.
        qoserve_config: Optional QoServe scheduler overrides.
        scheduler_kwargs: Extra keyword arguments forwarded to the
            scheduler constructor.
        num_replicas: 1 builds a bare :class:`ReplicaEngine`; more
            builds a :class:`ClusterDeployment` behind a router.
        routing: Cluster load-balancing strategy (multi-replica only).
        fleet: Heterogeneous elastic pool description
            (:class:`repro.cluster.fleet.FleetConfig`); when set the
            session builds a
            :class:`~repro.cluster.fleet.FleetDeployment` and
            ``num_replicas`` is ignored (the fleet's ``initial`` list
            sizes the pool).
        fleet_autoscaler: One of :data:`FLEET_AUTOSCALERS`
            (fleet-backed sessions only).
        fault_plan: Chaos plan armed on the fleet
            (:class:`repro.faults.plan.FaultPlan`; fleet-backed
            sessions only).
        record_iterations: Keep per-batch iteration records.
        audit: Attribute per-request latency to named phases
            (:mod:`repro.obs.audit`); lands in ``summary.attribution``.
        max_events: Safety valve on simulator events per run.
        engine: Engine core, one of :data:`ENGINE_KINDS`:
            ``"objects"`` (reference per-request loop) or ``"arrays"``
            (struct-of-arrays loop; bit-identical traces and metrics,
            several times faster on decode-heavy workloads).
        kv_reuse: Cross-request KV prefix reuse, one of
            :data:`~repro.engine.replica.ReplicaConfig.KV_REUSE_KINDS`:
            ``"off"`` (every request prefills from scratch —
            byte-identical to stacks predating the prefix cache) or
            ``"radix"`` (requests whose ``token_ids`` share a prefix
            with resident KV skip that prefix's prefill; see
            :mod:`repro.engine.prefix`).
    """

    deployment: str = "llama3-8b"
    scheduler: str = "qoserve"
    chunk_size: int = 256
    qoserve_config: QoServeConfig | None = None
    scheduler_kwargs: Mapping = field(default_factory=dict)
    num_replicas: int = 1
    routing: str = "round-robin"
    fleet: "FleetConfig | None" = None
    fleet_autoscaler: str = "burn-rate"
    fault_plan: "FaultPlan | None" = None
    record_iterations: bool = False
    audit: bool = False
    max_events: int = 50_000_000
    engine: str = "objects"
    kv_reuse: str = "off"

    def __post_init__(self) -> None:
        if self.engine not in ENGINE_KINDS:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"options: {ENGINE_KINDS}"
            )
        key = self.scheduler.lower().removeprefix("sarathi-")
        if key not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"options: {SCHEDULER_KINDS}"
            )
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.routing not in ROUTING_STRATEGIES:
            raise ValueError(
                f"unknown routing {self.routing!r}; "
                f"options: {ROUTING_STRATEGIES}"
            )
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.max_events < 1:
            raise ValueError("max_events must be >= 1")
        if self.fleet_autoscaler not in FLEET_AUTOSCALERS:
            raise ValueError(
                f"unknown fleet_autoscaler {self.fleet_autoscaler!r}; "
                f"options: {FLEET_AUTOSCALERS}"
            )
        if self.fault_plan is not None and self.fleet is None:
            raise ValueError(
                "fault_plan requires fleet=... (chaos runs on the "
                "fault-tolerant fleet deployment)"
            )
        if self.kv_reuse not in ReplicaConfig.KV_REUSE_KINDS:
            raise ValueError(
                f"unknown kv_reuse {self.kv_reuse!r}; "
                f"options: {ReplicaConfig.KV_REUSE_KINDS}"
            )


class Session:
    """An incremental simulation handle over one serving stack.

    Where :func:`simulate` is submit-everything-then-drain, a session
    lets callers interleave submission with bounded simulation — the
    contract the online gateway needs:

    * :meth:`submit` registers a request at its ``arrival_time``;
      :meth:`submit_now` injects one immediately.
    * :meth:`advance` processes events up to a virtual time (or to
      drain), :meth:`next_event_time` peeks at the pending horizon.
    * :meth:`set_token_hook` / :meth:`set_completion_hook` register
      streaming callbacks fired as tokens and completions happen.
    * :meth:`summary` produces the same :class:`RunSummary` (including
      ``scheduler_stats``) as the batch helpers.

    Args:
        config: Stack description; defaults to :class:`ServeConfig`.
        execution_model: Override the deployment's cost model (used by
            the delegating legacy wrappers).
        scheduler: Pre-built scheduler for single-replica sessions.
        scheduler_factory: Pre-built factory for cluster sessions.
        simulator: Share an existing event loop.
        observer: Observability hooks; ``None`` adopts the process
            default at engine construction, as engines always have.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        execution_model: ExecutionModel | None = None,
        scheduler: Scheduler | None = None,
        scheduler_factory: Callable[[], Scheduler] | None = None,
        simulator: Simulator | None = None,
        observer: Observer | None = None,
    ) -> None:
        self.config = config = config or ServeConfig()
        if execution_model is None:
            # Deferred so importing repro.api never drags in the
            # experiments package (which imports repro.api back).
            from repro.experiments.configs import get_execution_model

            execution_model = get_execution_model(config.deployment)
        self.execution_model = execution_model
        self.simulator = simulator or Simulator()
        self._audit_sink = None
        if config.audit:
            from repro.obs.observer import (
                MultiObserver,
                TracingObserver,
                get_default_observer,
            )
            from repro.obs.trace import ListSink, TraceRecorder

            self._audit_sink = ListSink()
            collector = TracingObserver(TraceRecorder([self._audit_sink]))
            effective = (
                observer if observer is not None else get_default_observer()
            )
            observer = MultiObserver([collector, effective])

        replica_config = ReplicaConfig(
            record_iterations=config.record_iterations,
            kv_reuse=config.kv_reuse,
        )
        engine_cls = resolve_engine_cls(config.engine)
        self.deployment = None
        self.fleet = None
        if config.fleet is not None:
            from repro.cluster.fleet import FleetDeployment

            factory = scheduler_factory or self._scheduler
            self.deployment = self.fleet = FleetDeployment(
                self.execution_model,
                factory,
                config.fleet,
                replica_config=replica_config,
                simulator=self.simulator,
                routing=config.routing,
                fault_plan=config.fault_plan,
                autoscaler=self._fleet_autoscaler(),
                observer=observer,
                engine_cls=engine_cls,
            )
            self.engine = None
        elif config.num_replicas == 1:
            built = scheduler if scheduler is not None else self._scheduler()
            self.engine: ReplicaEngine | None = engine_cls(
                self.simulator,
                self.execution_model,
                built,
                replica_config,
                observer=observer,
            )
        else:
            from repro.cluster.deployment import ClusterDeployment

            factory = scheduler_factory or self._scheduler
            self.deployment = ClusterDeployment(
                self.execution_model,
                factory,
                config.num_replicas,
                replica_config=replica_config,
                simulator=self.simulator,
                routing=config.routing,
                observer=observer,
                engine_cls=engine_cls,
            )
            self.engine = None

        self._conversations = 0

    def _fleet_autoscaler(self):
        from repro.cluster.fleet import (
            BurnRateAutoscaler,
            BusyFractionAutoscaler,
        )

        return {
            "off": None,
            "busy-fraction": BusyFractionAutoscaler(),
            "burn-rate": BurnRateAutoscaler(),
        }[self.config.fleet_autoscaler]

    @property
    def engines(self) -> list[ReplicaEngine]:
        """Live view of the serving replicas (a fleet can grow)."""
        if self.deployment is not None:
            return list(self.deployment.replicas)
        assert self.engine is not None
        return [self.engine]

    def _scheduler(self) -> Scheduler:
        config = self.config
        return make_scheduler(
            config.scheduler,
            self.execution_model,
            chunk_size=config.chunk_size,
            qoserve_config=config.qoserve_config,
            **dict(config.scheduler_kwargs),
        )

    # --- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.simulator.now

    def next_event_time(self) -> float | None:
        """When the next pending simulator event fires (None if idle)."""
        return self.simulator.next_event_time()

    # --- submission -----------------------------------------------------

    def submit(self, request: Request) -> None:
        """Register a request; it arrives at ``request.arrival_time``."""
        if self.deployment is not None:
            self.deployment.submit(request)
        else:
            assert self.engine is not None
            self.engine.submit(request)

    def submit_now(self, request: Request) -> ReplicaEngine:
        """Inject a request immediately; returns the serving replica."""
        if self.deployment is not None:
            return self.deployment.submit_now(request)
        assert self.engine is not None
        self.engine.submit_now(request)
        return self.engine

    def conversation(
        self,
        session_id: str | None = None,
        *,
        system_prompt_tokens: int = 0,
    ) -> "Conversation":
        """Open a multi-turn conversation handle over this session.

        The returned :class:`Conversation` mints successive
        :class:`~repro.core.request.Request` turns whose prompts carry
        the running history (prior prompts and completions), each a
        strict prefix-extension of the last with concrete
        ``token_ids`` — so with ``kv_reuse="radix"`` the engine skips
        every turn's shared-history prefill.  Conversations opened
        with the same ``system_prompt_tokens`` also share those
        leading tokens with each other (a shared system prompt).

        Args:
            session_id: Stable id stamped on every turn; defaults to
                ``conv-<n>`` numbered per session.
            system_prompt_tokens: Leading tokens drawn from the
                session-global shared namespace (identical across all
                conversations of this session).
        """
        index = self._conversations
        self._conversations += 1
        return Conversation(
            self,
            session_id or f"conv-{index}",
            system_prompt_tokens=system_prompt_tokens,
            token_namespace=(index + 1) << 32,
        )

    def cancel(self, request: Request, reason: str) -> bool:
        """Withdraw an unfinished request from whichever replica holds
        it.  Returns True if a replica had it resident."""
        for engine in self.engines:
            resident = request in engine.decode_queue or any(
                r.request_id == request.request_id
                for r in engine.scheduler.pending_requests()
            )
            if resident:
                return engine.cancel_request(request, reason)
        return False

    # --- simulation -----------------------------------------------------

    def advance(
        self, until: float | None = None, max_events: int | None = None
    ) -> float:
        """Process events up to ``until`` (or to drain); returns now."""
        if until is None:
            return self.drain(max_events=max_events)
        return self.simulator.run(until=until, max_events=max_events)

    def drain(self, max_events: int | None = None) -> float:
        """Run until every pending event has been processed.

        Terminates on autoscaled fleets too: their control tick parks
        itself once the queue is otherwise empty (and wakes on the
        next submission), so run-to-empty cannot spin.  Draining
        replicas that emptied are released so GPU-hour accounting
        stops at the drain point.
        """
        now = self.simulator.run(max_events=max_events)
        if self.fleet is not None:
            self.fleet._release_drained(now)
        return now

    # --- streaming hooks ------------------------------------------------

    def set_token_hook(
        self, hook: Callable[[Request, float], None]
    ) -> None:
        """Fire ``hook(request, now)`` on every output token emitted."""
        if self.deployment is not None:
            # The deployment chains hooks itself — a fleet also replays
            # them onto replicas provisioned later.
            self.deployment.set_token_hook(hook)
            return
        for engine in self.engines:
            engine.token_hook = _chain_hooks(engine.token_hook, hook)

    def set_completion_hook(
        self, hook: Callable[[Request, float], None]
    ) -> None:
        """Fire ``hook(request, now)`` when a request completes."""
        if self.deployment is not None:
            self.deployment.set_completion_hook(hook)
            return
        for engine in self.engines:
            engine.completion_hook = _chain_hooks(
                engine.completion_hook, hook
            )

    # --- state ----------------------------------------------------------

    @property
    def requests(self) -> list[Request]:
        """Every request submitted to the stack so far."""
        if self.deployment is not None:
            return self.deployment.all_requests()
        assert self.engine is not None
        return list(self.engine.submitted)

    def queue_depth(self) -> int:
        """Prefill backlog across all replicas (admission signal)."""
        return sum(
            engine.scheduler.queue_length() for engine in self.engines
        )

    def summary(
        self,
        now: float | None = None,
        *,
        requests: Iterable[Request] | None = None,
    ) -> RunSummary:
        """Summarize the run exactly as the batch helpers do.

        ``requests`` overrides the measured population (a gateway
        includes requests it shed before they reached any replica).
        """
        now = self.simulator.now if now is None else now
        offered = (
            list(requests) if requests is not None else self.requests
        )
        summary = summarize_run(offered, now=now)
        if offered:
            last_arrival = max(r.arrival_time for r in offered)
            first_arrival = min(r.arrival_time for r in offered)
            summary.drain_time = now - last_arrival
            summary.arrival_span = last_arrival - first_arrival
        if self.engine is not None:
            summary.scheduler_stats = engine_scheduler_stats(self.engine)
        else:
            summary.scheduler_stats = aggregate_scheduler_stats(
                self.engines
            )
        if self._audit_sink is not None:
            from repro.obs.audit import audit_events

            summary.attribution = audit_events(self._audit_sink.events)
        return summary


class Conversation:
    """Mints the turns of one multi-turn conversation, in order.

    Each turn's prompt is the full running context — every prior
    prompt and completion — plus the new user message, realised as
    concrete deterministic ``token_ids`` so the radix prefix cache can
    recognise the shared history.  Turns carry ``session_id`` and
    ``parent_request_id`` linking them into a chain.

    The helper only *builds* requests; submit them through
    :meth:`Session.submit` / :meth:`Session.submit_now` (or hand the
    field values to the gateway) like any other request.  Created via
    :meth:`Session.conversation`.
    """

    def __init__(
        self,
        session: Session,
        session_id: str,
        *,
        system_prompt_tokens: int = 0,
        token_namespace: int = 1 << 32,
    ) -> None:
        if system_prompt_tokens < 0:
            raise ValueError("system_prompt_tokens must be >= 0")
        self.session = session
        self.session_id = session_id
        # Shared system-prompt ids are session-global (0..n-1); all
        # later tokens come from this conversation's own namespace.
        self._context: list[int] = list(range(system_prompt_tokens))
        self._next_private = token_namespace
        self._pending_completion = 0
        self._last_request_id: int | None = None
        self.turns = 0

    @property
    def context_tokens(self) -> int:
        """Prompt length the *next* turn will carry before its user
        message (history grows by each turn's completion)."""
        return len(self._context) + self._pending_completion

    def _mint(self, count: int) -> list[int]:
        start = self._next_private
        self._next_private += count
        return list(range(start, start + count))

    def turn(
        self,
        *,
        request_id: int,
        user_tokens: int,
        decode_tokens: int,
        arrival_time: float = 0.0,
        qos: QoSSpec | None = None,
        important: bool = True,
    ) -> Request:
        """Build the conversation's next turn.

        Args:
            request_id: Unique id for the minted request (caller
                managed, like every other submission path).
            user_tokens: Length of the new user message appended to
                the running context (>= 1).
            decode_tokens: Output budget; the completion joins the
                context seen by the following turn.
            arrival_time: The request's arrival anchor.
            qos: Tier; defaults to the first (interactive) tier.
            important: Relegation-exemption flag.
        """
        if user_tokens < 1:
            raise ValueError("user_tokens must be >= 1")
        if self._pending_completion:
            self._context.extend(self._mint(self._pending_completion))
            self._pending_completion = 0
        self._context.extend(self._mint(user_tokens))
        request = Request(
            request_id=request_id,
            arrival_time=arrival_time,
            prompt_tokens=len(self._context),
            decode_tokens=decode_tokens,
            qos=qos or DEFAULT_TIERS[0],
            app_id=self.session_id,
            important=important,
            token_ids=tuple(self._context),
            session_id=self.session_id,
            parent_request_id=self._last_request_id,
        )
        self._pending_completion = decode_tokens
        self._last_request_id = request_id
        self.turns += 1
        return request


def _chain_hooks(existing, hook):
    """Compose completion/token hooks without displacing earlier ones."""
    if existing is None:
        return hook

    def chained(request, now):
        existing(request, now)
        hook(request, now)

    return chained


def simulate(
    *,
    config: ServeConfig | None = None,
    trace: Trace | Iterable[Request] | None = None,
    dataset: DatasetSpec | None = None,
    qps: float = 1.0,
    num_requests: int | None = None,
    seed: int = 42,
    mix: TierMix | None = None,
    low_priority_fraction: float = 0.0,
    arrivals: ArrivalProcess | None = None,
    observer: Observer | None = None,
) -> RunSummary:
    """Run one simulation end to end and return its summary.

    Provide either a pre-built ``trace`` or a ``dataset`` +
    ``num_requests`` (+ ``qps``/``seed``/``mix``) recipe; the stack
    itself comes from ``config``.  The output is byte-identical to the
    legacy ``run_replica_trace`` path for single-replica configs — the
    golden test in ``tests/test_api.py`` pins this.
    """
    config = config or ServeConfig()
    if trace is None:
        if dataset is None or num_requests is None:
            raise ValueError(
                "simulate() needs either trace=... or dataset=... with "
                "num_requests=..."
            )
        trace = build_trace(
            dataset,
            qps=qps,
            num_requests=num_requests,
            seed=seed,
            mix=mix,
            low_priority_fraction=low_priority_fraction,
            arrivals=arrivals,
        )
    requests = list(trace)
    session = Session(config, observer=observer)
    for request in requests:
        session.submit(request)
    session.advance(max_events=config.max_events)
    return session.summary(requests=requests)


def default_tier_names() -> tuple[str, ...]:
    """Names of the Table 3 tiers, in order."""
    return tuple(t.name for t in DEFAULT_TIERS)
