"""Event primitives for the discrete-event simulator.

Events are ordered by ``(time, priority, seq)``.  The monotonically
increasing sequence number guarantees a deterministic total order even
when two events share a timestamp, which keeps simulations reproducible
across runs and platforms.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A single scheduled occurrence in simulated time.

    Attributes:
        time: Simulated timestamp (seconds) at which the event fires.
        priority: Secondary ordering key; lower fires first at equal time.
        seq: Tie-breaking sequence number assigned by the queue.
        action: Zero-argument callable invoked when the event fires.
        cancelled: When True the event is skipped by the simulator.
    """

    time: float
    priority: int = 0
    seq: int = field(default=0)
    action: Callable[[], None] | None = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator drops it instead of firing it."""
        self.cancelled = True


class EventQueue:
    """A heap of :class:`Event` objects with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        if time != time:  # NaN guard: a NaN timestamp corrupts heap order
            raise ValueError("event time must not be NaN")
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            action=action,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            IndexError: If the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Return the timestamp of the next live event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
