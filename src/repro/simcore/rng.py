"""Named, independently-seeded random number streams.

Every stochastic component (arrivals, prompt lengths, decode lengths,
tier assignment, forest bootstrap, ...) draws from its own stream so
that changing one component's consumption pattern never perturbs the
others.  Streams are derived from a single experiment seed via
``numpy.random.SeedSequence.spawn``-style child seeding keyed by name,
so the mapping is stable across runs.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """Factory of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identical stream; the
        name is hashed with CRC32 so results do not depend on Python's
        randomized string hashing.
        """
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._seed,
                spawn_key=(zlib.crc32(name.encode("utf-8")),),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def fork(self, offset: int) -> "RngStreams":
        """Return an independent stream family (e.g. per replica)."""
        return RngStreams(self._seed * 1_000_003 + int(offset) + 1)
