"""Discrete-event simulation kernel.

This package provides the minimal machinery every other subsystem builds
on: a virtual clock, an event heap with deterministic tie-breaking, and
seeded random-number streams so that every experiment in the repository
is exactly reproducible.
"""

from repro.simcore.events import Event, EventQueue
from repro.simcore.rng import RngStreams
from repro.simcore.simulator import Simulator

__all__ = ["Event", "EventQueue", "RngStreams", "Simulator"]
