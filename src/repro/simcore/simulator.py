"""The simulation driver: a virtual clock over an event heap."""

from __future__ import annotations

from typing import Callable

from repro.simcore.events import Event, EventQueue


class Simulator:
    """Runs events in timestamp order while advancing a virtual clock.

    The simulator is intentionally tiny: components schedule callbacks
    with :meth:`schedule` (absolute time) or :meth:`schedule_after`
    (relative delay) and the driver fires them in deterministic order.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._queue = EventQueue()
        self._now = float(start_time)
        self._running = False
        self._events_processed = 0
        self._run_until: float | None = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def next_event_time(self) -> float | None:
        """Timestamp of the next pending event, or None when idle.

        Lets a wall-clock driver (the serving gateway) sleep exactly
        until the simulation has something to do.
        """
        return self._queue.peek_time()

    @property
    def run_bound(self) -> float | None:
        """The ``until`` limit of the in-progress :meth:`run`, if any.

        Lets a component executing inside an event callback (the
        array engine's level-synchronous decode stretches) avoid
        advancing the clock past the driver's requested stop time.
        """
        return self._run_until

    def fast_forward(self, time: float) -> None:
        """Advance the clock directly, without processing an event.

        Only legal while no pending event (and no ``until`` bound of
        an in-progress :meth:`run`) falls before ``time`` — i.e. when
        the caller has proven the skipped interval is silent.  Used by
        the array engine to collapse a run of pure-decode iterations
        into one batched advance.
        """
        if time < self._now:
            raise ValueError(
                f"cannot fast-forward into the past: {time} < {self._now}"
            )
        next_time = self._queue.peek_time()
        if next_time is not None and next_time < time:
            raise ValueError(
                f"cannot fast-forward over a pending event: "
                f"{next_time} < {time}"
            )
        if self._run_until is not None and time > self._run_until:
            raise ValueError(
                f"cannot fast-forward past the run bound: "
                f"{time} > {self._run_until}"
            )
        self._now = float(time)

    def schedule(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        return self._queue.push(time, action, priority=priority)

    def schedule_after(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, action, priority=priority)

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> float:
        """Process events until the queue drains or a limit is reached.

        Args:
            until: Stop once the next event would fire after this time.
                The clock is advanced to ``until`` in that case.
            max_events: Safety valve against runaway simulations.

        Returns:
            The simulated time when processing stopped.
        """
        self._running = True
        self._run_until = until
        processed = 0
        try:
            while self._queue and self._running:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    return self._now
                event = self._queue.pop()
                self._now = event.time
                if event.action is not None:
                    event.action()
                self._events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
            self._run_until = None
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` call to return early."""
        self._running = False
