"""QoServe reproduction: QoS-driven LLM inference serving.

A full reimplementation of "QoServe: Breaking the Silos of LLM
Inference Serving" (ASPLOS 2026) on a discrete-event serving
simulator.  The public API re-exports the pieces a downstream user
composes:

* Workloads — :class:`TraceBuilder`, dataset presets, arrival
  processes, QoS tiers.
* Engine — :class:`ReplicaEngine` running a scheduler over the
  analytical :class:`ExecutionModel`.
* Schedulers — the QoServe policy and the classic baselines.
* Clusters — shared/siloed/disaggregated deployments and capacity
  planning.
* Metrics — SLO accounting and run summaries.
* Facade — :class:`ServeConfig` / :class:`Session` /
  :func:`simulate`, the one-stop API over all of the above
  (see ``repro.api``); :mod:`repro.serve` adds the online gateway.

Quickstart::

    from repro import (
        ExecutionModel, LLAMA3_8B, A100_80GB, Simulator,
        ReplicaEngine, QoServeScheduler, TraceBuilder,
        AZURE_CODE, PoissonArrivals, summarize_run,
    )

    em = ExecutionModel(LLAMA3_8B, A100_80GB)
    trace = TraceBuilder(AZURE_CODE, PoissonArrivals(3.0)).build(500)
    sim = Simulator()
    engine = ReplicaEngine(sim, em, QoServeScheduler(em))
    for request in trace:
        engine.submit(request)
    sim.run()
    print(summarize_run(engine.submitted, now=sim.now).violations)
"""

from repro.simcore import Simulator, RngStreams
from repro.perfmodel import (
    A100_80GB,
    H100_80GB,
    LLAMA3_70B,
    LLAMA3_8B,
    QWEN_7B,
    BatchShape,
    ExecutionModel,
    HardwareSpec,
    ModelSpec,
    PrefillChunk,
)
from repro.core import (
    DEFAULT_TIERS,
    Q1_INTERACTIVE,
    Q2_RELAXED,
    Q3_BATCH,
    QoSClass,
    QoSSpec,
    Request,
    RequestPhase,
)
from repro.workload import (
    AZURE_CODE,
    AZURE_CONV,
    DATASETS,
    SHAREGPT,
    DiurnalArrivals,
    PoissonArrivals,
    TierAssigner,
    TierMix,
    Trace,
    TraceBuilder,
)
from repro.engine import ReplicaConfig, ReplicaEngine
from repro.schedulers import (
    EDFScheduler,
    FCFSScheduler,
    MedhaScheduler,
    QoServeConfig,
    QoServeScheduler,
    SJFScheduler,
    SRPFScheduler,
)
from repro.cluster import (
    ClusterDeployment,
    DisaggregatedDeployment,
    SiloedDeployment,
    SiloSpec,
    find_max_goodput,
    replicas_needed,
)
from repro.metrics import summarize_run, violation_report
from repro.api import ServeConfig, Session, simulate

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "RngStreams",
    "A100_80GB",
    "H100_80GB",
    "LLAMA3_8B",
    "LLAMA3_70B",
    "QWEN_7B",
    "BatchShape",
    "ExecutionModel",
    "HardwareSpec",
    "ModelSpec",
    "PrefillChunk",
    "DEFAULT_TIERS",
    "Q1_INTERACTIVE",
    "Q2_RELAXED",
    "Q3_BATCH",
    "QoSClass",
    "QoSSpec",
    "Request",
    "RequestPhase",
    "AZURE_CODE",
    "AZURE_CONV",
    "DATASETS",
    "SHAREGPT",
    "DiurnalArrivals",
    "PoissonArrivals",
    "TierAssigner",
    "TierMix",
    "Trace",
    "TraceBuilder",
    "ReplicaConfig",
    "ReplicaEngine",
    "EDFScheduler",
    "FCFSScheduler",
    "MedhaScheduler",
    "QoServeConfig",
    "QoServeScheduler",
    "SJFScheduler",
    "SRPFScheduler",
    "ClusterDeployment",
    "DisaggregatedDeployment",
    "SiloedDeployment",
    "SiloSpec",
    "find_max_goodput",
    "replicas_needed",
    "summarize_run",
    "violation_report",
    "ServeConfig",
    "Session",
    "simulate",
    "__version__",
]
