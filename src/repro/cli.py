"""Command-line interface: run paper experiments by name.

Usage::

    python -m repro list
    python -m repro run fig04 [--scale smoke|bench|full] [--out FILE]
    python -m repro run all --scale smoke
    python -m repro run fig09 --trace-out run.jsonl --metrics-out run.prom
    python -m repro run faults --fault-plan chaos.json
    python -m repro trace run.jsonl --chrome run_chrome.json
    python -m repro trace run.jsonl --validate
    python -m repro dashboard run.jsonl --out dashboard.html
    python -m repro dashboard run.jsonl --incidents incidents.jsonl
    python -m repro diff base.jsonl other.jsonl --json delta.json
    python -m repro diff a.jsonl b.jsonl --expect-identical
    python -m repro run arena --scale smoke --jobs 4
    python -m repro bench --diff-baseline baseline_trace.jsonl
    python -m repro faults validate chaos.json --num-replicas 4
    python -m repro serve --port 8080 --speed 10
    python -m repro serve --replay azure.csv --summary-out run.json
    python -m repro serve --port 8080 --incidents-out incidents.jsonl
    python -m repro top --url http://127.0.0.1:8080 --once
    python -m repro top --incidents incidents.jsonl
    python -m repro trace run.jsonl --spans spans.json

``--trace-out`` records every engine built during the run through the
:mod:`repro.obs` subsystem (iteration-level JSONL events);
``--metrics-out`` dumps the aggregated Prometheus-text metrics.  The
``trace`` command post-processes a recorded JSONL file: schema
validation, per-request timeline table, and conversion to Chrome
trace-event JSON loadable in Perfetto / ``chrome://tracing``.

``--fault-plan`` loads a :mod:`repro.faults` fault schedule (replica
crashes / slowdowns) and installs it as the process default, so
fault-aware experiments inject it; ``faults validate`` lints a plan
file and reports every problem with a clean message.

``diff`` runs the differential forensics of :mod:`repro.obs.diff`
over two (or more) recorded traces of the same workload: first
divergence, per-request attribution deltas, and a cause-delta
accounting that sums exactly to the goodput gap.  ``run arena`` races
every registered scheduler over a workload sweep and explains each
loss with the same machinery; ``bench --diff-baseline`` pins the
benchmark's pinned-trace *behavior* (not just its speed) against a
recorded baseline.

``serve`` starts the :mod:`repro.serve` online gateway: a stdlib HTTP
front end (``POST /v1/completions`` with SSE streaming, ``/metrics``,
``/healthz``) over a simulated deployment, paced against the wall
clock by ``--speed`` (``inf`` = deterministic as-fast-as-possible).
``--replay`` drives it open-loop from an Azure-format trace CSV; with
no ``--port`` and ``--speed inf`` the replay is a pure offline
simulation whose summary is byte-identical to the batch path.

Multi-word flags are spelled with dashes (``--trace-out``); the
legacy underscore spellings (``--trace_out``) still parse but are
hidden from ``--help``.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path
from typing import Callable

from repro.experiments import BENCH, FULL, SMOKE, Scale
from repro.experiments.result import ExperimentResult

SCALES = {"smoke": SMOKE, "bench": BENCH, "full": FULL}


def _registry() -> dict[str, tuple[str, Callable[[Scale], list]]]:
    """Experiment name -> (description, runner returning result list).

    Imports are deferred so ``python -m repro list`` stays instant.
    """

    def runner(module_name: str, *functions: str):
        def run(scale: Scale) -> list[ExperimentResult]:
            import importlib

            module = importlib.import_module(
                f"repro.experiments.{module_name}"
            )
            return [getattr(module, fn)(scale) for fn in functions]

        return run

    return {
        "fig01": ("headline: GPU savings + burst resilience",
                  runner("fig01_headline", "run", "run_burst")),
        "fig02": ("classic policies vs QoServe",
                  runner("fig02_policies", "run")),
        "fig04": ("chunk-size throughput/latency trade-off",
                  runner("fig04_chunk_tradeoff", "run")),
        "fig05": ("eager relegation under overload",
                  runner("fig05_relegation", "run")),
        "fig06": ("the five-request walkthrough, executed",
                  runner("fig06_illustration", "run")),
        "fig07": ("goodput per replica, PD colocation",
                  runner("fig07_goodput", "run")),
        "fig08": ("goodput per prefill replica, PD disaggregation",
                  runner("fig08_disagg", "run")),
        "fig09": ("dynamic chunk-size trace",
                  runner("fig09_chunk_trace", "run")),
        "fig10-11": ("latency and violations under load",
                     runner("fig10_11_load_sweep", "run")),
        "fig12-13": ("diurnal transient overload",
                     runner("fig12_13_transient", "run",
                            "run_rolling_latency")),
        "fig14": ("alpha sensitivity",
                  runner("fig14_alpha_sweep", "run")),
        "fig15": ("Medha and PolyServe comparisons",
                  runner("fig15_concurrent_work", "run_medha_comparison",
                         "run_medha_goodput", "run_polyserve_comparison")),
        "tab04": ("cluster-scale silo vs QoServe",
                  runner("tab04_cluster_scale", "run")),
        "tab05": ("technique ablation",
                  runner("tab05_ablation", "run")),
        "tab06": ("workload mixes and SLO variation",
                  runner("tab06_composition", "run", "run_slo_variation")),
        "ablations": ("design-choice ablations (predictor, preemption, "
                      "estimator)",
                      runner("ablation_extras", "run_predictor_ablation",
                             "run_preemption_ablation",
                             "run_estimator_ablation")),
        "ext-decode": ("extension: multi-TBT decode pools",
                       runner("ext_qos_decode", "run")),
        "ext-conserve": ("extension: ConServe-style binary collocation",
                         runner("ext_conserve", "run")),
        "ext-autoscaling": ("extension: autoscaled vs static provisioning",
                            runner("ext_autoscaling", "run")),
        "ext-routing": ("extension: cluster load-balancing ablation",
                        runner("ext_routing", "run")),
        "faults": ("chaos: crash anatomy + goodput vs MTBF "
                   "(honours --fault-plan)",
                   runner("fig_faults", "run", "run_mtbf_sweep")),
        "fleet-chaos": ("chaos: heterogeneous fleet autoscaling under "
                        "diurnal load + faults, goodput per GPU-hour",
                        runner("fig_fleet_chaos", "run")),
        "arena": ("policy arena: every scheduler raced over a load "
                  "sweep, losses explained by cause-delta attribution",
                  runner("arena", "run")),
        "fig-prefix": ("radix KV prefix reuse: hit rate x load x "
                       "scheduler on multi-turn session traffic",
                       runner("fig_prefix", "run")),
    }


def _hidden_alias(parser, *flags, **kwargs) -> None:
    """Register a legacy flag spelling: parsed, absent from ``--help``.

    ``default=SUPPRESS`` keeps the alias from fighting the canonical
    action over their shared dest's default value.
    """
    parser.add_argument(
        *flags, help=argparse.SUPPRESS, default=argparse.SUPPRESS,
        **kwargs,
    )


def _parse_speed(text: str) -> float:
    """``--speed`` values: a positive float, or ``inf`` (no pacing)."""
    lowered = text.strip().lower()
    if lowered in {"inf", "infinity"}:
        return math.inf
    try:
        value = float(lowered)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid speed {text!r} (a number, or 'inf')"
        ) from None
    if not value > 0:
        raise argparse.ArgumentTypeError("speed must be > 0")
    return value


def _observability_parent() -> argparse.ArgumentParser:
    """Shared ``--trace-out`` / ``--metrics-out`` flags.

    ``run`` and ``serve`` record through the same observer plumbing,
    so the flags are defined once and inherited via ``parents=``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace-out", type=Path, default=None, metavar="FILE",
        help="record an iteration-level JSONL trace of every "
             "simulated engine to FILE",
    )
    _hidden_alias(parent, "--trace_out", type=Path, metavar="FILE")
    parent.add_argument(
        "--metrics-out", type=Path, default=None, metavar="FILE",
        help="write aggregated metrics in Prometheus text format "
             "to FILE after the run",
    )
    _hidden_alias(parent, "--metrics_out", type=Path, metavar="FILE")
    parent.add_argument(
        "--incidents-out", type=Path, default=None, metavar="FILE",
        help="arm the SLO flight recorder: dump a JSONL incident "
             "window around every deadline violation or burn-rate "
             "trip to FILE (see docs/OBSERVABILITY.md)",
    )
    _hidden_alias(parent, "--incidents_out", type=Path, metavar="FILE")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QoServe reproduction experiment runner",
    )
    observability = _observability_parent()
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    report_parser = sub.add_parser(
        "report", help="regenerate a markdown reproduction report"
    )
    report_parser.add_argument(
        "--scale", choices=sorted(SCALES), default="smoke",
    )
    report_parser.add_argument(
        "--out", type=Path, default=Path("reproduction_report.md"),
    )
    run_parser = sub.add_parser(
        "run", help="run experiments", parents=[observability]
    )
    run_parser.add_argument(
        "experiments", nargs="+",
        help="experiment names (see 'list') or 'all'",
    )
    run_parser.add_argument(
        "--scale", choices=sorted(SCALES), default="smoke",
        help="run size preset (default: smoke)",
    )
    run_parser.add_argument(
        "--out", type=Path, default=None,
        help="also append rendered tables to this file",
    )
    run_parser.add_argument(
        "--plot", metavar="COLUMN", default=None,
        help="also render an ASCII chart of COLUMN (x axis and series "
             "are auto-detected)",
    )
    run_parser.add_argument(
        "--log-y", action="store_true",
        help="log-scale the --plot y axis",
    )
    _hidden_alias(run_parser, "--log_y", action="store_true")
    run_parser.add_argument(
        "--fault-plan", type=Path, default=None, metavar="FILE",
        help="JSON fault schedule (see docs/RESILIENCE.md) injected "
             "into fault-aware experiments",
    )
    _hidden_alias(run_parser, "--fault_plan", type=Path, metavar="FILE")
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for experiment grid fan-out "
             "(default: 1 = serial; results are byte-identical at "
             "any job count)",
    )
    run_parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="disk-backed run cache for experiment cells (default: "
             "disabled; see docs/PERFORMANCE.md for invalidation)",
    )
    _hidden_alias(run_parser, "--cache_dir", type=Path, metavar="DIR")
    bench_parser = sub.add_parser(
        "bench", help="perf-trajectory benchmark harness"
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions and a smaller end-to-end trace "
             "(CI smoke mode)",
    )
    bench_parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write results to FILE instead of the next free "
             "BENCH_<n>.json at the repo root",
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="job count for the sweep benchmark (default: min(4, "
             "cpu_count))",
    )
    bench_parser.add_argument(
        "--diff-baseline", type=Path, default=None, metavar="FILE",
        help="behavioral-identity gate: record the end-to-end "
             "benchmark's pinned trace to FILE on first use, then "
             "diff every later run against it and fail on any "
             "divergence (repro.obs.diff)",
    )
    _hidden_alias(bench_parser, "--diff_baseline", type=Path,
                  metavar="FILE")
    faults_parser = sub.add_parser(
        "faults", help="fault-plan tooling (repro.faults)"
    )
    faults_sub = faults_parser.add_subparsers(
        dest="faults_command", required=True
    )
    validate_parser = faults_sub.add_parser(
        "validate", help="lint a fault-plan JSON file"
    )
    validate_parser.add_argument(
        "plan", type=Path, help="fault-plan JSON file",
    )
    validate_parser.add_argument(
        "--num-replicas", "--replicas", type=int, default=None,
        metavar="N",
        help="also range-check replica indices against a deployment "
             "of N replicas (the same check FaultInjector.arm applies "
             "at deployment time)",
    )
    _hidden_alias(validate_parser, "--num_replicas", type=int,
                  metavar="N", dest="num_replicas")
    trace_parser = sub.add_parser(
        "trace", help="inspect / convert a recorded JSONL trace"
    )
    trace_parser.add_argument(
        "trace", type=Path, help="JSONL trace recorded via --trace-out",
    )
    trace_parser.add_argument(
        "--chrome", type=Path, default=None, metavar="FILE",
        help="write a Chrome trace-event JSON (open in Perfetto or "
             "chrome://tracing)",
    )
    trace_parser.add_argument(
        "--validate", action="store_true",
        help="check every event against the trace schema; non-zero "
             "exit on the first mismatch",
    )
    trace_parser.add_argument(
        "--timeline", action="store_true",
        help="print the per-request timeline table (default when no "
             "other action is requested)",
    )
    trace_parser.add_argument(
        "--spans", type=Path, default=None, metavar="FILE",
        help="export request-scoped span trees (repro.obs.spans) "
             "to FILE",
    )
    trace_parser.add_argument(
        "--spans-format", choices=("otlp", "chrome"), default="otlp",
        help="span export format: OTLP/JSON (default) or Chrome "
             "trace-event JSON with flow arrows",
    )
    _hidden_alias(trace_parser, "--spans_format",
                  choices=("otlp", "chrome"))
    dashboard_parser = sub.add_parser(
        "dashboard",
        help="SLO-forensics report from a recorded JSONL trace",
    )
    dashboard_parser.add_argument(
        "trace", type=Path, help="JSONL trace recorded via --trace-out",
    )
    dashboard_parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write a single-file HTML report (inline SVG, no "
             "external assets) to FILE",
    )
    dashboard_parser.add_argument(
        "--window", type=float, default=60.0, metavar="SECONDS",
        help="burn-rate window in simulated seconds (default: 60)",
    )
    dashboard_parser.add_argument(
        "--slo-budget", type=float, default=0.01, metavar="FRACTION",
        help="allowed violation fraction per window (default: 0.01, "
             "the paper's 1%% goodput bar)",
    )
    _hidden_alias(dashboard_parser, "--slo_budget", type=float,
                  metavar="FRACTION")
    dashboard_parser.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation of the trace (validation is on "
             "by default; invalid events are a non-zero exit)",
    )
    _hidden_alias(dashboard_parser, "--no_validate",
                  action="store_true")
    dashboard_parser.add_argument(
        "--incidents", type=Path, default=None, metavar="FILE",
        help="cross-link a flight-recorder incident JSONL file "
             "(--incidents-out) into the report",
    )
    diff_parser = sub.add_parser(
        "diff",
        help="differential forensics between recorded runs of the "
             "same workload (repro.obs.diff)",
    )
    diff_parser.add_argument(
        "traces", nargs="+", type=Path, metavar="TRACE",
        help="two or more JSONL traces recorded via --trace-out; the "
             "first is the baseline every other trace is diffed "
             "against",
    )
    diff_parser.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="write the full deterministic diff (sorted keys, "
             "byte-identical across reruns) as JSON to FILE",
    )
    diff_parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write a single-file HTML diff report to FILE (multiple "
             "comparisons are concatenated)",
    )
    diff_parser.add_argument(
        "--context", type=int, default=8, metavar="N",
        help="shared pre-context events kept around the first "
             "divergence (default: 8)",
    )
    diff_parser.add_argument(
        "--no-validate", action="store_true",
        help="skip schema validation of the input traces",
    )
    _hidden_alias(diff_parser, "--no_validate", action="store_true")
    diff_parser.add_argument(
        "--expect-identical", action="store_true",
        help="exit non-zero unless every comparison is byte-identical "
             "(the engine-parity / determinism assertion mode)",
    )
    _hidden_alias(diff_parser, "--expect_identical",
                  action="store_true")
    serve_parser = sub.add_parser(
        "serve",
        help="online serving gateway (repro.serve)",
        parents=[observability],
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="HTTP listen address (default: 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="serve the HTTP API on PORT (0 = OS-assigned; omit for "
             "a pure offline --replay)",
    )
    serve_parser.add_argument(
        "--deployment", default="llama3-8b", metavar="NAME",
        help="execution-model preset (default: llama3-8b)",
    )
    serve_parser.add_argument(
        "--scheduler", default="qoserve", metavar="KIND",
        help="scheduler kind (default: qoserve; see "
             "repro.api.SCHEDULER_KINDS)",
    )
    serve_parser.add_argument(
        "--engine", default="objects", choices=("objects", "arrays"),
        help="engine core: the reference per-request loop or the "
             "struct-of-arrays loop (bit-identical results; see "
             "docs/PERFORMANCE.md; default: objects)",
    )
    serve_parser.add_argument(
        "--kv-reuse", default="off", choices=("off", "radix"),
        help="cross-request KV prefix reuse: 'radix' skips prefill "
             "for prompt prefixes already resident in the KV cache "
             "(multi-turn sessions, shared system prompts); 'off' is "
             "byte-identical to stacks without the prefix cache "
             "(default: off)",
    )
    _hidden_alias(serve_parser, "--kv_reuse", choices=("off", "radix"))
    serve_parser.add_argument(
        "--num-replicas", type=int, default=1, metavar="N",
        help="replica count (default: 1)",
    )
    _hidden_alias(serve_parser, "--num_replicas", type=int, metavar="N")
    serve_parser.add_argument(
        "--chunk-size", type=int, default=256, metavar="TOKENS",
        help="prefill chunk size (default: 256)",
    )
    _hidden_alias(serve_parser, "--chunk_size", type=int,
                  metavar="TOKENS")
    serve_parser.add_argument(
        "--routing", default=None, metavar="STRATEGY",
        help="multi-replica routing strategy (default: round-robin, "
             "or perf-aware with --fleet)",
    )
    serve_parser.add_argument(
        "--fleet", default=None, metavar="SPEC",
        help="serve from a heterogeneous elastic fleet instead of a "
             "fixed pool; SPEC lists initial replicas per hardware "
             "class, e.g. 'a100:2,h100:1' (see docs/RESILIENCE.md)",
    )
    serve_parser.add_argument(
        "--autoscaler", default="burn-rate",
        choices=("off", "busy-fraction", "burn-rate"),
        help="fleet autoscaling policy (default: burn-rate; needs "
             "--fleet)",
    )
    serve_parser.add_argument(
        "--max-replicas", type=int, default=8, metavar="N",
        help="fleet size ceiling for the autoscaler (default: 8)",
    )
    _hidden_alias(serve_parser, "--max_replicas", type=int,
                  metavar="N")
    serve_parser.add_argument(
        "--fault-plan", type=Path, default=None, metavar="FILE",
        help="JSON fault schedule injected into the fleet (needs "
             "--fleet; see docs/RESILIENCE.md)",
    )
    _hidden_alias(serve_parser, "--fault_plan", type=Path,
                  metavar="FILE")
    serve_parser.add_argument(
        "--speed", type=_parse_speed, default=math.inf, metavar="FACTOR",
        help="virtual seconds simulated per wall second; 'inf' (the "
             "default) disables pacing entirely",
    )
    serve_parser.add_argument(
        "--rate", type=float, default=None, metavar="QPS",
        help="global token-bucket admission rate in requests per "
             "virtual second (default: unlimited)",
    )
    serve_parser.add_argument(
        "--tier-rate", action="append", default=None, metavar="TIER=QPS",
        help="per-tier admission-rate override (repeatable, e.g. "
             "--tier-rate Q3=2)",
    )
    _hidden_alias(serve_parser, "--tier_rate", action="append",
                  metavar="TIER=QPS")
    serve_parser.add_argument(
        "--burst", type=float, default=8.0, metavar="N",
        help="token-bucket burst capacity (default: 8)",
    )
    serve_parser.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="backpressure threshold: above this many queued requests "
             "the relegation victim ordering picks what to shed "
             "(default: unlimited)",
    )
    _hidden_alias(serve_parser, "--max_queue_depth", type=int,
                  metavar="N")
    serve_parser.add_argument(
        "--replay", type=Path, default=None, metavar="CSV",
        help="drive the gateway open-loop from an Azure-format trace "
             "CSV (TIMESTAMP / ContextTokens / GeneratedTokens)",
    )
    serve_parser.add_argument(
        "--replay-qps", type=float, default=None, metavar="QPS",
        help="rescale --replay arrival gaps to this mean rate",
    )
    _hidden_alias(serve_parser, "--replay_qps", type=float,
                  metavar="QPS")
    serve_parser.add_argument(
        "--replay-limit", type=int, default=None, metavar="N",
        help="offer only the first N --replay arrivals",
    )
    _hidden_alias(serve_parser, "--replay_limit", type=int,
                  metavar="N")
    serve_parser.add_argument(
        "--summary-out", type=Path, default=None, metavar="FILE",
        help="write the final gateway counters and run summary as "
             "JSON to FILE",
    )
    _hidden_alias(serve_parser, "--summary_out", type=Path,
                  metavar="FILE")
    top_parser = sub.add_parser(
        "top",
        help="live terminal dashboard over /v1/live (or an incident "
             "file)",
    )
    top_parser.add_argument(
        "--url", default="http://127.0.0.1:8080", metavar="URL",
        help="gateway base URL (default: http://127.0.0.1:8080)",
    )
    top_parser.add_argument(
        "--incidents", type=Path, default=None, metavar="FILE",
        help="render a flight-recorder incident JSONL file instead of "
             "connecting to a gateway",
    )
    top_parser.add_argument(
        "--once", action="store_true",
        help="render a single frame and exit",
    )
    top_parser.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="wall seconds between frames (default: 1)",
    )
    top_parser.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="stop after N frames (default: 0 = until interrupted)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. piped into `head`); behave
        # like a Unix filter: point the fd at devnull so the interpreter
        # does not complain again at shutdown, exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    registry = _registry()

    if args.command == "list":
        width = max(len(name) for name in registry)
        for name, (description, _) in registry.items():
            print(f"{name:<{width}}  {description}")
        return 0

    if args.command == "report":
        from repro.experiments.report import write_report

        path = write_report(
            registry, SCALES[args.scale], args.out,
            scale_label=args.scale,
        )
        print(f"report written to {path}")
        return 0

    if args.command == "trace":
        return _trace_command(args)

    if args.command == "dashboard":
        return _dashboard_command(args)

    if args.command == "diff":
        return _diff_command(args)

    if args.command == "faults":
        return _faults_command(args)

    if args.command == "bench":
        return _bench_command(args)

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "top":
        return _top_command(args)

    names = list(args.experiments)
    if names == ["all"]:
        names = list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2

    scale = SCALES[args.scale]
    from repro.experiments.parallel import (
        ParallelConfig,
        set_parallel_config,
    )

    if args.cache_dir is not None:
        # Fail fast with a clean message rather than mid-sweep inside
        # a worker process.
        try:
            args.cache_dir.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            return _path_error("create --cache-dir", error)
    set_parallel_config(
        ParallelConfig(jobs=max(1, args.jobs), cache_dir=args.cache_dir)
    )
    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults import (
            FaultPlan,
            FaultPlanError,
            set_default_fault_plan,
        )

        try:
            fault_plan = FaultPlan.from_file(args.fault_plan)
        except OSError as error:
            return _path_error("read --fault-plan", error)
        except FaultPlanError as error:
            print(f"invalid fault plan {args.fault_plan}: {error}",
                  file=sys.stderr)
            return 1
    try:
        observer = _install_observer(args)
    except OSError as error:
        return _path_error("open --trace-out", error)
    if fault_plan is not None:
        set_default_fault_plan(fault_plan)
        print(f"fault plan {args.fault_plan} armed "
              f"({len(fault_plan)} events)")
    exit_code = 0
    try:
        for name in names:
            description, run = registry[name]
            print(f"--- {name}: {description} (scale={args.scale}) ---")
            started = time.time()
            results = run(scale)
            elapsed = time.time() - started
            for result in results:
                text = result.render()
                print(text)
                print()
                if args.plot is not None:
                    from repro.experiments.plotting import plot_result

                    try:
                        print(plot_result(result, args.plot,
                                          log_y=args.log_y))
                    except KeyError as error:
                        print(f"(plot skipped: {error})")
                    print()
                if args.out is not None:
                    with args.out.open("a") as sink:
                        sink.write(text + "\n\n")
            print(f"[{name} done in {elapsed:.1f}s]")
    finally:
        if fault_plan is not None:
            set_default_fault_plan(None)
        try:
            _teardown_observer(observer, args)
        except OSError as error:
            exit_code = _path_error("write observability output", error)
    return exit_code


def _path_error(context: str, error: Exception) -> int:
    """Uniform exit for an unreadable or unwritable user-supplied path.

    Every CLI flag that touches the filesystem (``--trace-out``,
    ``--metrics-out``, ``--fault-plan``, ``--replay``,
    ``--summary-out``, ``trace`` / ``faults`` inputs) funnels OS
    errors through here so the message shape is identical:
    ``cannot <action>: <os error>``.
    """
    print(f"cannot {context}: {error}", file=sys.stderr)
    return 1


def _serve_command(args) -> int:
    """Implement ``repro serve``: the online gateway front end."""
    if args.port is None and args.replay is None:
        print("serve needs --port (HTTP API), --replay (trace-driven), "
              "or both", file=sys.stderr)
        return 2

    tier_rates: dict[str, float] = {}
    for item in args.tier_rate or []:
        name, sep, value = item.partition("=")
        try:
            if not sep or not name:
                raise ValueError
            tier_rates[name] = float(value)
        except ValueError:
            print(f"--tier-rate expects TIER=QPS, got {item!r}",
                  file=sys.stderr)
            return 2

    from repro.api import ServeConfig, Session
    from repro.serve import AdmissionConfig, GatewayConfig, ServeGateway

    trace = None
    if args.replay is not None:
        from repro.workload import load_azure_trace

        try:
            trace = load_azure_trace(
                args.replay,
                target_qps=args.replay_qps,
                max_requests=args.replay_limit,
            )
        except OSError as error:
            return _path_error("read --replay", error)
        except ValueError as error:
            print(f"invalid replay trace {args.replay}: {error}",
                  file=sys.stderr)
            return 1

    fleet_config = None
    if args.fleet is not None:
        from repro.cluster.fleet import parse_fleet_spec

        try:
            fleet_config = parse_fleet_spec(
                args.fleet, max_replicas=args.max_replicas
            )
        except ValueError as error:
            print(f"invalid --fleet spec: {error}", file=sys.stderr)
            return 2

    fault_plan = None
    if args.fault_plan is not None:
        if fleet_config is None:
            print("--fault-plan needs --fleet (chaos runs on the "
                  "fault-tolerant fleet deployment)", file=sys.stderr)
            return 2
        from repro.faults.plan import FaultPlan

        try:
            fault_plan = FaultPlan.from_file(args.fault_plan)
        except OSError as error:
            return _path_error("read --fault-plan", error)
        except (KeyError, ValueError) as error:
            print(f"invalid fault plan {args.fault_plan}: {error}",
                  file=sys.stderr)
            return 1

    routing = args.routing or (
        "perf-aware" if fleet_config is not None else "round-robin"
    )

    try:
        observer = _install_observer(args)
    except OSError as error:
        return _path_error("open --trace-out", error)

    exit_code = 0
    try:
        try:
            session = Session(ServeConfig(
                deployment=args.deployment,
                scheduler=args.scheduler,
                engine=args.engine,
                kv_reuse=args.kv_reuse,
                chunk_size=args.chunk_size,
                num_replicas=args.num_replicas,
                routing=routing,
                fleet=fleet_config,
                fleet_autoscaler=args.autoscaler,
                fault_plan=fault_plan,
            ))
            gateway = ServeGateway(session, config=GatewayConfig(
                speed=args.speed,
                admission=AdmissionConfig(
                    rate=args.rate,
                    burst=args.burst,
                    max_queue_depth=args.max_queue_depth,
                    per_tier_rate=tier_rates,
                ),
            ))
        except (KeyError, ValueError) as error:
            # ServeConfig / deployment-lookup messages are already
            # user-facing.
            print(error.args[0] if error.args else error,
                  file=sys.stderr)
            return 2

        if args.port is None and not gateway.clock.is_realtime:
            summary = gateway.replay(trace)
            exit_code = _serve_epilogue(gateway, summary, args)
        else:
            exit_code = _serve_online(gateway, trace, args)
    finally:
        try:
            _teardown_observer(observer, args)
        except OSError as error:
            exit_code = _path_error("write observability output", error)
    return exit_code


def _serve_online(gateway, trace, args) -> int:
    """Run the asyncio gateway: HTTP front end and/or paced replay."""
    import signal
    import threading

    from repro.serve import GatewayHTTPServer, GatewayRuntime

    runtime = GatewayRuntime(gateway)
    runtime.start()
    server = None
    try:
        if args.port is not None:
            try:
                server = GatewayHTTPServer(
                    (args.host, args.port), runtime
                )
            except OSError as error:
                return _path_error(
                    f"bind {args.host}:{args.port}", error
                )
            server.start_background()
            print(f"serving on http://{args.host}:{server.port}",
                  flush=True)

        stop = threading.Event()
        previous = {}
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous[signum] = signal.signal(
                    signum, lambda *_: stop.set()
                )
        except ValueError:
            pass  # not the main thread (in-process tests); no signals
        try:
            if trace is not None:
                from repro.workload import OpenLoopReplay, wait_drained

                report = runtime.call(
                    OpenLoopReplay(trace).drive(gateway)
                )
                runtime.call(wait_drained(gateway))
                print(f"replay complete: {report.offered} offered, "
                      f"{report.admitted} admitted, "
                      f"{report.shed} shed")
            else:
                stop.wait()
        except KeyboardInterrupt:
            pass
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
    finally:
        if server is not None:
            server.stop()
        runtime.stop()
    summary = (
        gateway.session.summary(requests=gateway.offered)
        if gateway.offered else None
    )
    code = _serve_epilogue(gateway, summary, args)
    print("gateway shut down cleanly")
    return code


def _serve_epilogue(gateway, summary, args) -> int:
    """Print final gateway counters; honour ``--summary-out``."""
    import json

    stats = gateway.stats
    print(f"gateway: admitted={stats.admitted_total} "
          f"shed={stats.shed_total} "
          f"tokens_streamed={stats.tokens_streamed_total}")
    if summary is not None:
        print(f"summary: {summary.finished}/{summary.num_requests} "
              f"finished, {summary.violations.overall_pct:.1f}% "
              "violations")
    fleet = getattr(gateway.session, "fleet", None)
    if fleet is not None:
        fstats = fleet.fleet_stats()
        by_hw = " ".join(
            f"{name}={count}"
            for name, count in sorted(fstats["by_hardware"].items())
        )
        print(f"fleet: size={fstats['fleet_size']} ({by_hw}) "
              f"gpu_hours={fstats['gpu_hours']:.3f} "
              f"scaling_actions={fstats['scaling_actions']} "
              f"crashes={fstats['crashes']} "
              f"faults_skipped={fstats['faults_skipped']} "
              f"max_burn={fstats['max_burn_rate']:.2f}x")
    if args.summary_out is not None:
        from repro.metrics import summary_to_dict

        payload = {
            "gateway": stats.to_dict(),
            "summary": (
                summary_to_dict(summary) if summary is not None
                else None
            ),
        }
        if fleet is not None:
            payload["fleet"] = fleet.fleet_stats()
        try:
            args.summary_out.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        except OSError as error:
            return _path_error("write --summary-out", error)
        print(f"summary written to {args.summary_out}")
    return 0


def _top_command(args) -> int:
    """Implement ``repro top``: live dashboard or incident viewer."""
    from repro.obs import read_incidents, render_incidents, render_top

    if args.incidents is not None:
        try:
            incidents = read_incidents(args.incidents)
        except OSError as error:
            return _path_error("read --incidents", error)
        except ValueError as error:
            print(f"invalid incident file: {error}", file=sys.stderr)
            return 1
        print(render_incidents(incidents))
        return 0

    import json
    import urllib.error
    import urllib.request

    if args.interval <= 0:
        print("--interval must be > 0", file=sys.stderr)
        return 2
    frames = 1 if args.once else max(0, args.frames)
    url = (f"{args.url.rstrip('/')}/v1/live"
           f"?frames={frames}&interval={args.interval}")
    try:
        response = urllib.request.urlopen(url)
    except (urllib.error.URLError, OSError) as error:
        print(f"cannot connect to {args.url}: {error}", file=sys.stderr)
        return 1
    rendered = 0
    try:
        with response:
            for raw in response:
                line = raw.decode().strip()
                if not line.startswith("data: "):
                    continue
                snapshot = json.loads(line[len("data: "):])
                if rendered:
                    print()
                print(render_top(snapshot), flush=True)
                rendered += 1
    except KeyboardInterrupt:
        pass
    if rendered == 0:
        print("no frames received", file=sys.stderr)
        return 1
    return 0


def _bench_command(args) -> int:
    """Implement ``repro bench``: run the perf-trajectory harness."""
    from repro.bench import diff_baseline_check, run_bench, write_bench

    report = run_bench(quick=args.quick, jobs=args.jobs)
    diverged = False
    if args.diff_baseline is not None:
        try:
            section = diff_baseline_check(
                args.diff_baseline, quick=args.quick
            )
        except OSError as error:
            return _path_error("read --diff-baseline", error)
        report["behavioral_diff"] = section
        if section["recorded"]:
            print(f"behavioral baseline recorded to "
                  f"{args.diff_baseline} "
                  f"({section['num_events']} events)")
        elif section["identical"]:
            print(f"behavioral diff vs {args.diff_baseline}: "
                  "byte-identical")
        else:
            diverged = True
            where = section.get("first_divergence_index", "count")
            print(f"behavioral diff vs {args.diff_baseline}: "
                  f"DIVERGED at event #{where} "
                  f"(good_delta={section.get('good_delta', 0):+d})",
                  file=sys.stderr)
    try:
        path = write_bench(report, out=args.out)
    except OSError as error:
        return _path_error("write bench report", error)
    print(f"benchmark report written to {path}")
    return 1 if diverged else 0


def _faults_command(args) -> int:
    """Implement ``repro faults validate``: lint a plan file."""
    import json

    from repro.faults import validate_plan_dict

    try:
        text = args.plan.read_text()
    except OSError as error:
        return _path_error("read fault plan", error)
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        print(f"{args.plan}: not valid JSON: {error}", file=sys.stderr)
        return 1
    problems = validate_plan_dict(payload, num_replicas=args.num_replicas)
    if problems:
        for problem in problems:
            print(f"{args.plan}: {problem}", file=sys.stderr)
        return 1
    count = len(payload.get("events", []))
    print(f"{args.plan}: valid fault plan ({count} events)")
    return 0


def _install_observer(args):
    """Enable process-wide tracing when ``run`` asked for outputs."""
    incidents_out = getattr(args, "incidents_out", None)
    if (
        args.trace_out is None
        and args.metrics_out is None
        and incidents_out is None
    ):
        return None
    from repro.obs import (
        FlightRecorder,
        JSONLSink,
        TraceRecorder,
        TracingObserver,
        set_default_observer,
    )

    sinks = [JSONLSink(args.trace_out)] if args.trace_out else []
    if incidents_out is not None:
        sinks.append(FlightRecorder(incidents_out))
    observer = TracingObserver(recorder=TraceRecorder(sinks))
    if incidents_out is not None:
        # Surfaced in /v1/live frames and the epilogue line.
        observer.flight_recorder = sinks[-1]
    set_default_observer(observer)
    return observer


def _teardown_observer(observer, args) -> None:
    if observer is None:
        return
    from repro.obs import set_default_observer

    set_default_observer(None)
    observer.close()
    if args.trace_out is not None:
        print(f"trace written to {args.trace_out} "
              f"({observer.recorder.total_events} events)")
    if args.metrics_out is not None:
        observer.registry.write_prometheus(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    recorder = getattr(observer, "flight_recorder", None)
    if recorder is not None:
        print(f"flight recorder: {recorder.incidents_written} "
              f"incident(s) written to {recorder.path}")


def _trace_command(args) -> int:
    """Implement ``repro trace``: validate / convert / tabulate."""
    from repro.obs import (
        TraceSchemaError,
        read_jsonl_trace,
        render_timeline,
        write_chrome_trace,
    )

    try:
        events = read_jsonl_trace(args.trace, validate=args.validate)
    except OSError as error:
        return _path_error("read trace", error)
    except (TraceSchemaError, ValueError) as error:
        print(f"invalid trace: {error}", file=sys.stderr)
        return 1
    if args.validate:
        print(f"{args.trace}: {len(events)} events, schema ok")
    if args.chrome is not None:
        write_chrome_trace(events, args.chrome)
        print(f"chrome trace written to {args.chrome} "
              f"(open in Perfetto or chrome://tracing)")
    if args.spans is not None:
        from repro.obs import write_spans

        try:
            count = write_spans(events, args.spans,
                                fmt=args.spans_format)
        except OSError as error:
            return _path_error("write --spans", error)
        print(f"{count} span tree(s) written to {args.spans} "
              f"({args.spans_format})")
    if args.timeline or (
        not args.validate and args.chrome is None and args.spans is None
    ):
        print(render_timeline(events))
    return 0


def _dashboard_command(args) -> int:
    """Implement ``repro dashboard``: SLO forensics from a trace."""
    from repro.obs import (
        TraceSchemaError,
        build_dashboard_data,
        read_jsonl_trace,
        render_html,
        render_terminal,
    )

    if args.window <= 0:
        print("--window must be > 0", file=sys.stderr)
        return 2
    if not 0.0 < args.slo_budget <= 1.0:
        print("--slo-budget must be in (0, 1]", file=sys.stderr)
        return 2
    try:
        events = read_jsonl_trace(
            args.trace, validate=not args.no_validate
        )
    except OSError as error:
        return _path_error("read trace", error)
    except (TraceSchemaError, ValueError) as error:
        print(f"invalid trace: {error}", file=sys.stderr)
        return 1
    incidents = None
    if args.incidents is not None:
        from repro.obs import read_incidents

        try:
            incidents = read_incidents(args.incidents)
        except OSError as error:
            return _path_error("read --incidents", error)
        except ValueError as error:
            print(f"invalid incident file: {error}", file=sys.stderr)
            return 1
    data = build_dashboard_data(
        events, burn_window=args.window, slo_budget=args.slo_budget,
        incidents=incidents,
    )
    print(render_terminal(data), end="")
    if args.out is not None:
        html_report = render_html(
            data, title=f"repro dashboard — {args.trace.name}"
        )
        try:
            args.out.write_text(html_report)
        except OSError as error:
            return _path_error("write --out", error)
        print(f"html report written to {args.out}")
    return 0


def _diff_command(args) -> int:
    """Implement ``repro diff``: differential forensics over traces."""
    import json

    from repro.obs import (
        TraceSchemaError,
        diff_runs,
        read_jsonl_trace,
        render_diff_html,
        render_diff_terminal,
    )

    if len(args.traces) < 2:
        print("diff needs at least two traces (baseline first)",
              file=sys.stderr)
        return 2
    if args.context < 0:
        print("--context must be >= 0", file=sys.stderr)
        return 2

    runs = []
    for path in args.traces:
        try:
            events = read_jsonl_trace(
                path, validate=not args.no_validate
            )
        except OSError as error:
            return _path_error("read trace", error)
        except (TraceSchemaError, ValueError) as error:
            print(f"invalid trace {path}: {error}", file=sys.stderr)
            return 1
        runs.append((path, events))

    # Labels: file stems, disambiguated by position when they collide
    # (diffing run.jsonl against a re-recorded run.jsonl is common).
    stems = [path.stem for path, _ in runs]
    labels = [
        stem if stems.count(stem) == 1 else f"{stem}#{i}"
        for i, stem in enumerate(stems)
    ]

    base_events = runs[0][1]
    diffs = [
        diff_runs(
            base_events, events,
            base_label=labels[0], other_label=labels[i],
            context=args.context,
        )
        for i, (_, events) in enumerate(runs[1:], start=1)
    ]

    for i, diff in enumerate(diffs):
        if i:
            print()
        print(render_diff_terminal(diff), end="")

    if args.json is not None:
        payload = (
            diffs[0].to_dict() if len(diffs) == 1
            else [diff.to_dict() for diff in diffs]
        )
        try:
            args.json.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
        except OSError as error:
            return _path_error("write --json", error)
        print(f"diff json written to {args.json}")

    if args.out is not None:
        html = "\n".join(
            render_diff_html(
                diff,
                title=f"repro diff — {diff.base_label} vs "
                      f"{diff.other_label}",
            )
            for diff in diffs
        )
        try:
            args.out.write_text(html)
        except OSError as error:
            return _path_error("write --out", error)
        print(f"html report written to {args.out}")

    if args.expect_identical:
        broken = [diff for diff in diffs if not diff.identical]
        if broken:
            for diff in broken:
                assert diff.first_divergence is not None or (
                    diff.num_events[0] != diff.num_events[1]
                )
                where = (
                    f"event #{diff.first_divergence.index}"
                    if diff.first_divergence is not None
                    else "event counts"
                )
                print(
                    f"{diff.base_label} vs {diff.other_label}: "
                    f"runs diverge at {where}",
                    file=sys.stderr,
                )
            return 1
        print("all runs byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
