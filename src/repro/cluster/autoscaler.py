"""Reactive autoscaling over a shared replica pool.

Section 2.3 frames the provisioning problem — "dedicated clusters
often operate well below their maximum capacity" — and the related
work (SageServe) manages it with reactive scaling.  This module adds
that operational layer on top of any scheduler: a control loop samples
per-replica busy fraction, provisions new replicas with a realistic
cold-start delay (VM + weight loading), and drains surplus replicas
gracefully (they stop receiving work and release their GPUs once
empty).  GPU-hours are integrated exactly, so autoscaled and static
provisioning can be compared on cost at equal SLO attainment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.request import Request
from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.metrics.summary import RunSummary, summarize_run
from repro.perfmodel.execution import ExecutionModel
from repro.simcore.simulator import Simulator
from repro.workload.trace import Trace
from repro.cluster.deployment import SchedulerFactory


@dataclass(frozen=True)
class AutoscalerConfig:
    """Control-loop parameters.

    Attributes:
        min_replicas / max_replicas: Pool size bounds.
        control_interval: Seconds between control decisions.
        scale_up_threshold: Mean busy fraction above which a replica
            is added.
        scale_down_threshold: Mean busy fraction below which a replica
            is drained (only when above ``min_replicas``).
        provision_delay: Cold-start seconds before a new replica
            serves (VM allocation + model weight loading).
        max_step_up: Replicas added per control decision at most.
    """

    min_replicas: int = 1
    max_replicas: int = 16
    control_interval: float = 60.0
    scale_up_threshold: float = 0.85
    scale_down_threshold: float = 0.45
    provision_delay: float = 120.0
    max_step_up: int = 2

    def __post_init__(self) -> None:
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not 0 < self.scale_down_threshold < self.scale_up_threshold <= 1:
            raise ValueError(
                "need 0 < scale_down_threshold < scale_up_threshold <= 1"
            )
        if self.control_interval <= 0 or self.provision_delay < 0:
            raise ValueError("invalid timing parameters")


@dataclass
class _ReplicaSlot:
    engine: ReplicaEngine
    draining: bool = False
    released: bool = False
    last_busy_time: float = 0.0


class AutoscalingDeployment:
    """A replica pool whose size follows the offered load."""

    def __init__(
        self,
        execution_model: ExecutionModel,
        scheduler_factory: SchedulerFactory,
        config: AutoscalerConfig | None = None,
        replica_config: ReplicaConfig | None = None,
        simulator: Simulator | None = None,
    ) -> None:
        self.simulator = simulator or Simulator()
        self.execution_model = execution_model
        self.scheduler_factory = scheduler_factory
        self.config = config or AutoscalerConfig()
        self.replica_config = replica_config or ReplicaConfig()

        self._slots: list[_ReplicaSlot] = []
        self._pending_ready: int = 0
        self._next_route = 0
        self._next_replica_id = 0
        self._gpu_seconds = 0.0
        self._last_accounting_time = 0.0
        self._control_active = True
        self._submitted: list[Request] = []
        self.scaling_events: list[tuple[float, int]] = []

        for _ in range(self.config.min_replicas):
            self._add_replica()
        self._schedule_control()

    # --- pool management --------------------------------------------------

    def _add_replica(self) -> None:
        engine = ReplicaEngine(
            self.simulator,
            self.execution_model,
            self.scheduler_factory(),
            self.replica_config,
            replica_id=self._next_replica_id,
        )
        self._next_replica_id += 1
        self._slots.append(_ReplicaSlot(engine=engine))
        self.scaling_events.append(
            (self.simulator.now, self.active_replicas)
        )

    def _active_slots(self) -> list[_ReplicaSlot]:
        return [s for s in self._slots if not s.draining and not s.released]

    @property
    def active_replicas(self) -> int:
        return len(self._active_slots())

    @property
    def provisioned_replicas(self) -> int:
        """Replicas consuming GPUs: active + draining-but-not-empty."""
        return sum(1 for s in self._slots if not s.released)

    @property
    def gpu_hours(self) -> float:
        self._account()
        return (
            self._gpu_seconds * self.execution_model.tp_degree / 3600.0
        )

    def _account(self) -> None:
        now = self.simulator.now
        elapsed = now - self._last_accounting_time
        if elapsed > 0:
            self._gpu_seconds += elapsed * self.provisioned_replicas
            self._last_accounting_time = now

    # --- routing ----------------------------------------------------------

    def submit(self, request: Request) -> None:
        self._submitted.append(request)
        self.simulator.schedule(
            max(request.arrival_time, self.simulator.now),
            lambda: self._route(request),
        )

    def submit_trace(self, trace: Trace) -> None:
        for request in trace:
            self.submit(request)

    def _route(self, request: Request) -> None:
        active = self._active_slots()
        slot = active[self._next_route % len(active)]
        self._next_route += 1
        slot.engine.submit_now(request)

    # --- control loop -------------------------------------------------------

    def _schedule_control(self) -> None:
        if not self._control_active:
            return
        self.simulator.schedule_after(
            self.config.control_interval, self._control_tick, priority=-1
        )

    def stop_control(self) -> None:
        """Stop the control loop (ends the self-perpetuating events)."""
        self._control_active = False

    def _control_tick(self) -> None:
        self._account()
        self._release_drained()
        active = self._active_slots()
        if active:
            utilizations = []
            for slot in active:
                delta = slot.engine.busy_time - slot.last_busy_time
                slot.last_busy_time = slot.engine.busy_time
                utilizations.append(
                    min(1.0, delta / self.config.control_interval)
                )
            mean_utilization = sum(utilizations) / len(utilizations)
        else:
            mean_utilization = 1.0

        planned = self.active_replicas + self._pending_ready
        if (
            mean_utilization >= self.config.scale_up_threshold
            and planned < self.config.max_replicas
        ):
            steps = min(
                self.config.max_step_up,
                self.config.max_replicas - planned,
            )
            for _ in range(steps):
                self._pending_ready += 1
                self.simulator.schedule_after(
                    self.config.provision_delay, self._replica_ready
                )
        elif (
            mean_utilization <= self.config.scale_down_threshold
            and self.active_replicas > self.config.min_replicas
            and self._pending_ready == 0
        ):
            # Drain the active replica with the least outstanding work.
            def outstanding(slot: _ReplicaSlot) -> int:
                pending = len(slot.engine.scheduler.pending_requests())
                return slot.engine.running_requests + pending

            victim = min(self._active_slots(), key=outstanding)
            victim.draining = True
            self.scaling_events.append(
                (self.simulator.now, self.active_replicas)
            )
        self._schedule_control()

    def _replica_ready(self) -> None:
        self._account()
        self._pending_ready -= 1
        self._add_replica()

    def _release_drained(self) -> None:
        for slot in self._slots:
            if (
                slot.draining
                and not slot.released
                and not slot.engine.has_work()
                and slot.engine.running_requests == 0
            ):
                slot.released = True

    # --- results ----------------------------------------------------------

    def run(self, until: float | None = None,
            max_events: int | None = None) -> float:
        return self.simulator.run(until=until, max_events=max_events)

    def run_until_drained(
        self,
        check_interval: float = 30.0,
        max_simulated_time: float = 1e7,
    ) -> float:
        """Advance time until every submitted request completed.

        The control loop is self-perpetuating, so a plain ``run()``
        would never return; this drives the clock in slabs, checks for
        drain, then stops the controller.
        """
        while self.simulator.now < max_simulated_time:
            self.simulator.run(until=self.simulator.now + check_interval)
            requests = self.all_requests()
            if requests and all(r.is_finished for r in requests):
                break
            if not requests and self.simulator.pending_events == 0:
                break
        self.stop_control()
        self._account()
        return self.simulator.now

    def all_requests(self) -> list[Request]:
        return list(self._submitted)

    def summarize(self, now: float | None = None) -> RunSummary:
        return summarize_run(
            self.all_requests(),
            now=now if now is not None else self.simulator.now,
        )
