"""Heterogeneous, elastic, fault-tolerant replica fleets.

ROADMAP item 5 composes three layers that previously only existed in
isolation:

1. **Heterogeneous deployments** — every replica carries its own
   :class:`~repro.perfmodel.execution.ExecutionModel` (A100 vs H100,
   different TP widths), described by a :class:`HardwareClass` with a
   $/GPU-hour price.  The ``perf-aware`` routing strategy (see
   :mod:`repro.cluster.deployment`) sends prefill-heavy work to
   compute-rich replicas and decode-heavy work to memory-rich ones.
2. **SLO-aware autoscaling** — :class:`BurnRateAutoscaler` drives
   resizing from the error-budget burn rate of completed requests
   (scale up when the budget burns hot, drain only when burn is cold
   *and* utilization is low) and picks *which* hardware to provision
   by cost per unit of bottleneck capability.
   :class:`BusyFractionAutoscaler` is the classic load-following
   baseline (same thresholds as ``cluster.autoscaler``) so the two
   policies can be compared on goodput per GPU-hour.
3. **Chaos coherence** — the fleet extends
   :class:`~repro.cluster.resilient.ResilientClusterDeployment`, so
   crashes, stragglers, retries, watchdogs and tier-aware shedding
   interoperate with resizing: a draining replica is never a routing
   or retry target, a crashed replica does not count toward the pool
   bound (its replacement can be provisioned), and fault-plan events
   aimed at slots that are drained, released or not yet provisioned
   resolve to ``fault_skipped`` trace events instead of raising.

Determinism: all control decisions are pure functions of simulated
time and engine state, provisioning uses ``schedule_after`` with the
same pre-work priority as ``cluster.autoscaler``, and GPU-hours/cost
are integrated exactly per slot — two same-seed runs produce
byte-identical summaries (pinned in ``tests/test_cluster_fleet.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.deployment import SchedulerFactory, _chain
from repro.cluster.resilient import ResilientClusterDeployment
from repro.core.request import Request
from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResilienceConfig
from repro.obs.sketch import BurnRateTracker
from repro.perfmodel.execution import ExecutionModel
from repro.perfmodel.hardware import A100_80GB, H100_80GB, HardwareSpec
from repro.simcore.simulator import Simulator

#: Control ticks and provisioning fire before same-timestamp regular
#: work, matching ``cluster.autoscaler``.
CONTROL_PRIORITY = -1


@dataclass(frozen=True)
class HardwareClass:
    """One procurable hardware flavour with its market price.

    ``cost_per_gpu_hour`` is in arbitrary but consistent units
    (defaults roughly track the on-demand A100/H100 price ratio).
    """

    name: str
    hardware: HardwareSpec
    tp_degree: int = 1
    cost_per_gpu_hour: float = 1.0

    def __post_init__(self) -> None:
        if self.tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")
        if self.cost_per_gpu_hour <= 0:
            raise ValueError("cost_per_gpu_hour must be > 0")

    @property
    def cost_rate(self) -> float:
        """Cost per replica-hour (all TP ranks)."""
        return self.cost_per_gpu_hour * self.tp_degree

    def capability(self, compute_bound: bool) -> float:
        """Per-GPU capability on the governing bottleneck."""
        if compute_bound:
            return self.hardware.peak_flops * self.hardware.mfu_linear
        return self.hardware.mem_bandwidth


@dataclass(frozen=True)
class FleetConfig:
    """Fleet composition bounds and control-loop timing.

    Attributes:
        classes: The procurable hardware classes (unique names).
        initial: Hardware-class name per initially provisioned
            replica (its length is the starting fleet size).
        min_replicas / max_replicas: Pool-size bounds counted over
            healthy, non-released replicas — a crashed replica does
            not occupy a slot, so its replacement can be provisioned.
        control_interval: Seconds between autoscaler decisions.
        provision_delay: Cold-start seconds before a newly bought
            replica serves (VM allocation + weight loading).
        max_step_up: Replicas added per control decision at most.
    """

    classes: tuple[HardwareClass, ...]
    initial: tuple[str, ...]
    min_replicas: int = 1
    max_replicas: int = 8
    control_interval: float = 30.0
    provision_delay: float = 60.0
    max_step_up: int = 2

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("need at least one hardware class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate hardware class names: {names}")
        if not self.initial:
            raise ValueError("need at least one initial replica")
        unknown = set(self.initial) - set(names)
        if unknown:
            raise ValueError(
                f"initial classes {sorted(unknown)} not in {names}"
            )
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if len(self.initial) > self.max_replicas:
            raise ValueError("initial fleet exceeds max_replicas")
        if self.control_interval <= 0 or self.provision_delay < 0:
            raise ValueError("invalid timing parameters")

    def class_named(self, name: str) -> HardwareClass:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(f"unknown hardware class {name!r}")


#: Built-in procurable catalog for the CLI and experiments.  Prices
#: track the on-demand A100/H100 ratio: H100 wins on cost-per-FLOP
#: (2.9x compute at 2.5x price), A100 on cost-per-bandwidth (H100 is
#: only 1.6x), so the burn-rate hardware chooser has a real decision.
DEFAULT_HARDWARE_CLASSES = (
    HardwareClass("a100", A100_80GB, cost_per_gpu_hour=1.0),
    HardwareClass("h100", H100_80GB, cost_per_gpu_hour=2.5),
)


def parse_fleet_spec(
    spec: str,
    *,
    classes: tuple[HardwareClass, ...] = DEFAULT_HARDWARE_CLASSES,
    min_replicas: int = 1,
    max_replicas: int = 8,
    control_interval: float = 30.0,
    provision_delay: float = 60.0,
    max_step_up: int = 2,
) -> FleetConfig:
    """Parse ``"a100:2,h100:1"`` into a :class:`FleetConfig`.

    Each comma-separated entry is ``class`` or ``class:count``;
    classes resolve against the built-in catalog by default.
    """
    by_name = {c.name: c for c in classes}
    initial: list[str] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, count_text = entry.partition(":")
        name = name.strip()
        if name not in by_name:
            raise ValueError(
                f"unknown hardware class {name!r}; "
                f"options: {sorted(by_name)}"
            )
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            raise ValueError(
                f"invalid replica count in fleet entry {entry!r}"
            ) from None
        if count < 1:
            raise ValueError(
                f"invalid replica count in fleet entry {entry!r}"
            )
        initial.extend([name] * count)
    if not initial:
        raise ValueError(f"empty fleet spec {spec!r}")
    return FleetConfig(
        classes=tuple(classes),
        initial=tuple(initial),
        min_replicas=min_replicas,
        max_replicas=max(max_replicas, len(initial)),
        control_interval=control_interval,
        provision_delay=provision_delay,
        max_step_up=max_step_up,
    )


class BusyFractionAutoscaler:
    """Classic load-following policy: scale on mean busy fraction.

    The decision thresholds mirror
    :class:`~repro.cluster.autoscaler.AutoscalerConfig`; hardware
    choice is pure cost efficiency (cheapest compute capability).
    """

    def __init__(
        self,
        scale_up_threshold: float = 0.85,
        scale_down_threshold: float = 0.45,
    ) -> None:
        if not 0 < scale_down_threshold < scale_up_threshold <= 1:
            raise ValueError(
                "need 0 < scale_down_threshold < scale_up_threshold <= 1"
            )
        self.scale_up_threshold = scale_up_threshold
        self.scale_down_threshold = scale_down_threshold

    def decide(self, fleet: "FleetDeployment", now: float) -> int:
        utilization = fleet.last_mean_utilization
        if utilization >= self.scale_up_threshold:
            return 1
        if utilization <= self.scale_down_threshold:
            return -1
        return 0

    def choose_class(self, fleet: "FleetDeployment") -> HardwareClass:
        return fleet.cheapest_class(compute_bound=True)


class BurnRateAutoscaler:
    """Error-budget-driven policy: capacity follows the SLO burn rate.

    Scale **up** when the recent burn rate (violation rate over the
    SLO budget, from the fleet's own
    :class:`~repro.obs.sketch.BurnRateTracker`) is at or above
    ``burn_hot`` — the budget is being spent faster than allowed, so
    waiting for utilization to saturate would ship the violations
    first.  Scale **down** only when burn is at or below ``burn_cold``
    *and* mean utilization is at or below ``scale_down_utilization``:
    cold burn alone can mean the fleet is merely keeping up.  The
    default ``burn_cold`` of 1.0 is the SRE framing — spending budget
    at exactly the sustainable rate is, by definition, affordable.

    Hardware choice follows the violation mix: mostly-interactive
    violations are TTFT misses (prefill, compute-bound), so provision
    the best cost-per-FLOP class; otherwise TTLT misses dominate
    (decode, memory-bound) and the best cost-per-bandwidth class wins.
    """

    def __init__(
        self,
        burn_hot: float = 2.0,
        burn_cold: float = 1.0,
        scale_down_utilization: float = 0.45,
        lookback_windows: int = 1,
    ) -> None:
        if not 0 <= burn_cold < burn_hot:
            raise ValueError("need 0 <= burn_cold < burn_hot")
        if not 0 < scale_down_utilization <= 1:
            raise ValueError("need 0 < scale_down_utilization <= 1")
        if lookback_windows < 1:
            raise ValueError("lookback_windows must be >= 1")
        self.burn_hot = burn_hot
        self.burn_cold = burn_cold
        self.scale_down_utilization = scale_down_utilization
        self.lookback_windows = lookback_windows

    def decide(self, fleet: "FleetDeployment", now: float) -> int:
        # Buy on *capacity* evidence (completion violations under the
        # current fleet size); hold on *total* burn — never drain
        # while the budget is being spent for any reason, including
        # degradation sheds that procurement cannot fix.
        if fleet.capacity_burn_rate(now, self.lookback_windows) >= (
            self.burn_hot
        ):
            return 1
        if (
            fleet.recent_burn_rate(now, self.lookback_windows)
            <= self.burn_cold
            and fleet.last_mean_utilization <= self.scale_down_utilization
        ):
            return -1
        return 0

    def choose_class(self, fleet: "FleetDeployment") -> HardwareClass:
        interactive, batch = fleet.recent_violation_mix()
        return fleet.cheapest_class(compute_bound=interactive >= batch)


@dataclass
class _FleetSlot:
    """Bookkeeping for one replica's life in the pool."""

    engine: ReplicaEngine
    hw_class: HardwareClass
    provisioned_at: float
    draining: bool = False
    released: bool = False
    released_at: float | None = None
    last_busy_time: float = 0.0

    def gpu_hours(self, now: float) -> float:
        end = self.released_at if self.released_at is not None else now
        return (
            max(0.0, end - self.provisioned_at)
            * self.hw_class.tp_degree
            / 3600.0
        )


class FleetDeployment(ResilientClusterDeployment):
    """A heterogeneous, elastic, fault-tolerant replica pool.

    Args:
        execution_model: Model architecture reference (its
            :class:`~repro.perfmodel.models.ModelSpec` is deployed on
            every hardware class; per-replica execution models are
            derived from it).
        scheduler_factory: Fresh scheduler per replica, as elsewhere.
        fleet: Composition bounds and control timing.
        autoscaler: :class:`BurnRateAutoscaler`,
            :class:`BusyFractionAutoscaler`, any object with the same
            ``decide``/``choose_class`` surface, or ``None`` for a
            static fleet (no control loop).
        fault_plan: Armed against ``fleet.max_replicas`` — targeting a
            slot the fleet *could* provision is legal; firing at one
            that is currently absent becomes a ``fault_skipped``
            trace event.
    """

    def __init__(
        self,
        execution_model: ExecutionModel,
        scheduler_factory: SchedulerFactory,
        fleet: FleetConfig,
        replica_config: ReplicaConfig | None = None,
        simulator: Simulator | None = None,
        routing: str = "perf-aware",
        fault_plan: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
        autoscaler: object | None = None,
        burn_window: float = 60.0,
        slo_budget: float = 0.01,
        observer=None,
        engine_cls: type[ReplicaEngine] | None = None,
    ) -> None:
        self.fleet = fleet
        self.autoscaler = autoscaler
        initial_classes = [fleet.class_named(n) for n in fleet.initial]
        self.scheduler_factory = scheduler_factory
        super().__init__(
            execution_model,
            scheduler_factory,
            num_replicas=len(initial_classes),
            replica_config=replica_config,
            simulator=simulator,
            routing=routing,
            fault_plan=fault_plan,
            resilience=resilience,
            execution_models=[
                ExecutionModel(
                    execution_model.model, c.hardware, tp_degree=c.tp_degree
                )
                for c in initial_classes
            ],
            observer=observer,
            engine_cls=engine_cls,
        )
        self.replica_config = replica_config or ReplicaConfig()
        now = self.simulator.now
        self._slots: list[_FleetSlot] = [
            _FleetSlot(
                engine=replica, hw_class=cls, provisioned_at=now,
            )
            for replica, cls in zip(self.replicas, initial_classes)
        ]
        self._pending: list[HardwareClass] = []
        #: Completion hooks applied to replicas provisioned later.
        self._late_completion_hooks: list = []
        self._late_token_hooks: list = []
        #: The fleet's own burn trackers: observer-independent, so
        #: autoscaling decisions are identical with tracing on or off.
        #: ``burn`` is the *total* SLO spend (completed violations and
        #: shed arrivals) — the number an operator watches.
        #: ``capacity_burn`` sees completions only: shedding is the
        #: resilience layer's spend (admission control while degraded,
        #: ending with recovery), and buying replicas cannot shorten
        #: an MTTR — so procurement reacts to capacity evidence alone.
        self.burn = BurnRateTracker(window=burn_window, slo_budget=slo_budget)
        self.capacity_burn = BurnRateTracker(
            window=burn_window, slo_budget=slo_budget
        )
        self._violations_interactive = 0
        self._violations_batch = 0
        self.last_mean_utilization = 0.0
        self.scaling_events: list[tuple[float, str, int]] = []
        self.faults_skipped = 0
        #: Last time a bought replica came online — burn windows that
        #: straddle it are pre-resize evidence (see
        #: :meth:`recent_burn_rate`).
        self._last_capacity_change = 0.0
        self._control_active = autoscaler is not None
        #: True while the control loop has parked itself because the
        #: event queue is empty (see :meth:`_control_tick`).
        self._control_dormant = False
        if self._control_active:
            self._schedule_control()

    # --- composition ------------------------------------------------------

    @property
    def fleet_size(self) -> int:
        """Replicas provisioned and not yet released (any health)."""
        return sum(1 for s in self._slots if not s.released)

    @property
    def active_replicas(self) -> int:
        """Replicas accepting new work right now."""
        return len(self._eligible_replicas())

    def size_by_hardware(self) -> dict[str, int]:
        """Provisioned (non-released) replica count per class name."""
        counts: dict[str, int] = {c.name: 0 for c in self.fleet.classes}
        for slot in self._slots:
            if not slot.released:
                counts[slot.hw_class.name] += 1
        return counts

    def _pool_occupancy(self) -> int:
        """Slots counted against ``max_replicas``: healthy non-released
        replicas plus pending provisions.  Crashed replicas do not
        count — the bound limits *working* capacity, and a crash may
        be replaced immediately."""
        healthy = sum(
            1
            for s in self._slots
            if not s.released and s.engine.healthy
        )
        return healthy + len(self._pending)

    # --- health / routing (chaos coherence) -------------------------------

    def _eligible_replicas(self) -> list[ReplicaEngine]:
        return [
            s.engine
            for s in self._slots
            if s.engine.healthy and not s.draining and not s.released
        ]

    @property
    def alive_fraction(self) -> float:
        """Healthy share of the provisioned (non-released) pool."""
        provisioned = [s for s in self._slots if not s.released]
        if not provisioned:
            return 0.0
        healthy = sum(1 for s in provisioned if s.engine.healthy)
        return healthy / len(provisioned)

    def _fault_pool_size(self) -> int:
        return self.fleet.max_replicas

    def _slot_for(self, replica_id: int) -> _FleetSlot | None:
        if 0 <= replica_id < len(self._slots):
            return self._slots[replica_id]
        return None

    def _skip_fault(self, replica_id: int) -> str | None:
        """Why a fault on ``replica_id`` must be skipped (None = fire)."""
        slot = self._slot_for(replica_id)
        if slot is None:
            return "not_provisioned"
        if slot.released:
            return "released"
        if slot.draining:
            return "drained"
        return None

    def _emit_fault_skipped(self, replica_id: int, fault_kind: str,
                            reason: str) -> None:
        self.faults_skipped += 1
        self.replicas[0].observer.on_fault_skipped(
            replica_id, self.simulator.now, fault_kind, reason
        )

    def on_replica_crash(self, replica_id: int) -> None:
        reason = self._skip_fault(replica_id)
        if reason is not None:
            self._emit_fault_skipped(replica_id, "crash", reason)
            return
        super().on_replica_crash(replica_id)

    def on_replica_recover(self, replica_id: int) -> None:
        reason = self._skip_fault(replica_id)
        if reason is not None:
            self._emit_fault_skipped(replica_id, "recover", reason)
            return
        super().on_replica_recover(replica_id)

    def on_replica_slowdown(self, replica_id: int, factor: float) -> None:
        reason = self._skip_fault(replica_id)
        if reason is not None:
            self._emit_fault_skipped(replica_id, "slowdown", reason)
            return
        super().on_replica_slowdown(replica_id, factor)

    # --- hooks that must reach late-provisioned replicas ------------------

    def set_completion_hook(self, hook) -> None:
        self._late_completion_hooks.append(hook)
        super().set_completion_hook(hook)

    def set_token_hook(self, hook) -> None:
        self._late_token_hooks.append(hook)
        super().set_token_hook(hook)

    def _on_request_complete(self, request: Request, now: float) -> None:
        super()._on_request_complete(request, now)
        violated = request.violated_deadline
        self.burn.observe(now, violated)
        self.capacity_burn.observe(now, violated)
        if violated:
            if request.is_interactive:
                self._violations_interactive += 1
            else:
                self._violations_batch += 1

    def _record_cancel(self, request: Request, now: float) -> None:
        # An abandoned or retry-exhausted request never completes, so
        # the completion hook cannot see it — yet it is the most
        # definitive SLO violation there is, and under sustained
        # overload *most* violations end this way.  Feed both
        # trackers: procurement can absorb the queueing that caused
        # the abandonment.
        super()._record_cancel(request, now)
        self.burn.observe(now, True)
        self.capacity_burn.observe(now, True)
        if request.is_interactive:
            self._violations_interactive += 1
        else:
            self._violations_batch += 1

    def _shed(self, request: Request, now: float, alive: float) -> None:
        # A shed arrival spends error budget too — without this the
        # total burn gauge only sees requests that *complete* and the
        # worst SLO failures become invisible to operators.  It is
        # deliberately kept out of ``capacity_burn``: sheds end with
        # the crashed replica's recovery, not with procurement.
        super()._shed(request, now, alive)
        self.burn.observe(now, True)

    # --- autoscaler inputs ------------------------------------------------

    def recent_burn_rate(self, now: float, lookback_windows: int = 2) -> float:
        """Max *total* burn over recent windows (operator view)."""
        horizon = now - lookback_windows * self.burn.window
        recent = [
            row["burn_rate"]
            for row in self.burn.series()
            if row["end"] > horizon
        ]
        return max(recent, default=0.0)

    def capacity_burn_rate(
        self, now: float, lookback_windows: int = 1
    ) -> float:
        """Completion-only burn, the autoscaler's scale-up signal.

        Windows that started before the last capacity arrival are
        excluded: violations completing now were queued under the
        *previous* fleet size, and re-reacting to them would over-buy
        for the entire completion lag.  The current fleet is judged
        only on evidence gathered while it existed.
        """
        horizon = now - lookback_windows * self.capacity_burn.window
        recent = [
            row["burn_rate"]
            for row in self.capacity_burn.series()
            if row["end"] > horizon
            and row["start"] >= self._last_capacity_change
        ]
        return max(recent, default=0.0)

    def recent_violation_mix(self) -> tuple[int, int]:
        """(interactive, non-interactive) violations since last tick."""
        return self._violations_interactive, self._violations_batch

    def cheapest_class(self, compute_bound: bool) -> HardwareClass:
        """Best cost per unit of bottleneck capability (tie: name)."""
        return min(
            self.fleet.classes,
            key=lambda c: (
                c.cost_rate / (c.capability(compute_bound) * c.tp_degree),
                c.name,
            ),
        )

    # --- control loop -----------------------------------------------------

    def _schedule_control(self) -> None:
        if not self._control_active:
            return
        self._control_dormant = False
        self.simulator.schedule_after(
            self.fleet.control_interval,
            self._control_tick,
            priority=CONTROL_PRIORITY,
        )

    def _wake_control(self) -> None:
        """Restart a parked control loop (new work arrived)."""
        if self._control_active and self._control_dormant:
            self._schedule_control()

    def submit(self, request: Request) -> None:
        self._wake_control()
        super().submit(request)

    def submit_now(self, request: Request) -> ReplicaEngine:
        self._wake_control()
        return super().submit_now(request)

    def stop_control(self) -> None:
        self._control_active = False

    def _control_tick(self) -> None:
        now = self.simulator.now
        self._release_drained(now)
        active = [
            s
            for s in self._slots
            if not s.draining and not s.released and s.engine.healthy
        ]
        if active:
            utilizations = []
            for slot in active:
                delta = slot.engine.busy_time - slot.last_busy_time
                slot.last_busy_time = slot.engine.busy_time
                utilizations.append(
                    min(1.0, delta / self.fleet.control_interval)
                )
            self.last_mean_utilization = sum(utilizations) / len(
                utilizations
            )
        else:
            self.last_mean_utilization = 1.0

        delta = self.autoscaler.decide(self, now)
        if delta > 0 and not self._pending:
            # Capacity is already on the way: re-reacting to the same
            # hot signal every tick of the provision delay would
            # overshoot far past the needed fleet size.
            self._scale_up(min(delta, self.fleet.max_step_up), now)
        elif delta < 0:
            self._scale_down(now)
        self._violations_interactive = 0
        self._violations_batch = 0
        # Park instead of rescheduling when nothing else is pending:
        # a self-perpetuating tick would make run-to-drain spin
        # forever.  ``submit`` / ``submit_now`` wake the loop.
        if (
            not self._pending
            and self.simulator.next_event_time() is None
        ):
            self._control_dormant = True
            return
        self._schedule_control()

    def _scale_up(self, steps: int, now: float) -> None:
        room = self.fleet.max_replicas - self._pool_occupancy()
        for _ in range(min(steps, max(0, room))):
            cls = self.autoscaler.choose_class(self)
            self._pending.append(cls)
            self.scaling_events.append((now, "provision", self.fleet_size))
            self.replicas[0].observer.on_fleet_resized(
                now, "provision", -1, cls.name, self.fleet_size,
                by_hardware=self.size_by_hardware(),
            )
            self.simulator.schedule_after(
                self.fleet.provision_delay,
                self._replica_ready,
                priority=CONTROL_PRIORITY,
            )

    def _scale_down(self, now: float) -> None:
        candidates = [
            s
            for s in self._slots
            if not s.draining and not s.released and s.engine.healthy
        ]
        if (
            len(candidates) <= self.fleet.min_replicas
            or self._pending
        ):
            return

        def drain_key(slot: _FleetSlot):
            outstanding = self._outstanding(slot.engine)
            # Prefer the emptiest replica; among equals, the most
            # expensive hardware; then the newest slot.
            return (
                outstanding,
                -slot.hw_class.cost_rate,
                -slot.engine.replica_id,
            )

        victim = min(candidates, key=drain_key)
        victim.draining = True
        self.scaling_events.append((now, "drain", self.fleet_size))
        self.replicas[0].observer.on_fleet_resized(
            now,
            "drain",
            victim.engine.replica_id,
            victim.hw_class.name,
            self.fleet_size,
            by_hardware=self.size_by_hardware(),
        )

    def _replica_ready(self) -> None:
        cls = self._pending.pop(0)
        now = self.simulator.now
        engine = self.engine_cls(
            self.simulator,
            ExecutionModel(
                self.execution_model.model,
                cls.hardware,
                tp_degree=cls.tp_degree,
            ),
            self.scheduler_factory(),
            self.replica_config,
            replica_id=len(self.replicas),
            observer=self.replicas[0].observer,
        )
        engine.completion_hook = self._on_request_complete
        for hook in self._late_completion_hooks:
            engine.completion_hook = _chain(engine.completion_hook, hook)
        for hook in self._late_token_hooks:
            engine.token_hook = _chain(engine.token_hook, hook)
        self.replicas.append(engine)
        self._slots.append(
            _FleetSlot(engine=engine, hw_class=cls, provisioned_at=now)
        )
        self.scaling_events.append((now, "ready", self.fleet_size))
        self._last_capacity_change = now
        self.replicas[0].observer.on_fleet_resized(
            now, "ready", engine.replica_id, cls.name, self.fleet_size,
            by_hardware=self.size_by_hardware(),
        )
        # New capacity may be the first capacity (total outage while
        # provisioning): drain the stranded queue like a recovery does.
        while self._waiting and self._eligible_replicas():
            request = self._waiting.popleft()
            if request.cancelled or request.is_finished:
                continue
            self._dispatch(request)

    def _release_drained(self, now: float) -> None:
        for slot in self._slots:
            if slot.released or not slot.draining:
                continue
            empty = (
                not slot.engine.has_work()
                and slot.engine.running_requests == 0
            )
            if empty or not slot.engine.healthy:
                slot.released = True
                slot.released_at = now
                self.scaling_events.append(
                    (now, "release", self.fleet_size)
                )
                self.replicas[0].observer.on_fleet_resized(
                    now,
                    "release",
                    slot.engine.replica_id,
                    slot.hw_class.name,
                    self.fleet_size,
                    by_hardware=self.size_by_hardware(),
                )

    # --- accounting -------------------------------------------------------

    @property
    def gpu_hours(self) -> float:
        now = self.simulator.now
        return sum(s.gpu_hours(now) for s in self._slots)

    @property
    def cost(self) -> float:
        """Accumulated price of the fleet in cost units."""
        now = self.simulator.now
        return sum(
            s.gpu_hours(now) * s.hw_class.cost_per_gpu_hour
            for s in self._slots
        )

    def run_until_drained(
        self, max_events: int | None = None
    ) -> float:
        """Drain the event queue, then stop control and release slots.

        Termination relies on the control loop's parking behaviour
        (see :meth:`_control_tick`): once all work is processed the
        tick stops rescheduling itself and the queue empties.
        """
        now = self.simulator.run(max_events=max_events)
        self.stop_control()
        self._release_drained(now)
        return now

    def fleet_stats(self) -> dict:
        """Fleet-level counters for experiment tables and smoke tests."""
        stats = self.fault_stats()
        stats.update(
            fleet_size=self.fleet_size,
            active_replicas=self.active_replicas,
            by_hardware=self.size_by_hardware(),
            gpu_hours=self.gpu_hours,
            cost=self.cost,
            faults_skipped=self.faults_skipped,
            max_burn_rate=self.burn.max_burn_rate(),
            scaling_actions=len(self.scaling_events),
        )
        return stats
