"""PolyServe-style capacity planning (Section 4.5.2).

PolyServe "partitions requests into separate deployments based on TBT
SLO categories, employing dedicated resources ... for each
deployment."  This module packages that design as a planner: given the
per-class goodput of a dedicated deployment (measured with the
Medha-style adaptive chunking PolyServe uses) and a load mix, it
returns the GPU bill — the quantity Figure 15b compares against
QoServe's colocated bill.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.qos import QoSSpec


@dataclass(frozen=True)
class PolyServePlan:
    """A sizing decision for one load mix.

    Attributes:
        replicas_per_class: Dedicated replicas per TBT class.
        gpus: Total GPUs across all dedicated deployments.
        per_class_load_qps: The load each class carries.
    """

    replicas_per_class: dict[str, int] = field(default_factory=dict)
    gpus: int = 0
    per_class_load_qps: dict[str, float] = field(default_factory=dict)


class PolyServePlanner:
    """Sizes per-TBT-class dedicated deployments."""

    def __init__(
        self,
        class_goodputs: dict[str, float],
        tp_degree: int = 1,
    ) -> None:
        """Args:
        class_goodputs: Max goodput (QPS/replica) of a dedicated
            deployment per class, e.g. measured via
            :func:`repro.experiments.runner.goodput_search` with a
            Medha scheduler at the class's TBT target.
        tp_degree: GPUs per replica.
        """
        if not class_goodputs:
            raise ValueError("need at least one class")
        if any(g <= 0 for g in class_goodputs.values()):
            raise ValueError("goodputs must be positive")
        if tp_degree < 1:
            raise ValueError("tp_degree must be >= 1")
        self.class_goodputs = dict(class_goodputs)
        self.tp_degree = int(tp_degree)

    def plan(
        self,
        total_qps: float,
        shares: dict[str, float],
    ) -> PolyServePlan:
        """Size every class's deployment for its share of the load.

        Args:
            total_qps: Cluster load.
            shares: Fraction of the load per class; must cover only
                known classes and sum to ~1.

        Returns:
            The per-class replica counts and total GPU bill.  A class
            with zero share gets zero replicas (PolyServe would scale
            its deployment to nothing).
        """
        if total_qps < 0:
            raise ValueError("total_qps must be non-negative")
        unknown = set(shares) - set(self.class_goodputs)
        if unknown:
            raise KeyError(f"unknown classes: {sorted(unknown)}")
        total_share = sum(shares.values())
        if shares and not math.isclose(total_share, 1.0, abs_tol=0.01):
            raise ValueError(
                f"shares must sum to 1, got {total_share:.3f}"
            )
        replicas: dict[str, int] = {}
        loads: dict[str, float] = {}
        for name, share in shares.items():
            load = share * total_qps
            loads[name] = load
            replicas[name] = (
                math.ceil(load / self.class_goodputs[name])
                if load > 0
                else 0
            )
        return PolyServePlan(
            replicas_per_class=replicas,
            gpus=sum(replicas.values()) * self.tp_degree,
            per_class_load_qps=loads,
        )

    @staticmethod
    def class_name(tier: QoSSpec) -> str:
        """Canonical class key for a tier (its name)."""
        return tier.name
