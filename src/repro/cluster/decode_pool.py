"""QoS-aware decode nodes for PD disaggregation (paper future work).

Section 4.1.3 holds the decode side constant: "the number of decode
replicas and their SLO attainment is identical as they work with a
maximum batch size that meets the strictest TBT.  Efficiently
supporting different TBT SLOs in the decode nodes is left to future
work."  This module implements that future work in three flavours:

* :class:`StrictSharedDecodePool` — the paper's status quo: every
  replica caps its batch by the *strictest* TBT class, regardless of
  what is actually resident.
* :class:`PartitionedDecodePool` — PolyServe-style: replicas are
  dedicated per TBT class, each capped by its own class's target.
  No cross-class sharing.
* :class:`QoSSharedDecodePool` — the QoServe-flavoured design: all
  replicas are shared, and admission is governed by the *predicted
  iteration time against the minimum TBT among resident requests*.
  A replica full of relaxed-TBT requests batches deep; admitting a
  strict request dynamically tightens its budget.

All pools expose ``accept(request, now)`` (pluggable as a prefill
sink) and route to real :class:`ReplicaEngine` instances running in
decode-only mode via :meth:`ReplicaEngine.submit_prefilled`.
"""

from __future__ import annotations

from collections import deque

from repro.core.request import Request
from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.perfmodel.execution import ExecutionModel
from repro.schedulers.classic import FCFSScheduler
from repro.simcore.simulator import Simulator


def max_batch_for_tbt(
    execution_model: ExecutionModel,
    tbt: float,
    avg_context: int = 1500,
    max_batch: int = 256,
) -> int:
    """Largest decode batch whose iteration stays within ``tbt``.

    This is the static sizing rule of the paper's disaggregation setup
    ("a maximum batch size that meets the strictest TBT").
    """
    if tbt <= 0:
        raise ValueError("tbt must be positive")
    lo, hi = 1, max_batch
    if execution_model.decode_batch_time(1, avg_context) > tbt:
        return 1  # even a single request misses; serve it anyway
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if execution_model.decode_batch_time(mid, mid * avg_context) <= tbt:
            lo = mid
        else:
            hi = mid - 1
    return lo


class _DecodeReplicaGroup:
    """A set of decode-only replicas with FIFO overflow queueing."""

    RETRY_INTERVAL = 0.050  # poll pending admissions every 50 ms

    def __init__(
        self,
        simulator: Simulator,
        execution_model: ExecutionModel,
        num_replicas: int,
        max_decode_slots: int,
    ) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.simulator = simulator
        self.execution_model = execution_model
        self.replicas = [
            ReplicaEngine(
                simulator,
                execution_model,
                FCFSScheduler(),  # never used: no prefill work arrives
                ReplicaConfig(max_decode_slots=max_decode_slots),
                replica_id=i,
            )
            for i in range(num_replicas)
        ]
        self.pending: deque[Request] = deque()
        self._retry_scheduled = False

    def admit_or_queue(
        self, request: Request, can_admit=None
    ) -> None:
        """Place the request on the least-loaded admissible replica."""
        candidates = sorted(
            self.replicas, key=lambda r: r.running_requests
        )
        for replica in candidates:
            if replica.running_requests >= replica.config.max_decode_slots:
                continue
            if can_admit is not None and not can_admit(replica, request):
                continue
            replica.submit_prefilled(request)
            return
        self.pending.append(request)
        self._schedule_retry(can_admit)

    def _schedule_retry(self, can_admit) -> None:
        if self._retry_scheduled:
            return
        self._retry_scheduled = True

        def retry() -> None:
            self._retry_scheduled = False
            # One admission attempt per pending request per tick; a
            # bounced request re-enters at the tail, so the loop
            # terminates after exactly len(pending) pops.
            for _ in range(len(self.pending)):
                request = self.pending.popleft()
                self.admit_or_queue(request, can_admit)

        self.simulator.schedule_after(self.RETRY_INTERVAL, retry)

    def all_requests(self) -> list[Request]:
        return [r for replica in self.replicas for r in replica.submitted]


class StrictSharedDecodePool:
    """Shared replicas, batch cap from the strictest TBT (status quo)."""

    name = "strict-shared"

    def __init__(
        self,
        simulator: Simulator,
        execution_model: ExecutionModel,
        num_replicas: int,
        strictest_tbt: float,
        avg_context: int = 1500,
    ) -> None:
        cap = max_batch_for_tbt(execution_model, strictest_tbt, avg_context)
        self.group = _DecodeReplicaGroup(
            simulator, execution_model, num_replicas, cap
        )
        self.batch_cap = cap

    def accept(self, request: Request, now: float) -> None:
        self.group.admit_or_queue(request)

    def all_requests(self) -> list[Request]:
        return self.group.all_requests()


class PartitionedDecodePool:
    """Per-TBT-class replica groups (PolyServe-style isolation)."""

    name = "partitioned"

    def __init__(
        self,
        simulator: Simulator,
        execution_model: ExecutionModel,
        replicas_per_class: dict[str, int],
        tbt_per_class: dict[str, float],
        avg_context: int = 1500,
    ) -> None:
        if set(replicas_per_class) != set(tbt_per_class):
            raise ValueError("class maps must agree")
        self.groups = {
            name: _DecodeReplicaGroup(
                simulator,
                execution_model,
                replicas,
                max_batch_for_tbt(
                    execution_model, tbt_per_class[name], avg_context
                ),
            )
            for name, replicas in replicas_per_class.items()
        }

    def accept(self, request: Request, now: float) -> None:
        group = self.groups.get(request.qos.name)
        if group is None:
            raise KeyError(
                f"no decode partition for tier {request.qos.name!r}"
            )
        group.admit_or_queue(request)

    def all_requests(self) -> list[Request]:
        return [
            r for group in self.groups.values()
            for r in group.all_requests()
        ]


class QoSSharedDecodePool:
    """Shared replicas with TBT-aware dynamic admission (the extension).

    A request may join a replica only if the predicted decode
    iteration time *after* admission stays within the minimum TBT SLO
    across the replica's residents and the newcomer.  Replicas holding
    only relaxed-TBT work therefore batch deeper than the strictest
    class would allow, recovering the capacity the status-quo sizing
    leaves on the table — the decode-side analogue of dynamic
    chunking's slack exploitation.
    """

    name = "qos-shared"

    def __init__(
        self,
        simulator: Simulator,
        execution_model: ExecutionModel,
        num_replicas: int,
        default_tbt: float = 0.100,
        headroom: float = 0.9,
        max_decode_slots: int = 256,
    ) -> None:
        """Args:
        simulator: Shared event loop.
        execution_model: Decode-node cost model.
        num_replicas: Decode replicas in the pool.
        default_tbt: TBT assumed for requests without a TBT SLO.
        headroom: Fraction of the TBT budget the predicted iteration
            may consume (guards against context growth mid-flight).
        max_decode_slots: Hard per-replica cap.
        """
        self.execution_model = execution_model
        self.default_tbt = float(default_tbt)
        self.headroom = float(headroom)
        self.group = _DecodeReplicaGroup(
            simulator, execution_model, num_replicas, max_decode_slots
        )

    def _tbt_of(self, request: Request) -> float:
        if request.qos.tbt_slo is not None:
            return request.qos.tbt_slo
        return self.default_tbt

    def _can_admit(self, replica: ReplicaEngine, request: Request) -> bool:
        residents = replica.decode_queue
        if not residents:
            # An empty replica always accepts: a request that cannot
            # meet its TBT even alone must still be served best-effort
            # somewhere (mirrors max_batch_for_tbt's floor of 1).
            return True
        budget = min(
            [self._tbt_of(r) for r in residents] + [self._tbt_of(request)]
        )
        context = (
            sum(r.context_length for r in residents)
            + request.context_length
        )
        predicted = self.execution_model.decode_batch_time(
            len(residents) + 1, context
        )
        return predicted <= self.headroom * budget

    def accept(self, request: Request, now: float) -> None:
        self.group.admit_or_queue(request, can_admit=self._can_admit)

    def all_requests(self) -> list[Request]:
        return self.group.all_requests()
