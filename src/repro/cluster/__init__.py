"""Multi-replica deployments: shared vs siloed clusters, load
balancing, capacity planning and PD disaggregation."""

from repro.cluster.deployment import (
    ClusterDeployment,
    SiloedDeployment,
    SiloSpec,
)
from repro.cluster.capacity import (
    CapacityResult,
    find_max_goodput,
    replicas_needed,
)
from repro.cluster.disagg import DecodePool, DisaggregatedDeployment
from repro.cluster.decode_pool import (
    PartitionedDecodePool,
    QoSSharedDecodePool,
    StrictSharedDecodePool,
    max_batch_for_tbt,
)
from repro.cluster.autoscaler import AutoscalerConfig, AutoscalingDeployment
from repro.cluster.resilient import ResilientClusterDeployment

__all__ = [
    "ResilientClusterDeployment",
    "ClusterDeployment",
    "SiloedDeployment",
    "SiloSpec",
    "CapacityResult",
    "find_max_goodput",
    "replicas_needed",
    "DecodePool",
    "DisaggregatedDeployment",
    "PartitionedDecodePool",
    "QoSSharedDecodePool",
    "StrictSharedDecodePool",
    "max_batch_for_tbt",
    "AutoscalerConfig",
    "AutoscalingDeployment",
]
