"""Multi-replica deployments: shared vs siloed clusters, load
balancing, capacity planning, PD disaggregation, autoscaling and
heterogeneous elastic fleets."""

from repro.cluster.deployment import (
    ClusterDeployment,
    SiloedDeployment,
    SiloSpec,
)
from repro.cluster.capacity import (
    CapacityResult,
    find_max_goodput,
    replicas_needed,
)
from repro.cluster.disagg import DecodePool, DisaggregatedDeployment
from repro.cluster.decode_pool import (
    PartitionedDecodePool,
    QoSSharedDecodePool,
    StrictSharedDecodePool,
    max_batch_for_tbt,
)
from repro.cluster.autoscaler import AutoscalerConfig, AutoscalingDeployment
from repro.cluster.fleet import (
    DEFAULT_HARDWARE_CLASSES,
    BurnRateAutoscaler,
    BusyFractionAutoscaler,
    FleetConfig,
    FleetDeployment,
    HardwareClass,
    parse_fleet_spec,
)
from repro.cluster.resilient import ResilientClusterDeployment

__all__ = [
    "ResilientClusterDeployment",
    "DEFAULT_HARDWARE_CLASSES",
    "parse_fleet_spec",
    "BurnRateAutoscaler",
    "BusyFractionAutoscaler",
    "FleetConfig",
    "FleetDeployment",
    "HardwareClass",
    "ClusterDeployment",
    "SiloedDeployment",
    "SiloSpec",
    "CapacityResult",
    "find_max_goodput",
    "replicas_needed",
    "DecodePool",
    "DisaggregatedDeployment",
    "PartitionedDecodePool",
    "QoSSharedDecodePool",
    "StrictSharedDecodePool",
    "max_batch_for_tbt",
    "AutoscalerConfig",
    "AutoscalingDeployment",
]
