"""Shared and siloed cluster deployments (Sections 2.2 and 4.1.1).

A *shared* deployment co-schedules all QoS tiers on every replica with
round-robin load balancing — QoServe's model.  A *siloed* deployment
partitions replicas into per-tier pools, each pool running its own
scheduler and chunk size — the production state of the art the paper
compares against (Sarathi-Silo), with round-robin inside each pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.request import Request
from repro.engine.interface import Scheduler
from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.metrics.summary import RunSummary, summarize_run
from repro.perfmodel.execution import ExecutionModel
from repro.simcore.simulator import Simulator
from repro.workload.trace import Trace

SchedulerFactory = Callable[[], Scheduler]


def _chain(existing, hook):
    """Compose per-replica callbacks without displacing earlier ones."""
    if existing is None:
        return hook

    def chained(request, now):
        existing(request, now)
        hook(request, now)

    return chained

#: Routing strategies for :class:`ClusterDeployment`.  The paper's
#: deployments use round-robin ("Both deployments use round-robin load
#: balancing across replicas"); least-loaded and power-of-two-choices
#: are provided for provisioning studies — with heavy-tailed prompt
#: lengths, load-aware routing smooths the per-replica work imbalance
#: round-robin leaves behind.  perf-aware extends least-loaded for
#: heterogeneous pools: prefill-heavy requests prefer compute-rich
#: replicas, decode-heavy requests prefer memory-rich ones, by scoring
#: outstanding work against the hardware capability that governs the
#: request's bottleneck phase.  On a homogeneous pool it reduces
#: exactly to least-loaded (same replica-index tie-break).
ROUTING_STRATEGIES = (
    "round-robin", "least-loaded", "power-of-two", "perf-aware",
)

#: A request whose prompt is at least this many times its decode
#: length is classified prefill-heavy by perf-aware routing.
PREFILL_HEAVY_RATIO = 4.0


class ClusterDeployment:
    """A pool of identical replicas behind a load balancer."""

    def __init__(
        self,
        execution_model: ExecutionModel,
        scheduler_factory: SchedulerFactory,
        num_replicas: int,
        replica_config: ReplicaConfig | None = None,
        simulator: Simulator | None = None,
        routing: str = "round-robin",
        observer=None,
        execution_models: Sequence[ExecutionModel] | None = None,
        engine_cls: type[ReplicaEngine] | None = None,
    ) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if routing not in ROUTING_STRATEGIES:
            raise ValueError(
                f"unknown routing {routing!r}; "
                f"options: {ROUTING_STRATEGIES}"
            )
        if execution_models is not None:
            if len(execution_models) != num_replicas:
                raise ValueError(
                    f"execution_models has {len(execution_models)} "
                    f"entries for {num_replicas} replicas"
                )
            per_replica = list(execution_models)
        else:
            per_replica = [execution_model] * num_replicas
        self.simulator = simulator or Simulator()
        self.execution_model = execution_model
        self.routing = routing
        #: Engine implementation every replica (including ones
        #: provisioned later by elastic subclasses) is built from.
        self.engine_cls = engine_cls or ReplicaEngine
        self.replicas = [
            self.engine_cls(
                self.simulator,
                per_replica[i],
                scheduler_factory(),
                replica_config or ReplicaConfig(),
                replica_id=i,
                observer=observer,
            )
            for i in range(num_replicas)
        ]
        self._next_replica = 0
        self._submitted: list[Request] = []
        # Deterministic stream for power-of-two sampling.
        self._route_rng = np.random.default_rng(0xC1053E)

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def gpus_used(self) -> int:
        return sum(
            replica.execution_model.tp_degree for replica in self.replicas
        )

    def _outstanding(self, replica: ReplicaEngine) -> int:
        return (
            replica.running_requests
            + len(replica.scheduler.pending_requests())
        )

    def _eligible_replicas(self) -> list[ReplicaEngine]:
        """Replicas routing may dispatch to right now.

        The base deployment never takes a replica out of rotation;
        :class:`~repro.cluster.resilient.ResilientClusterDeployment`
        overrides this to skip crashed replicas.
        """
        return self.replicas

    @staticmethod
    def _phase_capability(
        replica: ReplicaEngine, prefill_heavy: bool
    ) -> float:
        """Hardware capability governing the request's bottleneck phase.

        Prefill is compute-bound (effective linear FLOPs); decode is
        memory-bound (weight/KV streaming bandwidth).  Per-rank values
        are equivalent here because routing only compares ratios.
        """
        hardware = replica.execution_model.hardware
        if prefill_heavy:
            return hardware.peak_flops * hardware.mfu_linear
        return hardware.mem_bandwidth

    def _pick_replica(self, request: Request | None = None) -> ReplicaEngine:
        candidates = self._eligible_replicas()
        if not candidates:
            raise RuntimeError("routing found no eligible replica")
        if self.routing == "perf-aware":
            # Score queue depth against the capability that governs
            # this request's bottleneck phase, so prefill-heavy work
            # prefers compute-rich replicas and decode-heavy work
            # prefers memory-rich ones.  Capabilities are normalized
            # to the fastest candidate so the score stays a pure
            # load ratio: on a homogeneous pool every weight is 1.0
            # and this is exactly least-loaded.
            prefill_heavy = (
                request is not None
                and request.prompt_tokens
                >= PREFILL_HEAVY_RATIO * request.decode_tokens
            )
            best = max(
                self._phase_capability(r, prefill_heavy)
                for r in candidates
            )
            # outstanding + 1 counts the request being placed, so an
            # all-idle pool still prefers the fastest hardware instead
            # of degenerating to replica 0.
            return min(
                candidates,
                key=lambda r: (
                    (self._outstanding(r) + 1)
                    * best
                    / self._phase_capability(r, prefill_heavy),
                    r.replica_id,
                ),
            )
        if self.routing == "round-robin" or len(candidates) == 1:
            # Walk the rotation cursor to the next eligible replica so
            # rotation order survives replicas leaving and rejoining.
            for _ in range(self.num_replicas):
                replica = self.replicas[self._next_replica]
                self._next_replica = (
                    self._next_replica + 1
                ) % self.num_replicas
                if replica in candidates:
                    return replica
            # candidates is a non-empty subset of self.replicas, so
            # the walk above always returns; keep a hard stop anyway.
            raise RuntimeError("eligible replicas not in deployment")
        if self.routing == "least-loaded":
            # Ties break on replica index, not list position, so equal
            # loads route the same way no matter who crashed earlier.
            return min(
                candidates,
                key=lambda r: (self._outstanding(r), r.replica_id),
            )
        # power-of-two: sample two distinct candidates, keep the
        # lighter; a tie goes to the lower replica index rather than
        # whichever the RNG happened to sample first.
        if len(candidates) == 2:
            a, b = candidates
        else:
            first, second = self._route_rng.choice(
                len(candidates), size=2, replace=False
            )
            a, b = candidates[int(first)], candidates[int(second)]
        load_a, load_b = self._outstanding(a), self._outstanding(b)
        if load_a != load_b:
            return a if load_a < load_b else b
        return a if a.replica_id < b.replica_id else b

    def submit(self, request: Request) -> None:
        """Dispatch one request according to the routing strategy.

        Round-robin is decided immediately (it needs no system state);
        load-aware strategies defer the choice to the request's
        arrival time, when queue depths are meaningful.
        """
        self._submitted.append(request)
        if self.routing == "round-robin":
            self._pick_replica(request).submit(request)
            return
        self.simulator.schedule(
            max(request.arrival_time, self.simulator.now),
            lambda: self._pick_replica(request).submit_now(request),
        )

    def submit_now(self, request: Request) -> ReplicaEngine:
        """Inject a request immediately (online gateway path).

        Routing is decided at the current simulated time — queue
        depths are live — and the chosen replica is returned so the
        caller can later cancel or stream against it.
        """
        self._submitted.append(request)
        replica = self._pick_replica(request)
        now = self.simulator.now
        observer = replica.observer
        observer.on_span_start(
            "dispatch", request, now, replica.replica_id
        )
        replica.submit_now(request)
        observer.on_span_end(
            "dispatch", request, now, replica.replica_id
        )
        return replica

    def set_completion_hook(
        self, hook: Callable[[Request, float], None]
    ) -> None:
        """Fire ``hook(request, now)`` on every replica's completions.

        Chains after any hook already installed (e.g. the resilient
        cluster's watchdog disarm) rather than displacing it.
        """
        for replica in self.replicas:
            replica.completion_hook = _chain(replica.completion_hook, hook)

    def set_token_hook(
        self, hook: Callable[[Request, float], None]
    ) -> None:
        """Fire ``hook(request, now)`` for every output token emitted
        by any replica (streaming delivery)."""
        for replica in self.replicas:
            replica.token_hook = _chain(replica.token_hook, hook)

    def next_event_time(self) -> float | None:
        """When the shared simulator fires next (None when idle)."""
        return self.simulator.next_event_time()

    def submit_trace(self, trace: Trace) -> None:
        for request in trace:
            self.submit(request)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        return self.simulator.run(until=until, max_events=max_events)

    def all_requests(self) -> list[Request]:
        return list(self._submitted)

    def summarize(self, now: float | None = None) -> RunSummary:
        return summarize_run(
            self.all_requests(), now=now if now is not None else self.simulator.now
        )


@dataclass(frozen=True)
class SiloSpec:
    """One silo: which tiers it serves and with how many replicas."""

    tier_names: tuple[str, ...]
    num_replicas: int
    scheduler_factory: SchedulerFactory


class SiloedDeployment:
    """Per-tier replica pools, as in current production practice.

    Requests are routed to the silo owning their QoS bucket; each silo
    is its own :class:`ClusterDeployment` sharing one simulator so the
    silos advance in lock-step simulated time.
    """

    def __init__(
        self,
        execution_model: ExecutionModel,
        silos: list[SiloSpec],
        replica_config: ReplicaConfig | None = None,
        simulator: Simulator | None = None,
    ) -> None:
        if not silos:
            raise ValueError("need at least one silo")
        self.simulator = simulator or Simulator()
        self.execution_model = execution_model
        self.pools: list[ClusterDeployment] = []
        self._route: dict[str, ClusterDeployment] = {}
        for spec in silos:
            pool = ClusterDeployment(
                execution_model,
                spec.scheduler_factory,
                spec.num_replicas,
                replica_config=replica_config,
                simulator=self.simulator,
            )
            self.pools.append(pool)
            for tier in spec.tier_names:
                if tier in self._route:
                    raise ValueError(f"tier {tier} assigned to two silos")
                self._route[tier] = pool

    @property
    def gpus_used(self) -> int:
        return sum(pool.gpus_used for pool in self.pools)

    def submit(self, request: Request) -> None:
        pool = self._route.get(request.qos.name)
        if pool is None:
            raise KeyError(
                f"no silo serves QoS bucket {request.qos.name!r}"
            )
        pool.submit(request)

    def submit_trace(self, trace: Trace) -> None:
        for request in trace:
            self.submit(request)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        return self.simulator.run(until=until, max_events=max_events)

    def all_requests(self) -> list[Request]:
        return [r for pool in self.pools for r in pool.all_requests()]

    def summarize(self, now: float | None = None) -> RunSummary:
        return summarize_run(
            self.all_requests(), now=now if now is not None else self.simulator.now
        )
