"""Prefill/decode disaggregation (Section 4.1.3).

The paper applies QoServe's hybrid prioritization and eager relegation
to the *prefill nodes* of vLLM's disaggregated mode and reports max
goodput per prefill replica.  The decode side is held identical across
schemes: "the number of decode replicas and their SLO attainment is
identical as they work with a maximum batch size that meets the
strictest TBT."  We therefore model the decode pool as a fixed-pace
token generator (one token per ``token_pace`` seconds per request, the
strictest-TBT iteration time) with unconstrained parallelism, and put
all the scheduling under test on the prefill replicas, which run with
a large 8K chunk budget since no colocated decodes constrain them.
"""

from __future__ import annotations

from repro.core.request import Request
from repro.engine.interface import Scheduler
from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.metrics.summary import RunSummary, summarize_run
from repro.perfmodel.execution import ExecutionModel
from repro.simcore.simulator import Simulator
from repro.workload.trace import Trace
from repro.cluster.deployment import SchedulerFactory


class DecodePool:
    """Fixed-pace decode service shared by all schemes under test.

    Generates each handed-off request's tokens at ``token_pace``
    intervals starting one pace after the handoff.  Token timestamps
    are materialized directly (no events) because the pool is
    explicitly unconstrained — its capacity is identical across the
    schemes being compared, so it cancels out of the comparison.
    """

    def __init__(self, token_pace: float = 0.025) -> None:
        if token_pace <= 0:
            raise ValueError("token_pace must be positive")
        self.token_pace = float(token_pace)
        self.completed: list[Request] = []

    def accept(self, request: Request, handoff_time: float) -> None:
        """Receive a prefilled request and synthesize its decode."""
        for i in range(request.remaining_decode):
            request.record_output_token(
                handoff_time + (i + 1) * self.token_pace
            )
        self.completed.append(request)


class DisaggregatedDeployment:
    """Prefill replicas under test feeding a shared decode pool."""

    def __init__(
        self,
        execution_model: ExecutionModel,
        scheduler_factory: SchedulerFactory,
        num_prefill_replicas: int = 1,
        token_pace: float = 0.025,
        replica_config: ReplicaConfig | None = None,
        simulator: Simulator | None = None,
    ) -> None:
        if num_prefill_replicas < 1:
            raise ValueError("num_prefill_replicas must be >= 1")
        self.simulator = simulator or Simulator()
        self.decode_pool = DecodePool(token_pace=token_pace)
        base_config = replica_config or ReplicaConfig()
        config = ReplicaConfig(
            max_decode_slots=base_config.max_decode_slots,
            kv_block_size=base_config.kv_block_size,
            record_iterations=base_config.record_iterations,
            prefill_only=True,
        )
        self.replicas = [
            ReplicaEngine(
                self.simulator,
                execution_model,
                scheduler_factory(),
                config,
                replica_id=i,
                prefill_sink=self.decode_pool.accept,
            )
            for i in range(num_prefill_replicas)
        ]
        self._next_replica = 0

    def submit(self, request: Request) -> None:
        self.replicas[self._next_replica].submit(request)
        self._next_replica = (self._next_replica + 1) % len(self.replicas)

    def submit_trace(self, trace: Trace) -> None:
        for request in trace:
            self.submit(request)

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        return self.simulator.run(until=until, max_events=max_events)

    def all_requests(self) -> list[Request]:
        return [r for replica in self.replicas for r in replica.submitted]

    def summarize(self, now: float | None = None) -> RunSummary:
        return summarize_run(
            self.all_requests(),
            now=now if now is not None else self.simulator.now,
        )
