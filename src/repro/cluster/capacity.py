"""Capacity planning: max goodput search and GPU provisioning.

Goodput (Section 4.1.2): "the number of requests served per replica
per second while meeting the latency targets (p99).  We allow at most
1% of total requests to violate their deadlines."  The search runs the
same request bodies at scaled arrival rates and bisects the largest
rate whose violation share stays under the bar.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.metrics.summary import RunSummary


@dataclass
class CapacityResult:
    """Outcome of a goodput search.

    Attributes:
        max_qps: Highest load (QPS) satisfying the goodput bar.
        evaluations: ``(qps, violation_pct)`` pairs probed, in order.
        summary_at_max: Run summary at the returned operating point.
    """

    max_qps: float
    evaluations: list[tuple[float, float]] = field(default_factory=list)
    summary_at_max: RunSummary | None = None


def stable_drain(summary: RunSummary, drain_fraction: float = 0.40,
                 drain_floor: float = 120.0,
                 trend_fraction: float = 0.05,
                 trend_floor: float = 12.0) -> bool:
    """Steady-state check for finite-trace capacity estimates.

    A finite trace hides beyond-capacity operation inside the long-TTLT
    tiers: their deadlines only blow after the measurement window ends.
    Two signals reject such divergent operating points:

    * **Queue-delay trend** — in steady state the mean queueing delay
      of late arrivals matches mid-run arrivals; beyond capacity it
      ramps linearly with time.  This is the primary signal because it
      is insensitive to intrinsic service tails (long decodes).
    * **Drain time** — a loose backstop on the post-arrival backlog,
      with a generous floor so decode-heavy workloads whose last
      requests legitimately run for a minute or two still pass.
    """
    if summary.arrival_span <= 0:
        return True
    trend_bound = max(trend_floor, trend_fraction * summary.arrival_span)
    if summary.queue_delay_trend > trend_bound:
        return False
    drain_bound = max(drain_floor, drain_fraction * summary.arrival_span)
    return summary.drain_time <= drain_bound


def find_max_goodput(
    evaluate: Callable[[float], RunSummary],
    qps_low: float = 0.25,
    qps_high: float = 16.0,
    violation_bar_pct: float = 1.0,
    tolerance: float = 0.1,
    max_iterations: int = 24,
    extra_criterion: Callable[[RunSummary], bool] | None = stable_drain,
) -> CapacityResult:
    """Bisect the largest QPS whose violations stay under the bar.

    Args:
        evaluate: Runs one simulation at the given QPS and returns its
            summary.  Must be deterministic for a given QPS.
        qps_low: A rate assumed feasible; if even this violates, the
            result's ``max_qps`` is 0.
        qps_high: Upper bracket for the search.
        violation_bar_pct: Goodput criterion (paper: 1%).
        tolerance: Bisection resolution in QPS.
        max_iterations: Safety cap on evaluations.
        extra_criterion: Additional feasibility predicate; defaults to
            :func:`stable_drain`.  Pass ``None`` to disable.
    """
    if qps_low <= 0 or qps_high <= qps_low:
        raise ValueError("need 0 < qps_low < qps_high")
    result = CapacityResult(max_qps=0.0)

    def ok(qps: float) -> tuple[bool, RunSummary]:
        summary = evaluate(qps)
        pct = summary.violations.overall_pct
        result.evaluations.append((qps, pct))
        feasible = (
            not math.isnan(pct) and pct <= violation_bar_pct
        )
        if feasible and extra_criterion is not None:
            feasible = extra_criterion(summary)
        return feasible, summary

    feasible, summary = ok(qps_low)
    if not feasible:
        return result
    result.max_qps = qps_low
    result.summary_at_max = summary

    # Grow the bracket until infeasible (or the cap is reached).
    hi = qps_low
    iterations = 1
    while hi < qps_high and iterations < max_iterations:
        hi = min(qps_high, hi * 2.0)
        feasible, summary = ok(hi)
        iterations += 1
        if feasible:
            result.max_qps = hi
            result.summary_at_max = summary
            if hi >= qps_high:
                return result
        else:
            break
    else:
        return result

    lo = result.max_qps
    while hi - lo > tolerance and iterations < max_iterations:
        mid = 0.5 * (lo + hi)
        feasible, summary = ok(mid)
        iterations += 1
        if feasible:
            lo = mid
            result.max_qps = mid
            result.summary_at_max = summary
        else:
            hi = mid
    return result


def replicas_needed(
    total_qps: float, per_replica_goodput: float
) -> int:
    """Replicas required to carry ``total_qps`` within SLO."""
    if per_replica_goodput <= 0:
        raise ValueError("per_replica_goodput must be positive")
    if total_qps <= 0:
        return 0
    return math.ceil(total_qps / per_replica_goodput)
