"""Fault-tolerant cluster deployment (``repro.faults`` consumer).

:class:`ResilientClusterDeployment` wraps the shared-pool deployment
with the four resilience mechanisms of the fault layer:

1. **Fault injection** — a :class:`~repro.faults.plan.FaultPlan` is
   armed on the cluster's simulator; crashes drop a replica's KV cache
   and in-flight batch, slowdowns stretch its iteration time.
2. **Health-aware routing & retry** — routing only considers healthy
   replicas; requests lost to a crash are re-dispatched after capped
   exponential backoff (:class:`~repro.faults.policy.RetryPolicy`),
   keeping their *original* arrival time so SLO accounting spans every
   attempt.  A request that exhausts its attempt budget is cancelled.
3. **Client deadline timeouts** — a per-request watchdog abandons
   work still unfinished at ``abandonment_factor ×`` its governing
   deadline span and frees its KV.
4. **Graceful degradation** — when the alive fraction of replicas
   drops below the configured thresholds, admission sheds free-tier
   arrivals first, then non-interactive traffic, mirroring the QoS
   victim ordering of :mod:`repro.core.relegation` (free tier before
   important, interactive protected longest).

Determinism: with an **empty plan** and default policies this class
produces byte-identical run summaries to :class:`ClusterDeployment`
on arrival-ordered traces — all routing is deferred to arrival time
(when health is knowable), which for round-robin reproduces the plain
deployment's submission-order assignment, and watchdog events are
disarmed on completion so they never stretch the drained clock.
"""

from __future__ import annotations

from collections import deque

from repro.cluster.deployment import ClusterDeployment, SchedulerFactory
from repro.core.request import Request
from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, get_default_fault_plan
from repro.faults.policy import ResilienceConfig
from repro.perfmodel.execution import ExecutionModel
from repro.simcore.events import Event
from repro.simcore.simulator import Simulator


class ResilientClusterDeployment(ClusterDeployment):
    """A replica pool that survives the faults a plan throws at it."""

    def __init__(
        self,
        execution_model: ExecutionModel,
        scheduler_factory: SchedulerFactory,
        num_replicas: int,
        replica_config: ReplicaConfig | None = None,
        simulator: Simulator | None = None,
        routing: str = "round-robin",
        fault_plan: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
        execution_models: list[ExecutionModel] | None = None,
        observer=None,
        engine_cls: type[ReplicaEngine] | None = None,
    ) -> None:
        super().__init__(
            execution_model,
            scheduler_factory,
            num_replicas,
            replica_config=replica_config,
            simulator=simulator,
            routing=routing,
            execution_models=execution_models,
            observer=observer,
            engine_cls=engine_cls,
        )
        if fault_plan is None:
            fault_plan = get_default_fault_plan() or FaultPlan()
        self.fault_plan = fault_plan
        self.resilience = resilience or ResilienceConfig()
        self.injector = FaultInjector(self.simulator, self, fault_plan)
        self.injector.arm(num_replicas=self._fault_pool_size())

        #: request_id -> replica currently serving the request.
        self._owner: dict[int, ReplicaEngine] = {}
        #: request_id -> armed deadline-watchdog event.
        self._watchdogs: dict[int, Event] = {}
        #: Admitted requests stranded while no replica is healthy.
        self._waiting: deque[Request] = deque()
        self.shed_requests: list[Request] = []
        self.cancelled_requests: list[Request] = []
        self.retries_scheduled = 0
        self.total_lost_to_crashes = 0
        for replica in self.replicas:
            replica.completion_hook = self._on_request_complete

    def _fault_pool_size(self) -> int:
        """Pool size fault plans are validated against at arm time.

        The static resilient pool rejects plans naming replicas it
        will never have; the elastic fleet overrides this with its
        *maximum* size (slots that exist only transiently are legal
        targets — faults on currently-absent slots become
        ``fault_skipped`` no-ops at fire time).
        """
        return self.num_replicas

    # --- health ---------------------------------------------------------

    @property
    def alive_fraction(self) -> float:
        healthy = sum(1 for r in self.replicas if r.healthy)
        return healthy / self.num_replicas

    def _eligible_replicas(self) -> list[ReplicaEngine]:
        return [r for r in self.replicas if r.healthy]

    # --- submission -----------------------------------------------------

    def submit(self, request: Request) -> None:
        """Admit at arrival time, when replica health is knowable."""
        self._submitted.append(request)
        self.simulator.schedule(
            max(request.arrival_time, self.simulator.now),
            lambda: self._admit(request),
        )

    def _admit(self, request: Request) -> None:
        now = self.simulator.now
        alive = self.alive_fraction
        level = self.resilience.degradation_level(alive)
        if level >= 1 and self._sheddable(request, level):
            self._shed(request, now, alive)
            return
        if not self._eligible_replicas():
            # Total outage: hold the request until a recovery; the
            # deadline watchdog still covers it.
            self._arm_watchdog(request)
            self._waiting.append(request)
            return
        self._dispatch(request)

    def _shed(self, request: Request, now: float, alive: float) -> None:
        request.shed = True
        self.shed_requests.append(request)
        self.replicas[0].observer.on_request_shed(request, now, alive)

    def _sheddable(self, request: Request, level: int) -> bool:
        """Victim ordering mirrors relegation: free tier first, then
        non-interactive paid traffic; paid interactive is shed last
        (never, by admission — it only fails with the whole fleet)."""
        if not request.important:
            return True
        return level >= 2 and not request.is_interactive

    def _dispatch(self, request: Request) -> None:
        engine = self._pick_replica(request)
        request.attempts += 1
        self._owner[request.request_id] = engine
        if request.attempts == 1:
            self._arm_watchdog(request)
        engine.submit_now(request)

    # --- injector hooks (FaultTarget) -----------------------------------

    def on_replica_crash(self, replica_id: int) -> None:
        engine = self.replicas[replica_id]
        if not engine.healthy:
            return
        lost = engine.crash()
        self.total_lost_to_crashes += len(lost)
        now = self.simulator.now
        for request in lost:
            self._owner.pop(request.request_id, None)
            if request.cancelled:
                continue
            self._schedule_retry(request, replica_id, now)

    def on_replica_recover(self, replica_id: int) -> None:
        engine = self.replicas[replica_id]
        if engine.healthy:
            return
        engine.recover()
        # A recovery may be the only healthy capacity: drain the
        # stranded queue in FIFO order.
        while self._waiting and self._eligible_replicas():
            request = self._waiting.popleft()
            if request.cancelled or request.is_finished:
                continue
            self._dispatch(request)

    def on_replica_slowdown(self, replica_id: int, factor: float) -> None:
        engine = self.replicas[replica_id]
        engine.set_slowdown(factor)
        engine.observer.on_replica_slowdown(
            replica_id, self.simulator.now, factor
        )

    # --- retry ----------------------------------------------------------

    def _schedule_retry(
        self, request: Request, from_replica: int, now: float
    ) -> None:
        policy = self.resilience.retry
        if policy.exhausted(request.attempts):
            self._cancel_unowned(request, now, "retry-budget")
            return
        backoff = policy.backoff(request.attempts)
        self.retries_scheduled += 1
        self.replicas[0].observer.on_request_retried(
            request, now, request.attempts, backoff, from_replica
        )
        self.simulator.schedule(
            now + backoff, lambda: self._redispatch(request)
        )
        # A request whose watchdog already passed (e.g. it was happily
        # streaming) gets a fresh abandonment budget measured from the
        # crash — the client's stream just broke, the wait restarts.
        self._arm_watchdog(request, rebase_from=now)

    def _redispatch(self, request: Request) -> None:
        if request.cancelled or request.is_finished:
            return
        if not self._eligible_replicas():
            self._waiting.append(request)
            return
        self._dispatch(request)

    def _record_cancel(self, request: Request, now: float) -> None:
        """Bookkeeping for a definitive give-up on a request;
        subclasses add their own accounting (e.g. SLO burn)."""
        self.cancelled_requests.append(request)

    def _cancel_unowned(
        self, request: Request, now: float, reason: str
    ) -> None:
        """Cancel a request not resident on any replica (lost to a
        crash, waiting out a backoff, or stranded in the outage
        queue)."""
        request.cancel(now, reason)
        self._record_cancel(request, now)
        self._disarm_watchdog(request)
        self.replicas[0].observer.on_request_cancelled(
            -1, request, now, reason
        )

    # --- deadline watchdog ----------------------------------------------

    def _arm_watchdog(
        self, request: Request, rebase_from: float | None = None
    ) -> None:
        factor = self.resilience.abandonment_factor
        if factor is None or request.request_id in self._watchdogs:
            return
        if request.is_finished or request.cancelled or request.shed:
            return
        if request.is_interactive:
            deadline = request.first_token_deadline
        else:
            deadline = request.total_deadline
        span = max(0.0, deadline - request.arrival_time)
        base = (
            rebase_from if rebase_from is not None else request.arrival_time
        )
        fire_at = max(self.simulator.now, base + factor * span)
        self._watchdogs[request.request_id] = self.simulator.schedule(
            fire_at, lambda: self._watchdog_fired(request)
        )

    def _disarm_watchdog(self, request: Request) -> None:
        event = self._watchdogs.pop(request.request_id, None)
        if event is not None:
            event.cancel()

    def _watchdog_fired(self, request: Request) -> None:
        self._watchdogs.pop(request.request_id, None)
        if request.is_finished or request.cancelled or request.shed:
            return
        if (
            request.is_interactive
            and request.first_token_time is not None
            and request.remaining_prefill == 0
        ):
            # The client is reading an unbroken stream; late tokens
            # are an SLO miss, not an abandonment.  (A crash resets
            # prefill progress, so a broken stream fails this check
            # and the rebased watchdog may abandon it.)
            return
        now = self.simulator.now
        owner = self._owner.pop(request.request_id, None)
        if owner is not None:
            # The engine cancels the request (resident or not), frees
            # its KV and fires the observer hook.
            owner.cancel_request(request, "deadline")
            self._record_cancel(request, now)
            return
        # Not resident (backoff or outage queue): cancel directly.
        try:
            self._waiting.remove(request)
        except ValueError:
            pass
        request.cancel(now, "deadline")
        self._record_cancel(request, now)
        self.replicas[0].observer.on_request_cancelled(
            -1, request, now, "deadline"
        )

    def _on_request_complete(self, request: Request, now: float) -> None:
        self._owner.pop(request.request_id, None)
        self._disarm_watchdog(request)

    # --- reporting ------------------------------------------------------

    def fault_stats(self) -> dict:
        """Counters for experiment tables and the chaos smoke test."""
        return {
            "crashes": sum(r.crash_count for r in self.replicas),
            "lost_to_crashes": self.total_lost_to_crashes,
            "retries_scheduled": self.retries_scheduled,
            "shed": len(self.shed_requests),
            "cancelled": len(self.cancelled_requests),
            "still_waiting": len(self._waiting),
            "kv_blocks_resident": sum(
                r.kv_cache.used_blocks for r in self.replicas
            ),
        }
