"""Trace analysis: the workload-characterization numbers papers report.

Produces the Table 2-style statistics for any trace — token-count
percentiles, tier composition, arrival-rate profile — so synthetic
traces can be validated against their targets and custom traces can be
characterized before a capacity study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workload.trace import Trace


@dataclass
class TraceStats:
    """Summary statistics of one trace.

    Attributes:
        num_requests: Trace size.
        duration: First-to-last arrival span in seconds.
        mean_qps: Average arrival rate.
        prompt_percentiles: ``{q: tokens}`` for prompt lengths.
        decode_percentiles: ``{q: tokens}`` for decode lengths.
        tier_shares: Fraction of requests per QoS bucket.
        important_share: Fraction flagged important.
        total_prefill_tokens: Sum of prompt tokens (work volume).
        total_decode_tokens: Sum of decode tokens.
        peak_qps: Largest arrival rate over ``window`` seconds.
    """

    num_requests: int
    duration: float
    mean_qps: float
    prompt_percentiles: dict[float, float] = field(default_factory=dict)
    decode_percentiles: dict[float, float] = field(default_factory=dict)
    tier_shares: dict[str, float] = field(default_factory=dict)
    important_share: float = 1.0
    total_prefill_tokens: int = 0
    total_decode_tokens: int = 0
    peak_qps: float = 0.0

    def render(self) -> str:
        lines = [
            f"requests: {self.num_requests}, "
            f"span: {self.duration:.0f}s, "
            f"mean {self.mean_qps:.2f} QPS (peak {self.peak_qps:.2f})",
            "prompt tokens: "
            + "  ".join(
                f"p{int(q * 100)}={v:.0f}"
                for q, v in sorted(self.prompt_percentiles.items())
            ),
            "decode tokens: "
            + "  ".join(
                f"p{int(q * 100)}={v:.0f}"
                for q, v in sorted(self.decode_percentiles.items())
            ),
            "tiers: "
            + "  ".join(
                f"{name}={share * 100:.1f}%"
                for name, share in sorted(self.tier_shares.items())
            ),
            f"important: {self.important_share * 100:.1f}%",
            f"work: {self.total_prefill_tokens} prefill + "
            f"{self.total_decode_tokens} decode tokens",
        ]
        return "\n".join(lines)


def analyze_trace(
    trace: Trace,
    quantiles: tuple[float, ...] = (0.50, 0.90, 0.99),
    peak_window: float = 60.0,
) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""
    if len(trace) == 0:
        return TraceStats(num_requests=0, duration=0.0, mean_qps=0.0)

    prompts = np.array([r.prompt_tokens for r in trace], dtype=np.float64)
    decodes = np.array([r.decode_tokens for r in trace], dtype=np.float64)
    arrivals = np.array([r.arrival_time for r in trace])
    duration = float(arrivals.max() - arrivals.min())

    tier_counts: dict[str, int] = {}
    for request in trace:
        tier_counts[request.qos.name] = (
            tier_counts.get(request.qos.name, 0) + 1
        )

    peak = 0.0
    if duration > 0:
        edges = np.arange(arrivals.min(), arrivals.max() + peak_window,
                          peak_window)
        counts, _ = np.histogram(arrivals, bins=edges)
        if len(counts):
            peak = float(counts.max() / peak_window)

    return TraceStats(
        num_requests=len(trace),
        duration=duration,
        mean_qps=len(trace) / duration if duration > 0 else 0.0,
        prompt_percentiles={
            q: float(np.percentile(prompts, q * 100)) for q in quantiles
        },
        decode_percentiles={
            q: float(np.percentile(decodes, q * 100)) for q in quantiles
        },
        tier_shares={
            name: count / len(trace)
            for name, count in tier_counts.items()
        },
        important_share=float(
            np.mean([r.important for r in trace])
        ),
        total_prefill_tokens=int(prompts.sum()),
        total_decode_tokens=int(decodes.sum()),
        peak_qps=peak,
    )
