"""Synthetic stand-ins for the paper's evaluation datasets (Table 2).

Each preset reproduces the published p50/p90 prompt and decode token
counts.  Azure Code is prefill-dominated (median 8 decode tokens —
autocomplete), Azure Conv is mixed, ShareGPT is decode-heavy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.distributions import LengthDistribution, LognormalLengths


@dataclass(frozen=True)
class DatasetSpec:
    """A named pair of prompt/decode length distributions."""

    name: str
    prompt_lengths: LengthDistribution
    decode_lengths: LengthDistribution

    def sample(
        self, rng: np.random.Generator, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` (prompt_tokens, decode_tokens) pairs."""
        return (
            self.prompt_lengths.sample(rng, n),
            self.decode_lengths.sample(rng, n),
        )


# Prompts are clipped at the serving context window (8K for the
# Table 1 models), as any production trace collected from them would
# be; decode lengths are clipped well below that.
_CONTEXT_WINDOW = 8192

#: ShareGPT: prompt p50 1730 / p90 5696, decode p50 415 / p90 834.
SHAREGPT = DatasetSpec(
    name="ShareGPT",
    prompt_lengths=LognormalLengths(
        p50=1730, p90=5696, max_tokens=_CONTEXT_WINDOW
    ),
    decode_lengths=LognormalLengths(p50=415, p90=834, max_tokens=4096),
)

#: Azure Conversation: prompt 928/3830, decode 41/342.
AZURE_CONV = DatasetSpec(
    name="AzConv",
    prompt_lengths=LognormalLengths(
        p50=928, p90=3830, max_tokens=_CONTEXT_WINDOW
    ),
    decode_lengths=LognormalLengths(p50=41, p90=342, max_tokens=4096),
)

#: Azure Code: prompt 1930/6251, decode 8/43.
AZURE_CODE = DatasetSpec(
    name="AzCode",
    prompt_lengths=LognormalLengths(
        p50=1930, p90=6251, max_tokens=_CONTEXT_WINDOW
    ),
    decode_lengths=LognormalLengths(p50=8, p90=43, max_tokens=2048),
)

#: All presets keyed by name.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec for spec in (SHAREGPT, AZURE_CONV, AZURE_CODE)
}
