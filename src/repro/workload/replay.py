"""Open-loop live replay: drive a gateway from a recorded trace.

An *open-loop* driver submits each request at its trace arrival time
(scaled through the gateway's virtual clock) and never waits for
completions — arrival pressure is independent of service rate, the
property that makes closed-loop load generators understate tail
latency.  This is the live-traffic counterpart of
:meth:`repro.serve.gateway.ServeGateway.replay`, which is the
deterministic ``speed=inf`` path.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle: serve imports api
    # imports workload, so the gateway types stay lazy at runtime.
    from repro.serve.gateway import ServeGateway


@dataclass
class ReplayReport:
    """What happened to an open-loop replay's offered requests."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)
    #: trace request id -> gateway request id for admitted requests.
    request_ids: dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
        }


class OpenLoopReplay:
    """Replays a trace against a running gateway at wall pace.

    Args:
        trace: Requests to offer, in any order (sorted internally).
        limit: Offer only the first N arrivals (None = all).
    """

    def __init__(
        self, trace: Iterable[Request], *, limit: int | None = None
    ) -> None:
        self.requests = sorted(trace, key=lambda r: r.arrival_time)
        if limit is not None:
            self.requests = self.requests[:limit]

    async def drive(self, gateway: "ServeGateway") -> ReplayReport:
        """Offer every request at its arrival time; returns the tally.

        The gateway must be started.  Each trace request is re-issued
        as a fresh gateway submission (the originals are not mutated),
        with the trace arrival time as the latency anchor.
        """
        from repro.serve.gateway import AdmissionRefused

        report = ReplayReport()
        for original in self.requests:
            # Unknown tier specs ride along with the trace.
            gateway.tiers.setdefault(original.qos.name, original.qos)
            delay = gateway.clock.wall_delay_until(original.arrival_time)
            if delay > 0:
                await asyncio.sleep(delay)
            report.offered += 1
            try:
                admitted = await gateway.submit(
                    prompt_tokens=original.prompt_tokens,
                    decode_tokens=original.decode_tokens,
                    tier=original.qos.name,
                    important=original.important,
                    app_id=original.app_id,
                    arrival_time=original.arrival_time,
                )
            except AdmissionRefused as refused:
                report.shed += 1
                report.shed_by_reason[refused.reason] = (
                    report.shed_by_reason.get(refused.reason, 0) + 1
                )
                continue
            report.admitted += 1
            report.request_ids[original.request_id] = (
                admitted.request_id
            )
        return report


async def wait_drained(
    gateway: "ServeGateway", poll: float = 0.05
) -> None:
    """Block until the gateway's simulator has no pending events."""
    while (
        gateway.running
        and gateway.session.next_event_time() is not None
    ):
        await asyncio.sleep(poll)
