"""Request arrival processes.

The paper generates arrivals with a Poisson process at a target QPS
(Section 4, citing Sarathi's methodology) and, for the transient
overload study (Section 4.3), a square wave alternating between a low
and a high rate every 15 minutes with a 2.5x peak-to-trough ratio.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class ArrivalProcess(ABC):
    """Generates monotonically increasing arrival timestamps."""

    @abstractmethod
    def generate(
        self, rng: np.random.Generator, num_requests: int
    ) -> np.ndarray:
        """Return ``num_requests`` sorted arrival times (seconds)."""

    @abstractmethod
    def mean_qps(self) -> float:
        """Long-run average arrival rate."""


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at a fixed rate."""

    def __init__(self, qps: float) -> None:
        if qps <= 0:
            raise ValueError(f"qps must be positive, got {qps}")
        self.qps = float(qps)

    def generate(
        self, rng: np.random.Generator, num_requests: int
    ) -> np.ndarray:
        gaps = rng.exponential(scale=1.0 / self.qps, size=num_requests)
        return np.cumsum(gaps)

    def mean_qps(self) -> float:
        return self.qps


class DiurnalArrivals(ArrivalProcess):
    """Square-wave Poisson arrivals alternating low/high QPS.

    Section 4.3: "Load in the system varies dynamically between low
    (QPS:2.0) and high (QPS:5) points every 15 minutes over a total of
    4 hours" — a compressed model of weekly diurnal variation with a
    2.5x peak-to-trough ratio.  Implemented by thinning: the phase at
    time t selects the instantaneous rate, and inter-arrival gaps are
    drawn from that rate.
    """

    def __init__(
        self,
        low_qps: float = 2.0,
        high_qps: float = 5.0,
        phase_duration: float = 900.0,
        start_high: bool = False,
    ) -> None:
        if low_qps <= 0 or high_qps <= 0:
            raise ValueError("rates must be positive")
        if phase_duration <= 0:
            raise ValueError("phase_duration must be positive")
        self.low_qps = float(low_qps)
        self.high_qps = float(high_qps)
        self.phase_duration = float(phase_duration)
        self.start_high = bool(start_high)

    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate at simulated ``time``."""
        phase = int(time // self.phase_duration) % 2
        high = (phase == 0) if self.start_high else (phase == 1)
        return self.high_qps if high else self.low_qps

    def generate(
        self, rng: np.random.Generator, num_requests: int
    ) -> np.ndarray:
        times = np.empty(num_requests, dtype=np.float64)
        t = 0.0
        # Thinning against the max rate gives an exact inhomogeneous
        # Poisson process for the piecewise-constant rate function.
        max_rate = max(self.low_qps, self.high_qps)
        produced = 0
        while produced < num_requests:
            t += rng.exponential(scale=1.0 / max_rate)
            if rng.random() <= self.rate_at(t) / max_rate:
                times[produced] = t
                produced += 1
        return times

    def mean_qps(self) -> float:
        return 0.5 * (self.low_qps + self.high_qps)


def burst_schedule(
    base_qps: float,
    burst_qps: float,
    burst_start: float,
    burst_duration: float,
) -> "PiecewiseArrivals":
    """A single transient burst on top of a steady base rate."""
    return PiecewiseArrivals(
        [
            (0.0, base_qps),
            (burst_start, burst_qps),
            (burst_start + burst_duration, base_qps),
        ]
    )


class PiecewiseArrivals(ArrivalProcess):
    """Poisson arrivals with an arbitrary piecewise-constant rate.

    Args:
        segments: ``(start_time, qps)`` pairs sorted by start time; the
            last segment's rate holds forever.
    """

    def __init__(self, segments: list[tuple[float, float]]) -> None:
        if not segments:
            raise ValueError("segments must be non-empty")
        starts = [s for s, _ in segments]
        if starts != sorted(starts):
            raise ValueError("segments must be sorted by start time")
        if any(q <= 0 for _, q in segments):
            raise ValueError("rates must be positive")
        self.segments = list(segments)

    def rate_at(self, time: float) -> float:
        rate = self.segments[0][1]
        for start, qps in self.segments:
            if time >= start:
                rate = qps
            else:
                break
        return rate

    def generate(
        self, rng: np.random.Generator, num_requests: int
    ) -> np.ndarray:
        max_rate = max(q for _, q in self.segments)
        times = np.empty(num_requests, dtype=np.float64)
        t = 0.0
        produced = 0
        while produced < num_requests:
            t += rng.exponential(scale=1.0 / max_rate)
            if rng.random() <= self.rate_at(t) / max_rate:
                times[produced] = t
                produced += 1
        return times

    def mean_qps(self) -> float:
        # Average of segment rates weighted by duration is undefined
        # for the open-ended final segment; report the final rate.
        return self.segments[-1][1]
