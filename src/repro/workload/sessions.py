"""Multi-turn conversation sessions.

ShareGPT-style workloads are conversations: each turn's prompt carries
the running history (previous prompts and completions) plus the new
user message, so prompt lengths *grow within a session* and successive
turns of one session arrive separated by user think time.  The plain
per-request generators in :mod:`repro.workload.datasets` reproduce the
marginal length distributions; this generator reproduces the session
*structure*, which stresses exactly what dynamic chunking exploits —
late turns with large contexts and strict interactive deadlines.

Sessions are generated open-loop: turn ``k+1`` arrives a think-time
plus estimated-service gap after turn ``k``, so traces remain
precomputable (closed-loop replay would need simulation feedback).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.qos import Q1_INTERACTIVE, QoSSpec
from repro.core.request import Request
from repro.simcore.rng import RngStreams
from repro.workload.distributions import LengthDistribution, LognormalLengths
from repro.workload.trace import Trace


@dataclass(frozen=True)
class SessionProfile:
    """Shape of one conversational application.

    Attributes:
        qos: QoS bucket for every turn (interactive, typically).
        first_prompt: Length distribution of a session's opening
            prompt (system prompt + first user message).
        user_turn: Length distribution of each *additional* user
            message appended on later turns.
        completion: Output-length distribution per turn.
        mean_turns: Mean session length in turns (geometric).
        think_time_mean: Mean user think time between turns, seconds.
        service_estimate: Added to the think gap per turn so arrival
            spacing roughly accounts for generation time (open loop).
        max_context: Sessions stop growing past this prompt size (the
            serving context window).
        shared_prefix_tokens: Leading tokens identical across *every*
            session — a shared system prompt or RAG template.  Token
            ids ``0 .. n-1`` open each session's stream before its
            private tokens, so a radix prefix cache shares them
            cluster-wide, not just within one conversation.
    """

    qos: QoSSpec = Q1_INTERACTIVE
    first_prompt: LengthDistribution = LognormalLengths(
        p50=700, p90=2500, max_tokens=8192
    )
    user_turn: LengthDistribution = LognormalLengths(
        p50=60, p90=400, max_tokens=2048
    )
    completion: LengthDistribution = LognormalLengths(
        p50=300, p90=800, max_tokens=2048
    )
    mean_turns: float = 4.0
    think_time_mean: float = 20.0
    service_estimate: float = 5.0
    max_context: int = 8192
    shared_prefix_tokens: int = 0


#: Agent/RAG-style traffic: every session opens with the same 1024
#: shared system-prompt tokens, exchanges short tool-call-ish turns,
#: and runs longer conversations with tight think gaps — the profile
#: the prefix-reuse experiments lean on.
AGENT_PROFILE = SessionProfile(
    first_prompt=LognormalLengths(p50=1400, p90=3000, max_tokens=8192),
    user_turn=LognormalLengths(p50=120, p90=500, max_tokens=2048),
    completion=LognormalLengths(p50=200, p90=600, max_tokens=1024),
    mean_turns=6.0,
    think_time_mean=4.0,
    service_estimate=2.0,
    shared_prefix_tokens=1024,
)


class SessionWorkload:
    """Generates multi-turn session traces."""

    def __init__(
        self,
        profile: SessionProfile | None = None,
        session_qps: float = 1.0,
        seed: int = 0,
    ) -> None:
        """Args:
        profile: Conversation shape; defaults to chat-like settings.
        session_qps: Poisson rate of *session starts* per second.
        seed: Master seed.
        """
        if session_qps <= 0:
            raise ValueError("session_qps must be positive")
        self.profile = profile or SessionProfile()
        self.session_qps = float(session_qps)
        self.seed = int(seed)

    def _token_ids(self, session_index: int, count: int) -> tuple[int, ...]:
        """First ``count`` token ids of a session's deterministic stream.

        Position ``k`` maps to the global shared-prefix id ``k`` while
        ``k < shared_prefix_tokens``, then to a per-session namespace
        (offset by ``(session_index + 1) * max_context``, which no
        prompt can outgrow) — a pure counter scheme, so emitting ids
        costs no RNG draws and leaves lengths and timings untouched.
        """
        profile = self.profile
        shared = min(profile.shared_prefix_tokens, count)
        base = (session_index + 1) * profile.max_context
        return tuple(range(shared)) + tuple(
            range(base + shared, base + count)
        )

    def build(self, num_sessions: int) -> Trace:
        """Generate ``num_sessions`` sessions as one arrival-sorted trace.

        Every request's ``app_id`` (and ``session_id``) is
        ``session-<n>``; within a session prompts grow by the previous
        turn's prompt + completion + the new user message, clipped at
        the context window.  Each turn carries concrete ``token_ids``:
        later turns extend the earlier turn's exact token stream
        (clipping keeps the *first* ``max_context`` tokens, preserving
        the prefix property), so a radix KV cache sees true shared
        prefixes — within a session, and across sessions for the
        profile's ``shared_prefix_tokens``.
        """
        if num_sessions < 1:
            raise ValueError("num_sessions must be >= 1")
        profile = self.profile
        streams = RngStreams(self.seed)
        rng = streams.stream("sessions")

        starts = np.cumsum(
            rng.exponential(scale=1.0 / self.session_qps,
                            size=num_sessions)
        )
        # Geometric turn counts with the requested mean (>= 1 turn).
        p = min(1.0, 1.0 / max(1.0, profile.mean_turns))
        turn_counts = rng.geometric(p, size=num_sessions)

        requests: list[Request] = []
        request_id = 0
        for session_index in range(num_sessions):
            t = float(starts[session_index])
            context = int(
                profile.first_prompt.sample(rng, 1)[0]
            )
            parent_id: int | None = None
            for turn in range(int(turn_counts[session_index])):
                decode = int(profile.completion.sample(rng, 1)[0])
                prompt = max(1, min(context, profile.max_context))
                requests.append(
                    Request(
                        request_id=request_id,
                        arrival_time=t,
                        prompt_tokens=prompt,
                        decode_tokens=max(1, decode),
                        qos=profile.qos,
                        app_id=f"session-{session_index}",
                        token_ids=self._token_ids(session_index, prompt),
                        session_id=f"session-{session_index}",
                        parent_request_id=parent_id,
                    )
                )
                parent_id = request_id
                request_id += 1
                # Next turn: history grows by this completion plus a
                # fresh user message; arrival after think + service.
                user_tokens = int(profile.user_turn.sample(rng, 1)[0])
                context = min(
                    profile.max_context,
                    prompt + decode + user_tokens,
                )
                t += float(
                    rng.exponential(profile.think_time_mean)
                    + profile.service_estimate
                )
        requests.sort(key=lambda r: (r.arrival_time, r.request_id))
        return Trace(
            requests,
            dataset_name="sessions",
            seed=self.seed,
        )


def session_turn_index(trace: Trace) -> dict[str, list[Request]]:
    """Group a session trace's requests by session id, in turn order."""
    sessions: dict[str, list[Request]] = {}
    for request in trace:
        sessions.setdefault(request.app_id, []).append(request)
    for turns in sessions.values():
        turns.sort(key=lambda r: r.arrival_time)
    return sessions
