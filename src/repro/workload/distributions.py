"""Token-length distributions fit to published percentiles.

Table 2 of the paper reports p50 and p90 of prompt and decode token
counts for each dataset.  A two-parameter lognormal is exactly
identified by two percentiles, making it the natural synthetic stand-in
for heavy-tailed LLM length distributions.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

#: Standard-normal quantile of 0.9, used to invert the p90 constraint.
_Z90 = 1.2815515655446004


class LengthDistribution(ABC):
    """Generates positive integer token counts."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` token counts as an int64 array (each >= 1)."""

    @abstractmethod
    def percentile(self, q: float) -> float:
        """Analytic percentile of the underlying distribution."""


class LognormalLengths(LengthDistribution):
    """Lognormal token counts parameterized by (p50, p90).

    Attributes:
        p50: Target median token count.
        p90: Target 90th-percentile token count; must exceed p50.
        max_tokens: Hard clip to keep pathological tail samples
            schedulable (prompts must fit in KV memory).
    """

    def __init__(self, p50: float, p90: float, max_tokens: int = 32768) -> None:
        if p50 <= 0 or p90 <= p50:
            raise ValueError(f"need 0 < p50 < p90, got p50={p50} p90={p90}")
        if max_tokens < p90:
            raise ValueError("max_tokens must be >= p90")
        self.p50 = float(p50)
        self.p90 = float(p90)
        self.max_tokens = int(max_tokens)
        self._mu = math.log(self.p50)
        self._sigma = (math.log(self.p90) - self._mu) / _Z90

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        raw = rng.lognormal(mean=self._mu, sigma=self._sigma, size=n)
        return np.clip(np.rint(raw), 1, self.max_tokens).astype(np.int64)

    def percentile(self, q: float) -> float:
        if not 0 < q < 1:
            raise ValueError(f"q must be in (0, 1), got {q}")
        z = _ppf_standard_normal(q)
        return math.exp(self._mu + self._sigma * z)

    def __repr__(self) -> str:
        return f"LognormalLengths(p50={self.p50:g}, p90={self.p90:g})"


def _ppf_standard_normal(q: float) -> float:
    """Acklam's rational approximation to the standard-normal PPF.

    Accurate to ~1e-9 over (0, 1); avoids a scipy dependency in the
    core library (scipy is only used by tests for cross-checking).
    """
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u
                + c[5]) / ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1)
    if q <= 1 - p_low:
        u = q - 0.5
        r = u * u
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
                + a[5]) * u / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                                + b[4]) * r + 1)
    u = math.sqrt(-2.0 * math.log(1.0 - q))
    return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u
             + c[5]) / ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1)
