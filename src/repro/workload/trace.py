"""Trace assembly and (de)serialization.

A :class:`Trace` is an arrival-time-ordered list of
:class:`~repro.core.request.Request` objects.  The builder composes a
dataset's length distributions, an arrival process and a tier assigner
into a reproducible trace; traces can be saved to and loaded from JSON
so experiments can pin their inputs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.qos import QoSClass, QoSSpec
from repro.core.request import Request
from repro.simcore.rng import RngStreams
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.datasets import DatasetSpec
from repro.workload.tiers import TierAssigner


@dataclass
class Trace:
    """An immutable-by-convention sequence of requests plus provenance."""

    requests: list[Request]
    dataset_name: str = "unknown"
    seed: int = 0

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index: int) -> Request:
        return self.requests[index]

    @property
    def duration(self) -> float:
        """Span between first and last arrival (0 for empty traces)."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_time - self.requests[0].arrival_time

    def fresh_copy(self) -> "Trace":
        """Deep copy with all runtime state reset, for re-simulation."""
        return Trace(
            requests=[r.clone_fresh() for r in self.requests],
            dataset_name=self.dataset_name,
            seed=self.seed,
        )

    def scaled_arrivals(self, factor: float) -> "Trace":
        """Copy with inter-arrival gaps divided by ``factor``.

        Scaling arrivals (rather than regenerating) keeps the request
        bodies identical across load points, which is how the paper's
        load sweeps isolate scheduling effects from sampling noise.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        copies = []
        for request in self.requests:
            fresh = request.clone_fresh()
            fresh.arrival_time = request.arrival_time / factor
            copies.append(fresh)
        return Trace(copies, dataset_name=self.dataset_name, seed=self.seed)

    # --- persistence ----------------------------------------------------

    def to_json(self, path: str | Path) -> None:
        """Serialize the trace (static attributes only) to JSON."""
        records = []
        for r in self.requests:
            records.append(
                {
                    "id": r.request_id,
                    "arrival": r.arrival_time,
                    "prompt": r.prompt_tokens,
                    "decode": r.decode_tokens,
                    "app": r.app_id,
                    "important": r.important,
                    "qos": {
                        "name": r.qos.name,
                        "class": r.qos.qos_class.value,
                        "ttft": r.qos.ttft_slo,
                        "tbt": r.qos.tbt_slo,
                        "ttlt": r.qos.ttlt_slo,
                    },
                }
            )
        payload = {
            "dataset": self.dataset_name,
            "seed": self.seed,
            "requests": records,
        }
        Path(path).write_text(json.dumps(payload))

    @staticmethod
    def from_json(path: str | Path) -> "Trace":
        """Load a trace previously written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        qos_cache: dict[tuple, QoSSpec] = {}
        requests = []
        for rec in payload["requests"]:
            q = rec["qos"]
            key = (q["name"], q["class"], q["ttft"], q["tbt"], q["ttlt"])
            if key not in qos_cache:
                qos_cache[key] = QoSSpec(
                    name=q["name"],
                    qos_class=QoSClass(q["class"]),
                    ttft_slo=q["ttft"],
                    tbt_slo=q["tbt"],
                    ttlt_slo=q["ttlt"],
                )
            requests.append(
                Request(
                    request_id=rec["id"],
                    arrival_time=rec["arrival"],
                    prompt_tokens=rec["prompt"],
                    decode_tokens=rec["decode"],
                    qos=qos_cache[key],
                    app_id=rec["app"],
                    important=rec["important"],
                )
            )
        return Trace(
            requests=requests,
            dataset_name=payload["dataset"],
            seed=payload["seed"],
        )


class TraceBuilder:
    """Composes dataset + arrivals + tiers into a reproducible trace."""

    def __init__(
        self,
        dataset: DatasetSpec,
        arrivals: ArrivalProcess | None = None,
        tier_assigner: TierAssigner | None = None,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.arrivals = arrivals or PoissonArrivals(qps=1.0)
        self.tier_assigner = tier_assigner or TierAssigner()
        self.seed = int(seed)

    def build(self, num_requests: int) -> Trace:
        """Generate a trace of ``num_requests`` requests."""
        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        streams = RngStreams(self.seed)
        prompt_lengths, decode_lengths = self.dataset.sample(
            streams.stream("lengths"), num_requests
        )
        arrival_times = self.arrivals.generate(
            streams.stream("arrivals"), num_requests
        )
        tier_idx, important = self.tier_assigner.assign(
            streams.stream("tiers"), num_requests
        )

        requests = []
        for i in range(num_requests):
            tier = self.tier_assigner.tier(int(tier_idx[i]))
            requests.append(
                Request(
                    request_id=i,
                    arrival_time=float(arrival_times[i]),
                    prompt_tokens=int(prompt_lengths[i]),
                    decode_tokens=int(decode_lengths[i]),
                    qos=tier,
                    app_id=self.tier_assigner.app_name(int(tier_idx[i])),
                    important=bool(important[i]),
                )
            )
        requests.sort(key=lambda r: r.arrival_time)
        return Trace(
            requests=requests,
            dataset_name=self.dataset.name,
            seed=self.seed,
        )
