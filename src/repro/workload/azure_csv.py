"""Loader for the public Azure LLM inference trace format.

The paper's Azure Code and Azure Conversation workloads come from the
`Azure public dataset <https://github.com/Azure/AzurePublicDataset>`_
LLM inference traces, CSVs with columns ``TIMESTAMP``,
``ContextTokens`` and ``GeneratedTokens``.  This reproduction ships
synthetic stand-ins fit to the published percentiles (Table 2), but
when the real CSVs are available this loader turns them into
:class:`~repro.workload.trace.Trace` objects directly, so every
experiment can run on the genuine arrival process and length marginals.

Timestamps may be ISO-8601 strings or numeric seconds; arrivals are
re-based to zero and can be re-scaled to a target mean QPS (the paper
replays trace lengths under Poisson/diurnal arrivals — re-scaling
reproduces its fixed-QPS methodology on real lengths).
"""

from __future__ import annotations

import csv
from datetime import datetime
from pathlib import Path

import numpy as np

from repro.core.request import Request
from repro.simcore.rng import RngStreams
from repro.workload.tiers import TierAssigner
from repro.workload.trace import Trace

#: Accepted header spellings (the published traces vary in case).
_TIMESTAMP_KEYS = ("TIMESTAMP", "Timestamp", "timestamp", "arrival_time")
_CONTEXT_KEYS = ("ContextTokens", "context_tokens", "prompt_tokens")
_GENERATED_KEYS = ("GeneratedTokens", "generated_tokens", "decode_tokens")


def _pick(row: dict, keys: tuple[str, ...], path: Path, field: str) -> str:
    for key in keys:
        if key in row and row[key] != "":
            return row[key]
    raise ValueError(
        f"{path}: missing {field} column (looked for {', '.join(keys)})"
    )


def _parse_timestamp(raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        pass
    try:
        return datetime.fromisoformat(raw.replace("Z", "+00:00")).timestamp()
    except ValueError as error:
        raise ValueError(f"unparseable timestamp {raw!r}") from error


def load_azure_trace(
    path: str | Path,
    tier_assigner: TierAssigner | None = None,
    target_qps: float | None = None,
    max_requests: int | None = None,
    max_prompt_tokens: int = 8192,
    seed: int = 0,
    dataset_name: str | None = None,
) -> Trace:
    """Load an Azure LLM inference CSV as a simulation trace.

    Args:
        path: CSV with TIMESTAMP / ContextTokens / GeneratedTokens.
        tier_assigner: QoS assignment policy; defaults to the Table 3
            equal-thirds split, mirroring the paper's methodology of
            dividing the dataset across application tiers.
        target_qps: When given, inter-arrival gaps are scaled so the
            loaded span matches this mean rate (the paper's fixed-QPS
            replay); ``None`` keeps the native timestamps.
        max_requests: Truncate after this many rows.
        max_prompt_tokens: Clip prompts at the serving context window.
        seed: Seed for tier assignment.
        dataset_name: Trace label; defaults to the file stem.

    Returns:
        An arrival-sorted :class:`Trace`.

    Raises:
        ValueError: On missing columns, unparseable rows, or an empty
            file.
    """
    path = Path(path)
    arrivals: list[float] = []
    prompts: list[int] = []
    decodes: list[int] = []
    with path.open(newline="") as source:
        reader = csv.DictReader(source)
        for row in reader:
            arrivals.append(
                _parse_timestamp(
                    _pick(row, _TIMESTAMP_KEYS, path, "timestamp")
                )
            )
            prompts.append(
                int(float(_pick(row, _CONTEXT_KEYS, path, "context")))
            )
            decodes.append(
                int(float(_pick(row, _GENERATED_KEYS, path, "generated")))
            )
            if max_requests is not None and len(arrivals) >= max_requests:
                break
    if not arrivals:
        raise ValueError(f"{path}: no rows")

    order = np.argsort(np.asarray(arrivals), kind="stable")
    base = arrivals[order[0]]
    times = np.asarray([arrivals[i] - base for i in order], dtype=np.float64)
    span = float(times[-1]) if len(times) > 1 else 0.0
    if target_qps is not None:
        if target_qps <= 0:
            raise ValueError("target_qps must be positive")
        native_qps = (len(times) - 1) / span if span > 0 else None
        if native_qps and native_qps > 0:
            times = times * (native_qps / target_qps)

    assigner = tier_assigner or TierAssigner()
    streams = RngStreams(seed)
    tier_idx, important = assigner.assign(
        streams.stream("azure-tiers"), len(times)
    )

    requests = []
    for new_id, source_index in enumerate(order):
        prompt = min(max(1, prompts[source_index]), max_prompt_tokens)
        decode = max(1, decodes[source_index])
        requests.append(
            Request(
                request_id=new_id,
                arrival_time=float(times[new_id]),
                prompt_tokens=prompt,
                decode_tokens=decode,
                qos=assigner.tier(int(tier_idx[new_id])),
                app_id=assigner.app_name(int(tier_idx[new_id])),
                important=bool(important[new_id]),
            )
        )
    return Trace(
        requests,
        dataset_name=dataset_name or path.stem,
        seed=seed,
    )


def write_azure_csv(trace: Trace, path: str | Path) -> None:
    """Write a trace in the Azure CSV layout (round-trip helper)."""
    with Path(path).open("w", newline="") as sink:
        writer = csv.writer(sink)
        writer.writerow(["TIMESTAMP", "ContextTokens", "GeneratedTokens"])
        for request in trace:
            writer.writerow(
                [
                    f"{request.arrival_time:.6f}",
                    request.prompt_tokens,
                    request.decode_tokens,
                ]
            )
