"""Workload generation: request lengths, arrivals, QoS tiers, traces.

The paper evaluates on ShareGPT and two Azure production traces.  Those
traces are not redistributable, so this package generates synthetic
equivalents: lognormal prompt/decode length distributions fit to the
published p50/p90 values of Table 2, Poisson arrivals (as the paper
itself uses), the diurnal square-wave load of Section 4.3, and the
three-tier QoS composition of Table 3.
"""

from repro.workload.distributions import LengthDistribution, LognormalLengths
from repro.workload.datasets import (
    AZURE_CODE,
    AZURE_CONV,
    DATASETS,
    SHAREGPT,
    DatasetSpec,
)
from repro.workload.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    PoissonArrivals,
    burst_schedule,
)
from repro.workload.replay import OpenLoopReplay, ReplayReport, wait_drained
from repro.workload.tiers import TierAssigner, TierMix
from repro.workload.trace import Trace, TraceBuilder
from repro.workload.analysis import TraceStats, analyze_trace
from repro.workload.azure_csv import load_azure_trace, write_azure_csv
from repro.workload.sessions import (
    AGENT_PROFILE,
    SessionProfile,
    SessionWorkload,
    session_turn_index,
)

__all__ = [
    "TraceStats",
    "analyze_trace",
    "load_azure_trace",
    "write_azure_csv",
    "AGENT_PROFILE",
    "SessionProfile",
    "SessionWorkload",
    "session_turn_index",
    "LengthDistribution",
    "LognormalLengths",
    "AZURE_CODE",
    "AZURE_CONV",
    "DATASETS",
    "SHAREGPT",
    "DatasetSpec",
    "ArrivalProcess",
    "DiurnalArrivals",
    "PoissonArrivals",
    "burst_schedule",
    "TierAssigner",
    "TierMix",
    "Trace",
    "TraceBuilder",
    "OpenLoopReplay",
    "ReplayReport",
    "wait_drained",
]
