"""QoS tier assignment and workload composition (Table 3, Section 4).

The paper emulates multiple applications by splitting each dataset into
parts and assigning each part a QoS bucket: by default an equal
33/33/33 split over Q1 (interactive chat), Q2 (video summaries) and Q3
(email insights), with skewed 70-15-15 and 15-15-70 mixes studied in
Section 4.4.2.  For the multi-priority overload study, 20% of requests
in each bucket are marked low-priority via application hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.qos import DEFAULT_TIERS, QoSSpec

#: Representative application names for the three tiers (Section 4).
DEFAULT_APP_NAMES = ("chat", "video-summary", "email-insights")


@dataclass(frozen=True)
class TierMix:
    """A weighted mixture of QoS tiers.

    Attributes:
        tiers: The QoS buckets.
        weights: Request share per bucket; normalized on construction.
        app_names: Application identifier per bucket (drives the
            decode-length history of Section 3.4).
    """

    tiers: tuple[QoSSpec, ...] = DEFAULT_TIERS
    weights: tuple[float, ...] = (1.0, 1.0, 1.0)
    app_names: tuple[str, ...] = DEFAULT_APP_NAMES

    def __post_init__(self) -> None:
        if len(self.tiers) == 0:
            raise ValueError("need at least one tier")
        if len(self.weights) != len(self.tiers):
            raise ValueError("weights and tiers must align")
        if len(self.app_names) != len(self.tiers):
            raise ValueError("app_names and tiers must align")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative, not all zero")

    @property
    def probabilities(self) -> np.ndarray:
        w = np.asarray(self.weights, dtype=np.float64)
        return w / w.sum()

    @staticmethod
    def equal_thirds() -> "TierMix":
        """The paper's default 33/33/33 composition."""
        return TierMix()

    @staticmethod
    def interactive_heavy() -> "TierMix":
        """Section 4.4.2's 70-15-15 interactive-dominant mix."""
        return TierMix(weights=(0.70, 0.15, 0.15))

    @staticmethod
    def batch_heavy() -> "TierMix":
        """Section 4.4.2's 15-15-70 batch-dominant mix."""
        return TierMix(weights=(0.15, 0.15, 0.70))


class TierAssigner:
    """Assigns tiers and importance hints to a stream of requests."""

    def __init__(
        self,
        mix: TierMix | None = None,
        low_priority_fraction: float = 0.0,
    ) -> None:
        """Args:
        mix: Tier mixture; defaults to the equal-thirds preset.
        low_priority_fraction: Share of requests *within each bucket*
            marked as free-tier/low-priority (Section 4.3 uses 0.2).
        """
        if not 0.0 <= low_priority_fraction <= 1.0:
            raise ValueError("low_priority_fraction must be in [0, 1]")
        self.mix = mix or TierMix.equal_thirds()
        self.low_priority_fraction = float(low_priority_fraction)

    def assign(
        self, rng: np.random.Generator, n: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw tier indices and importance flags for ``n`` requests.

        Returns:
            ``(tier_indices, important)`` — int64 indices into
            ``mix.tiers`` and a boolean importance array.
        """
        tier_idx = rng.choice(
            len(self.mix.tiers), size=n, p=self.mix.probabilities
        )
        important = rng.random(n) >= self.low_priority_fraction
        return tier_idx.astype(np.int64), important

    def tier(self, index: int) -> QoSSpec:
        return self.mix.tiers[index]

    def app_name(self, index: int) -> str:
        return self.mix.app_names[index]
