"""Paged KV-cache accounting (vLLM's PagedAttention, abstracted).

The simulator does not move tensors, but KV memory still gates
scheduling: a replica cannot admit more prefill work than its cache can
hold, and decode batches grow their footprint by one token per request
per iteration.  This manager tracks block-granular usage exactly the
way a paged allocator would, including the block-rounding waste.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.prefix import PrefixReclaimer


class KVCacheManager:
    """Block-granular KV-cache bookkeeping for one replica."""

    def __init__(self, capacity_tokens: int, block_size: int = 16) -> None:
        """Args:
        capacity_tokens: Cache capacity in tokens (from
            :attr:`ExecutionModel.kv_capacity_tokens`).
        block_size: Tokens per page; allocations round up to this.
        """
        if capacity_tokens < 1:
            raise ValueError("capacity_tokens must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = int(block_size)
        self.capacity_blocks = int(capacity_tokens) // self.block_size
        if self.capacity_blocks < 1:
            raise ValueError("capacity smaller than one block")
        self._used_blocks = 0
        self._used_tokens = 0
        #: Peak block occupancy over the manager's lifetime — the
        #: high-water mark observability and capacity planning read.
        self.high_water_blocks = 0
        # request_id -> (tokens held, blocks held)
        self._holdings: dict[int, tuple[int, int]] = {}
        # Optional prefix-cache hook consulted when allocation would
        # otherwise fail; None keeps every code path byte-identical to
        # a reclaimer-free ledger.
        self._reclaimer: PrefixReclaimer | None = None

    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        return self.capacity_blocks - self._used_blocks

    @property
    def capacity_tokens(self) -> int:
        """Usable token capacity (whole blocks only)."""
        return self.capacity_blocks * self.block_size

    @property
    def used_tokens(self) -> int:
        """Tokens actually stored (excludes block-rounding waste).

        Maintained as a running counter so per-iteration telemetry
        stays O(1) instead of summing every holding.
        """
        return self._used_tokens

    @property
    def reclaimable_blocks(self) -> int:
        """Blocks the registered reclaimer could free on demand.

        Planners add these to :attr:`free_blocks` when budgeting:
        unreferenced prefix-cache blocks are resident but spendable,
        and :meth:`grow` evicts them before failing.  0 with no
        reclaimer, keeping reuse-off math untouched.
        """
        if self._reclaimer is None:
            return 0
        return self._reclaimer.reclaimable_blocks()

    def set_reclaimer(self, reclaimer: PrefixReclaimer | None) -> None:
        """Install a prefix cache to raid when allocation would fail.

        With a reclaimer installed, :meth:`can_grow` counts its
        evictable blocks as available and :meth:`grow` evicts from it
        before declaring the cache exhausted.  ``None`` (the default)
        leaves every path byte-identical to the reclaimer-free ledger.
        """
        self._reclaimer = reclaimer

    @property
    def utilization(self) -> float:
        """Fraction of blocks in use."""
        return self._used_blocks / self.capacity_blocks

    @property
    def high_water_utilization(self) -> float:
        """Peak fraction of blocks ever in use."""
        return self.high_water_blocks / self.capacity_blocks

    def holding(self, request_id: int) -> int:
        """Tokens currently cached for ``request_id`` (0 if none)."""
        tokens, _ = self._holdings.get(request_id, (0, 0))
        return tokens

    def holders(self) -> list[int]:
        """Request ids with a live holding, in insertion order."""
        return list(self._holdings)

    def blocks_needed(self, request_id: int, extra_tokens: int) -> int:
        """Additional blocks required to grow a holding."""
        tokens, blocks = self._holdings.get(request_id, (0, 0))
        new_tokens = tokens + extra_tokens
        new_blocks = -(-new_tokens // self.block_size)  # ceil div
        return max(0, new_blocks - blocks)

    def can_grow(self, request_id: int, extra_tokens: int) -> bool:
        """Whether ``extra_tokens`` more tokens fit for this request."""
        need = self.blocks_needed(request_id, extra_tokens)
        if self._reclaimer is not None:
            return need <= self.free_blocks + self._reclaimer.reclaimable_blocks()
        return need <= self.free_blocks

    def grow(self, request_id: int, extra_tokens: int) -> None:
        """Extend a request's holding by ``extra_tokens`` tokens.

        Raises:
            MemoryError: If the cache lacks free blocks.  Callers are
                expected to check :meth:`can_grow` first; the raise is
                the invariant guard, not a control-flow mechanism.
        """
        if extra_tokens < 0:
            raise ValueError("extra_tokens must be non-negative")
        need = self.blocks_needed(request_id, extra_tokens)
        if need > self.free_blocks and self._reclaimer is not None:
            self._reclaimer.reclaim(need - self.free_blocks)
        if need > self.free_blocks:
            raise MemoryError(
                f"KV cache exhausted: need {need} blocks, "
                f"{self.free_blocks} free"
            )
        tokens, blocks = self._holdings.get(request_id, (0, 0))
        self._holdings[request_id] = (tokens + extra_tokens, blocks + need)
        self._used_blocks += need
        self._used_tokens += extra_tokens
        if self._used_blocks > self.high_water_blocks:
            self.high_water_blocks = self._used_blocks

    def shrink(self, request_id: int, tokens: int, blocks: int) -> None:
        """Give back part of a holding (prefix dedupe / ownership moves).

        The remaining holding must still satisfy the block-rounding
        invariant ``blocks == ceil(tokens / block_size)``; the prefix
        cache only ever peels whole leading blocks, which preserves it.
        """
        held_tokens, held_blocks = self._holdings.get(request_id, (0, 0))
        if tokens > held_tokens or blocks > held_blocks:
            raise ValueError(
                f"shrink exceeds holding for request {request_id}: "
                f"({tokens} tok, {blocks} blk) from "
                f"({held_tokens} tok, {held_blocks} blk)"
            )
        remaining = (held_tokens - tokens, held_blocks - blocks)
        if remaining == (0, 0):
            self._holdings.pop(request_id)
        else:
            self._holdings[request_id] = remaining
        self._used_blocks -= blocks
        self._used_tokens -= tokens

    def release(self, request_id: int) -> int:
        """Free a request's entire holding; returns blocks released."""
        tokens, blocks = self._holdings.pop(request_id, (0, 0))
        self._used_blocks -= blocks
        self._used_tokens -= tokens
        return blocks
