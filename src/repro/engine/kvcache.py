"""Paged KV-cache accounting (vLLM's PagedAttention, abstracted).

The simulator does not move tensors, but KV memory still gates
scheduling: a replica cannot admit more prefill work than its cache can
hold, and decode batches grow their footprint by one token per request
per iteration.  This manager tracks block-granular usage exactly the
way a paged allocator would, including the block-rounding waste.
"""

from __future__ import annotations


class KVCacheManager:
    """Block-granular KV-cache bookkeeping for one replica."""

    def __init__(self, capacity_tokens: int, block_size: int = 16) -> None:
        """Args:
        capacity_tokens: Cache capacity in tokens (from
            :attr:`ExecutionModel.kv_capacity_tokens`).
        block_size: Tokens per page; allocations round up to this.
        """
        if capacity_tokens < 1:
            raise ValueError("capacity_tokens must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = int(block_size)
        self.capacity_blocks = int(capacity_tokens) // self.block_size
        if self.capacity_blocks < 1:
            raise ValueError("capacity smaller than one block")
        self._used_blocks = 0
        #: Peak block occupancy over the manager's lifetime — the
        #: high-water mark observability and capacity planning read.
        self.high_water_blocks = 0
        # request_id -> (tokens held, blocks held)
        self._holdings: dict[int, tuple[int, int]] = {}

    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        return self.capacity_blocks - self._used_blocks

    @property
    def used_tokens(self) -> int:
        """Tokens actually stored (excludes block-rounding waste)."""
        return sum(tokens for tokens, _ in self._holdings.values())

    @property
    def utilization(self) -> float:
        """Fraction of blocks in use."""
        return self._used_blocks / self.capacity_blocks

    @property
    def high_water_utilization(self) -> float:
        """Peak fraction of blocks ever in use."""
        return self.high_water_blocks / self.capacity_blocks

    def holding(self, request_id: int) -> int:
        """Tokens currently cached for ``request_id`` (0 if none)."""
        tokens, _ = self._holdings.get(request_id, (0, 0))
        return tokens

    def holders(self) -> list[int]:
        """Request ids with a live holding, in insertion order."""
        return list(self._holdings)

    def blocks_needed(self, request_id: int, extra_tokens: int) -> int:
        """Additional blocks required to grow a holding."""
        tokens, blocks = self._holdings.get(request_id, (0, 0))
        new_tokens = tokens + extra_tokens
        new_blocks = -(-new_tokens // self.block_size)  # ceil div
        return max(0, new_blocks - blocks)

    def can_grow(self, request_id: int, extra_tokens: int) -> bool:
        """Whether ``extra_tokens`` more tokens fit for this request."""
        return self.blocks_needed(request_id, extra_tokens) <= self.free_blocks

    def grow(self, request_id: int, extra_tokens: int) -> None:
        """Extend a request's holding by ``extra_tokens`` tokens.

        Raises:
            MemoryError: If the cache lacks free blocks.  Callers are
                expected to check :meth:`can_grow` first; the raise is
                the invariant guard, not a control-flow mechanism.
        """
        if extra_tokens < 0:
            raise ValueError("extra_tokens must be non-negative")
        need = self.blocks_needed(request_id, extra_tokens)
        if need > self.free_blocks:
            raise MemoryError(
                f"KV cache exhausted: need {need} blocks, "
                f"{self.free_blocks} free"
            )
        tokens, blocks = self._holdings.get(request_id, (0, 0))
        self._holdings[request_id] = (tokens + extra_tokens, blocks + need)
        self._used_blocks += need
        if self._used_blocks > self.high_water_blocks:
            self.high_water_blocks = self._used_blocks

    def release(self, request_id: int) -> int:
        """Free a request's entire holding; returns blocks released."""
        tokens, blocks = self._holdings.pop(request_id, (0, 0))
        self._used_blocks -= blocks
        return blocks
