"""The scheduler-facing engine interface.

Schedulers decide *which prefill tokens* run each iteration; the engine
owns everything else (decode batching, KV accounting, token emission).
:class:`EngineView` is the read-only window a scheduler gets into the
engine's state, and :class:`Scheduler` is the contract every policy in
:mod:`repro.schedulers` implements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.request import Request
from repro.engine.batch import PrefillAssignment
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.perfmodel.execution import ExecutionModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.prefix import PrefixReclaimer


@runtime_checkable
class KVLedger(Protocol):
    """Block-granular KV accounting shared by both engine cores.

    :class:`repro.engine.kvcache.KVCacheManager` (object engine) and
    :class:`repro.engine.arrays.ArrayKVLedger` (array engine) both
    implement this contract; schedulers, admission control and the
    prefix cache program against it rather than a concrete class.
    Block math is identical across implementations — allocations round
    up to ``block_size`` and ``blocks == ceil(tokens / block_size)``
    holds for every holding.
    """

    block_size: int
    capacity_blocks: int
    high_water_blocks: int

    @property
    def used_blocks(self) -> int: ...

    @property
    def free_blocks(self) -> int: ...

    @property
    def capacity_tokens(self) -> int:
        """Usable token capacity (whole blocks only)."""
        ...

    @property
    def used_tokens(self) -> int: ...

    @property
    def reclaimable_blocks(self) -> int:
        """Blocks a registered reclaimer could free on demand (0 when
        no prefix cache is installed).  Planners treat these as
        spendable: :meth:`grow` raids the reclaimer before failing."""
        ...

    @property
    def utilization(self) -> float: ...

    @property
    def high_water_utilization(self) -> float: ...

    def holding(self, request_id: int) -> int:
        """Tokens currently cached for ``request_id`` (0 if none)."""
        ...

    def holders(self) -> list[int]:
        """Request ids with a live holding, in insertion order."""
        ...

    def blocks_needed(self, request_id: int, extra_tokens: int) -> int: ...

    def can_grow(self, request_id: int, extra_tokens: int) -> bool: ...

    def grow(self, request_id: int, extra_tokens: int) -> None: ...

    def shrink(self, request_id: int, tokens: int, blocks: int) -> None:
        """Give back part of a holding (prefix dedupe / ownership moves)."""
        ...

    def release(self, request_id: int) -> int:
        """Free a request's entire holding; returns blocks released."""
        ...

    def set_reclaimer(self, reclaimer: PrefixReclaimer | None) -> None:
        """Install a prefix cache to raid when allocation would fail."""
        ...


@dataclass
class EngineView:
    """Read-only snapshot handed to the scheduler each iteration.

    Attributes:
        now: Current simulated time.
        decode_requests: Requests that will decode this iteration
            (always the entire decode queue, per Section 3.1).
        kv_cache: The replica's KV manager (for admission checks).
        execution_model: Ground-truth cost model of the replica.
        max_decode_slots: Engine cap on concurrently decoding requests.
        inflight_prefill_ids: Request ids whose prefill has started but
            not completed; they already hold a decode slot.  Treat as
            read-only.
        decode_context_total: Sum of ``decode_requests`` context
            lengths, maintained incrementally by the engine; ``None``
            (bare views built in tests) means "compute it yourself".
    """

    now: float
    decode_requests: list[Request]
    kv_cache: KVLedger
    execution_model: ExecutionModel
    max_decode_slots: int
    inflight_prefill_ids: frozenset[int] = frozenset()
    decode_context_total: int | None = None


class Scheduler(ABC):
    """A prefill-selection policy plugged into a replica engine."""

    #: Human-readable policy name used in experiment tables.
    name: str = "scheduler"

    #: Observability hooks; the no-op default costs one dispatch per
    #: notification.  The engine installs its own observer here via
    #: :meth:`set_observer` so scheduler-level events (relegations,
    #: chunk sizing) land in the same trace as engine events.
    observer: Observer = NULL_OBSERVER

    def set_observer(self, observer: Observer) -> None:
        """Install observability hooks; subclasses that own further
        instrumented components (chunker, relegation policy) override
        this to propagate the observer to them."""
        self.observer = observer

    @abstractmethod
    def enqueue(self, request: Request, now: float) -> None:
        """Admit a newly arrived request to the prefill queue."""

    @abstractmethod
    def plan_prefill(self, view: EngineView) -> list[PrefillAssignment]:
        """Choose the prefill chunks for the next iteration.

        Implementations must only assign tokens from requests they
        previously received via :meth:`enqueue` that still have prompt
        tokens remaining, and must respect KV-cache availability via
        ``view.kv_cache.can_grow``.
        """

    @abstractmethod
    def has_pending_prefill(self) -> bool:
        """Whether any enqueued request still has prompt tokens left."""

    def on_prefill_complete(self, request: Request, now: float) -> None:
        """Notification that a request's prompt finished processing."""

    def remove(self, request: Request, now: float) -> None:
        """Withdraw a request from the prefill queue entirely.

        Used by the fault layer when a request is cancelled or its
        replica crashes: unlike :meth:`on_prefill_complete` (which may
        leave lazily-invalidated bookkeeping behind for a request that
        is *progressing*), after ``remove`` the scheduler must never
        assign tokens to the request again.  The default forwards to
        :meth:`on_prefill_complete`, which is sufficient for
        schedulers with strict queue bookkeeping.
        """
        self.on_prefill_complete(request, now)

    def on_request_complete(self, request: Request, now: float) -> None:
        """Notification that a request produced its final token."""

    def pending_requests(self) -> list[Request]:
        """Requests currently waiting in the prefill queue (any order)."""
        return []

    def queue_length(self) -> int:
        """Number of requests waiting in the prefill queue.

        Subclasses with internal membership tracking override this with
        an O(1) count; the default pays for the list copy.
        """
        return len(self.pending_requests())
