"""Batch plan and iteration-record types shared by engine and schedulers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.request import Request
from repro.perfmodel.execution import BatchShape, PrefillChunk


@dataclass(frozen=True)
class PrefillAssignment:
    """A scheduler's decision to run ``tokens`` of one request's prompt."""

    request: Request
    tokens: int

    def __post_init__(self) -> None:
        if self.tokens < 1:
            raise ValueError("a prefill assignment needs >= 1 token")
        if self.tokens > self.request.remaining_prefill:
            raise ValueError(
                f"request {self.request.request_id}: assignment of "
                f"{self.tokens} exceeds remaining prefill "
                f"{self.request.remaining_prefill}"
            )


@dataclass
class BatchPlan:
    """One iteration's work: all running decodes plus prefill chunks."""

    prefill_assignments: list[PrefillAssignment] = field(default_factory=list)
    decode_requests: list[Request] = field(default_factory=list)

    @property
    def prefill_tokens(self) -> int:
        return sum(a.tokens for a in self.prefill_assignments)

    @property
    def is_empty(self) -> bool:
        return not self.prefill_assignments and not self.decode_requests

    def to_shape(
        self, decode_context_total: int | None = None
    ) -> BatchShape:
        """Project the plan onto the execution model's batch shape.

        Args:
            decode_context_total: Precomputed sum of the decode
                requests' context lengths (the engine tracks this
                incrementally); ``None`` recomputes it from scratch.
        """
        if decode_context_total is None:
            decode_context_total = sum(
                r.context_length for r in self.decode_requests
            )
        return BatchShape(
            prefill_chunks=[
                PrefillChunk(
                    tokens=a.tokens,
                    context_before=a.request.prefill_done,
                )
                for a in self.prefill_assignments
            ],
            num_decodes=len(self.decode_requests),
            decode_context_total=decode_context_total,
        )


@dataclass(frozen=True)
class IterationRecord:
    """Telemetry for one executed iteration (Figure 9's raw data)."""

    start_time: float
    exec_time: float
    prefill_tokens: int
    num_decodes: int
    decode_context_total: int
    kv_utilization: float
