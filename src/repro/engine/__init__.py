"""Single-replica serving engine.

Implements the iteration-level, chunked-prefill execution loop of a
Sarathi/vLLM replica on top of the discrete-event simulator: requests
arrive, prefill in scheduler-chosen chunks, join the running decode
batch when their prompt completes, and emit one token per iteration
until done — all gated by a paged KV-cache manager.
"""

from repro.engine.kvcache import KVCacheManager
from repro.engine.batch import BatchPlan, IterationRecord, PrefillAssignment
from repro.engine.interface import EngineView, Scheduler
from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.engine.arrays import ArrayKVLedger, ArrayReplicaEngine

__all__ = [
    "ArrayKVLedger",
    "ArrayReplicaEngine",
    "KVCacheManager",
    "BatchPlan",
    "IterationRecord",
    "PrefillAssignment",
    "EngineView",
    "Scheduler",
    "ReplicaConfig",
    "ReplicaEngine",
]
