"""Struct-of-arrays engine core (ROADMAP item 1).

:class:`ArrayReplicaEngine` re-implements the hot paths of
:class:`~repro.engine.replica.ReplicaEngine` over flat NumPy arrays:
the decode batch lives in a :class:`_RowStore` (one column per request
field the iteration loop touches), KV accounting lives in
:class:`ArrayKVLedger` (block math hoisted out of the per-request
``grow``/``blocks_needed`` recomputation), and every per-token decode
advance — timestamps, TBT gap/deadline misses, context growth,
completion detection — is a handful of vectorized kernels instead of
per-object method dispatch.

This is the ``forest.fused`` playbook applied to the engine: the
object-based ``engine.replica``/``engine.batch``/``engine.kvcache``
stack remains the bit-identical reference path.  Equivalence is
engineered, not hoped for:

* every float expression mirrors the reference's association order
  (e.g. the Eq. 2 token deadline ``(arrival + ttft) + k * tbt`` is
  precomputed as a scalar ``ttft_base`` so the vector form reproduces
  the exact IEEE operation sequence);
* eviction-victim selection uses ``argmax`` (first maximum), matching
  ``max()``'s tie-breaking over the queue order, which row shifts
  preserve;
* the bulk decode KV growth only takes the vector path when the whole
  batch provably fits (total blocks needed <= free), where it is
  state-identical to the reference's sequential loop; the pressure
  path replays the reference algorithm exactly, including its
  eviction ordering.

Two operating modes are picked automatically:

* **fast** (observer is the no-op ``NULL_OBSERVER``): scheduler
  planning for :class:`~repro.schedulers.qoserve.QoServeScheduler`
  runs through vectorized kernels (latency budget, memoized forest
  lookups) that bypass the view/plan object construction entirely;
  other schedulers fall back to the ``Scheduler`` protocol with a
  lazy decode-request list.
* **observed** (tracing/metrics attached): the engine builds the real
  ``EngineView``/``BatchPlan`` and emits every observer hook in the
  reference order, so traces are byte-identical — while the array
  machinery (ledger, rows) still carries the state.

The object path is still required for: PD-disaggregation decode pools
and the autoscaler's transient replicas (not threaded through the
engine switch), and any scheduler whose planning mutates per-request
state mid-view (none in-tree).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.request import Request
from repro.engine.batch import BatchPlan, IterationRecord, PrefillAssignment
from repro.engine.interface import EngineView, Scheduler
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.perfmodel.execution import BatchShape, ExecutionModel, PrefillChunk
from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.simcore.simulator import Simulator

#: Below this batch size the per-row scalar loop beats NumPy kernel
#: launch overhead; both paths execute the identical float operations.
_SMALL_BATCH = 32

#: Ledger marker: the holding's (tokens, blocks) live in the row store.
_ROW_BACKED = None

_ABSENT = object()


class _RowStore:
    """Struct-of-arrays decode batch: one column per hot field.

    Row order *is* the decode-queue order — removals shift rows down
    (never swap), because the order drives per-token advance order,
    completion order (and hence the decode-length estimator's
    observation stream) and eviction-victim tie-breaking.
    """

    _ARRAY_NAMES = (
        "ids", "decoded", "target", "ctx", "kv_tokens", "kv_blocks",
        "first", "last", "max_tbt", "gap_miss", "ddl_miss", "inter",
        "ttft_base", "tbt", "ni_ddl", "epoch",
    )

    def __init__(self, capacity: int = 64) -> None:
        self.n = 0
        #: Bumped on every membership change (add/remove/clear); lets
        #: the advance kernels prove the batch stamped at iteration
        #: start is still exactly rows [0, n) and skip the per-row
        #: epoch filter.
        self.version = 0
        #: Row-aligned request objects (synced lazily in fast mode).
        self.req: list[Request] = []
        #: request_id -> row index.
        self.index: dict[int, int] = {}
        self.ids = np.zeros(capacity, np.int64)
        self.decoded = np.zeros(capacity, np.int64)
        self.target = np.zeros(capacity, np.int64)  # decode_tokens
        self.ctx = np.zeros(capacity, np.int64)  # context_length mirror
        self.kv_tokens = np.zeros(capacity, np.int64)
        self.kv_blocks = np.zeros(capacity, np.int64)
        self.first = np.full(capacity, np.nan)  # first_token_time
        self.last = np.full(capacity, np.nan)  # last_token_time
        self.max_tbt = np.zeros(capacity)
        self.gap_miss = np.zeros(capacity, np.int64)
        self.ddl_miss = np.zeros(capacity, np.int64)
        self.inter = np.zeros(capacity, bool)
        #: arrival + ttft_slo, precomputed scalar so the vectorized
        #: Eq. 2 deadline reproduces the reference's float association.
        self.ttft_base = np.full(capacity, np.nan)
        self.tbt = np.zeros(capacity)
        #: total_deadline (== arrival + ttlt for non-interactive rows).
        self.ni_ddl = np.zeros(capacity)
        #: Batch-membership stamp: rows advance at iteration end only
        #: if their epoch matches the iteration that scheduled them
        #: (mid-flight handoff admissions must not emit a token).
        self.epoch = np.full(capacity, -1, np.int64)

    def _grow(self) -> None:
        for name in self._ARRAY_NAMES:
            old = getattr(self, name)
            new = np.empty(len(old) * 2, old.dtype)
            new[: self.n] = old[: self.n]
            setattr(self, name, new)

    def add(self, request: Request, kv_tokens: int, kv_blocks: int) -> int:
        i = self.n
        if i == len(self.ids):
            self._grow()
        self.n = i + 1
        self.version += 1
        self.req.append(request)
        self.index[request.request_id] = i
        self.ids[i] = request.request_id
        self.decoded[i] = request.decoded
        self.target[i] = request.decode_tokens
        self.ctx[i] = request.context_length
        self.kv_tokens[i] = kv_tokens
        self.kv_blocks[i] = kv_blocks
        ft = request.first_token_time
        self.first[i] = np.nan if ft is None else ft
        lt = request.last_token_time
        self.last[i] = np.nan if lt is None else lt
        self.max_tbt[i] = request.max_tbt
        self.gap_miss[i] = request.tbt_gap_misses
        self.ddl_miss[i] = request.tbt_deadline_misses
        qos = request.qos
        interactive = qos.is_interactive
        self.inter[i] = interactive
        if interactive:
            self.ttft_base[i] = request.arrival_time + qos.ttft_slo
            self.tbt[i] = qos.tbt_slo
        else:
            self.ttft_base[i] = np.nan
            self.tbt[i] = 0.0
        self.ni_ddl[i] = request.total_deadline
        self.epoch[i] = -1
        return i

    def remove_at(self, i: int) -> None:
        self.version += 1
        n = self.n - 1
        del self.index[self.req[i].request_id]
        del self.req[i]
        if i < n:
            for name in self._ARRAY_NAMES:
                arr = getattr(self, name)
                arr[i:n] = arr[i + 1 : n + 1]
            index = self.index
            req = self.req
            for j in range(i, n):
                index[req[j].request_id] = j
        self.n = n

    def clear(self) -> None:
        self.version += 1
        self.n = 0
        self.req.clear()
        self.index.clear()

    def sync_row(self, i: int) -> None:
        """Write a row's array state back to its request object."""
        r = self.req[i]
        r.decoded = int(self.decoded[i])
        f = self.first[i]
        r.first_token_time = None if f != f else float(f)
        last = self.last[i]
        r.last_token_time = None if last != last else float(last)
        r.max_tbt = float(self.max_tbt[i])
        r.tbt_gap_misses = int(self.gap_miss[i])
        r.tbt_deadline_misses = int(self.ddl_miss[i])

    def load_row(self, i: int, request: Request) -> None:
        """Refresh a row's columns from its (authoritative) object."""
        self.decoded[i] = request.decoded
        ft = request.first_token_time
        self.first[i] = np.nan if ft is None else ft
        lt = request.last_token_time
        self.last[i] = np.nan if lt is None else lt
        self.max_tbt[i] = request.max_tbt
        self.gap_miss[i] = request.tbt_gap_misses
        self.ddl_miss[i] = request.tbt_deadline_misses


class ArrayKVLedger:
    """Block-granular KV accounting over the SoA row store.

    Implements the exact :class:`~repro.engine.kvcache.KVCacheManager`
    interface (same rounding, same error messages, same
    insertion-order ``holders()``), with two structural changes:

    * holdings of decode-batch members are *row-backed* — their
      (tokens, blocks) live in the row store's columns, so the
      per-iteration +1-token growth of the whole batch is one
      vectorized pass (:meth:`bulk_decode_grow`) instead of a
      ceil-division per request;
    * the block-math invariant ``blocks == ceil(tokens / block_size)``
      (maintained by ``grow`` adding exactly ``blocks_needed`` and
      ``release`` being all-or-nothing) reduces the decode +1-token
      need to the boundary test ``tokens % block_size == 0``.
    """

    def __init__(
        self, capacity_tokens: int, block_size: int, rows: _RowStore
    ) -> None:
        if capacity_tokens < 1:
            raise ValueError("capacity_tokens must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = int(block_size)
        self.capacity_blocks = int(capacity_tokens) // self.block_size
        if self.capacity_blocks < 1:
            raise ValueError("capacity smaller than one block")
        self._used_blocks = 0
        self._used_tokens = 0
        self.high_water_blocks = 0
        # request_id -> (tokens, blocks), or _ROW_BACKED for decode
        # rows (values live in the row store).  Insertion order
        # mirrors KVCacheManager._holdings exactly: attach_row is a
        # value reassignment, release+regrow re-inserts at the end.
        self._holdings: dict[int, tuple[int, int] | None] = {}
        self._rows = rows
        self._reclaimer = None

    # --- KVCacheManager interface ---------------------------------------

    @property
    def used_blocks(self) -> int:
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        return self.capacity_blocks - self._used_blocks

    @property
    def capacity_tokens(self) -> int:
        return self.capacity_blocks * self.block_size

    @property
    def used_tokens(self) -> int:
        # Running counter (every mutator maintains it), so the
        # per-iteration telemetry read is O(1) instead of a sweep over
        # holdings and rows.
        return self._used_tokens

    @property
    def reclaimable_blocks(self) -> int:
        """Blocks the registered reclaimer could free on demand (0
        with none; see :attr:`KVCacheManager.reclaimable_blocks`)."""
        if self._reclaimer is None:
            return 0
        return self._reclaimer.reclaimable_blocks()

    def set_reclaimer(self, reclaimer) -> None:
        """Install a prefix cache to raid when allocation would fail;
        ``None`` keeps every path byte-identical (see
        :meth:`KVCacheManager.set_reclaimer`)."""
        self._reclaimer = reclaimer

    @property
    def utilization(self) -> float:
        return self._used_blocks / self.capacity_blocks

    @property
    def high_water_utilization(self) -> float:
        return self.high_water_blocks / self.capacity_blocks

    def _entry(self, request_id: int) -> tuple[int, int]:
        entry = self._holdings.get(request_id, _ABSENT)
        if entry is _ABSENT:
            return (0, 0)
        if entry is _ROW_BACKED:
            rows = self._rows
            i = rows.index[request_id]
            return (int(rows.kv_tokens[i]), int(rows.kv_blocks[i]))
        return entry

    def holding(self, request_id: int) -> int:
        return self._entry(request_id)[0]

    def holders(self) -> list[int]:
        return list(self._holdings)

    def blocks_needed(self, request_id: int, extra_tokens: int) -> int:
        tokens, blocks = self._entry(request_id)
        new_tokens = tokens + extra_tokens
        new_blocks = -(-new_tokens // self.block_size)  # ceil div
        return max(0, new_blocks - blocks)

    def can_grow(self, request_id: int, extra_tokens: int) -> bool:
        need = self.blocks_needed(request_id, extra_tokens)
        if self._reclaimer is not None:
            return need <= self.free_blocks + self._reclaimer.reclaimable_blocks()
        return need <= self.free_blocks

    def grow(self, request_id: int, extra_tokens: int) -> None:
        if extra_tokens < 0:
            raise ValueError("extra_tokens must be non-negative")
        need = self.blocks_needed(request_id, extra_tokens)
        if need > self.free_blocks and self._reclaimer is not None:
            self._reclaimer.reclaim(need - self.free_blocks)
        if need > self.free_blocks:
            raise MemoryError(
                f"KV cache exhausted: need {need} blocks, "
                f"{self.free_blocks} free"
            )
        entry = self._holdings.get(request_id, _ABSENT)
        if entry is _ROW_BACKED:
            rows = self._rows
            i = rows.index[request_id]
            rows.kv_tokens[i] += extra_tokens
            rows.kv_blocks[i] += need
        else:
            tokens, blocks = (0, 0) if entry is _ABSENT else entry
            self._holdings[request_id] = (
                tokens + extra_tokens,
                blocks + need,
            )
        self._used_blocks += need
        self._used_tokens += extra_tokens
        if self._used_blocks > self.high_water_blocks:
            self.high_water_blocks = self._used_blocks

    def shrink(self, request_id: int, tokens: int, blocks: int) -> None:
        """Give back part of a holding (prefix dedupe / ownership moves).

        Only dict-backed holdings shrink: the prefix cache peels whole
        leading prompt blocks at prefill finish, before the holding is
        attached to a decode row.
        """
        entry = self._holdings.get(request_id, _ABSENT)
        if entry is _ABSENT or entry is _ROW_BACKED:
            raise ValueError(
                f"shrink requires a dict-backed holding for request "
                f"{request_id}"
            )
        held_tokens, held_blocks = entry
        if tokens > held_tokens or blocks > held_blocks:
            raise ValueError(
                f"shrink exceeds holding for request {request_id}: "
                f"({tokens} tok, {blocks} blk) from "
                f"({held_tokens} tok, {held_blocks} blk)"
            )
        remaining = (held_tokens - tokens, held_blocks - blocks)
        if remaining == (0, 0):
            self._holdings.pop(request_id)
        else:
            self._holdings[request_id] = remaining
        self._used_blocks -= blocks
        self._used_tokens -= tokens

    def release(self, request_id: int) -> int:
        entry = self._holdings.pop(request_id, _ABSENT)
        if entry is _ABSENT:
            return 0
        if entry is _ROW_BACKED:
            rows = self._rows
            i = rows.index[request_id]
            tokens = int(rows.kv_tokens[i])
            blocks = int(rows.kv_blocks[i])
        else:
            tokens, blocks = entry
        self._used_blocks -= blocks
        self._used_tokens -= tokens
        return blocks

    # --- SoA extensions ---------------------------------------------------

    def attach_row(self, request_id: int) -> tuple[int, int]:
        """Convert a dict holding to row-backed; returns its values.

        A value reassignment (not pop/re-insert) so ``holders()``
        keeps the reference insertion order.  A missing holding
        attaches as (0, 0): prefix dedupe can empty a holding entirely
        (prompt a multiple of the block size, fully shared), after
        which decode growth re-populates it through the row.
        """
        entry = self._holdings.get(request_id, _ABSENT)
        if entry is _ABSENT:
            self._holdings[request_id] = _ROW_BACKED
            return 0, 0
        tokens, blocks = entry
        self._holdings[request_id] = _ROW_BACKED
        return tokens, blocks

    def bulk_decode_grow(self, n: int) -> bool:
        """Grow every decode row by one token in one vectorized pass.

        Only commits when the whole batch fits (total blocks needed <=
        free), where the result is state-identical to the reference's
        sequential per-request loop; returns False (untouched state)
        otherwise so the caller can replay the exact pressure path.
        """
        rows = self._rows
        bs = self.block_size
        if n < 16:
            # Scalar sweep: below ~16 rows the item reads beat NumPy
            # kernel launches.  Same integer math as the vector path.
            kv_tokens = rows.kv_tokens
            total = 0
            for i in range(n):
                if kv_tokens.item(i) % bs == 0:
                    total += 1
            if total > self.free_blocks:
                return False
            kv_blocks = rows.kv_blocks
            for i in range(n):
                t = kv_tokens.item(i)
                kv_tokens[i] = t + 1
                if t % bs == 0:
                    kv_blocks[i] += 1
            self._used_tokens += n
            if total:
                self._used_blocks += total
                if self._used_blocks > self.high_water_blocks:
                    self.high_water_blocks = self._used_blocks
            return True
        kv_tokens = rows.kv_tokens[:n]
        # blocks == ceil(tokens / block_size) invariant: a +1-token
        # grow needs a new block iff the holding is block-aligned.
        boundary = kv_tokens % bs == 0
        total = int(np.count_nonzero(boundary))
        if total > self.free_blocks:
            return False
        kv_tokens += 1
        self._used_tokens += n
        if total:
            rows.kv_blocks[:n][boundary] += 1
            self._used_blocks += total
            if self._used_blocks > self.high_water_blocks:
                self.high_water_blocks = self._used_blocks
        return True

    def stretch_need(self, n: int, k: int) -> int:
        """Blocks needed to grow every decode row by ``k`` tokens.

        Equals the total over the reference's ``k`` sequential
        +1-token grows of the whole batch (ceil-difference per row),
        and is monotone in ``k``: ``stretch_need(n, k) <= free``
        therefore proves every intermediate per-iteration grow of a
        ``k``-iteration decode stretch fits without eviction.
        """
        rows = self._rows
        bs = self.block_size
        t = rows.kv_tokens[:n]
        return int(((t + (k + bs - 1)) // bs - (t + (bs - 1)) // bs).sum())

    def stretch_grow(self, n: int, k: int) -> None:
        """Commit a ``k``-token growth of every decode row.

        Caller must have proven it fits via :meth:`stretch_need`.
        Because a stretch window has no releases, ``used_blocks`` is
        monotone across its iterations, so taking the high-water mark
        once at the end matches the reference's per-iteration updates.
        """
        rows = self._rows
        bs = self.block_size
        t = rows.kv_tokens[:n]
        added = (t + (k + bs - 1)) // bs - (t + (bs - 1)) // bs
        need = int(added.sum())
        t += k
        rows.kv_blocks[:n] += added
        self._used_blocks += need
        self._used_tokens += n * k
        if self._used_blocks > self.high_water_blocks:
            self.high_water_blocks = self._used_blocks


class _LazyRequestList:
    """Decode-request view that only syncs rows when iterated.

    Schedulers that just need ``len(view.decode_requests)`` (medha's
    fixed-target chunking, the fixed-chunk budget) never pay the
    object-sync cost.
    """

    __slots__ = ("_engine", "_n")

    def __init__(self, engine: "ArrayReplicaEngine", n: int) -> None:
        self._engine = engine
        self._n = n

    def __len__(self) -> int:
        return self._n

    def _materialize(self) -> list[Request]:
        self._engine._sync_rows()
        return self._engine._rows.req[: self._n]

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, item):
        return self._materialize()[item]


class _FastView:
    """Minimal duck-typed EngineView for the packer's fast path."""

    __slots__ = (
        "now", "decode_requests", "kv_cache", "execution_model",
        "max_decode_slots", "inflight_prefill_ids",
        "decode_context_total",
    )

    def __init__(self, now, decode_requests, kv_cache, execution_model,
                 max_decode_slots, inflight_prefill_ids,
                 decode_context_total):
        self.now = now
        self.decode_requests = decode_requests
        self.kv_cache = kv_cache
        self.execution_model = execution_model
        self.max_decode_slots = max_decode_slots
        self.inflight_prefill_ids = inflight_prefill_ids
        self.decode_context_total = decode_context_total


class ArrayReplicaEngine(ReplicaEngine):
    """Drop-in ReplicaEngine with a struct-of-arrays iteration loop."""

    def __init__(
        self,
        simulator: Simulator,
        execution_model: ExecutionModel,
        scheduler: Scheduler,
        config: ReplicaConfig | None = None,
        replica_id: int = 0,
        prefill_sink: Callable[[Request, float], None] | None = None,
        observer: Observer | None = None,
    ) -> None:
        self._rows = _RowStore()
        self._rows_dirty = False
        super().__init__(
            simulator,
            execution_model,
            scheduler,
            config=config,
            replica_id=replica_id,
            prefill_sink=prefill_sink,
            observer=observer,
        )
        # Replace the object ledger installed by the parent.
        self.kv_cache = ArrayKVLedger(
            capacity_tokens=execution_model.kv_capacity_tokens,
            block_size=self.config.kv_block_size,
            rows=self._rows,
        )
        if self.prefix_cache is not None:
            # Rebind the (still empty) radix tree to the array ledger.
            self._install_prefix_cache()
        self._batch_seq = 0
        #: Row-store version captured when the current iteration's
        #: batch was stamped; if it still matches at finish time, the
        #: batch is provably rows [0, n) and the advance kernels skip
        #: the epoch filter / id lookups.
        self._stamp_version = -1
        #: Fast mode: no tracing attached, so observer hooks (all
        #: no-ops) and the view/plan objects that feed them can be
        #: skipped entirely.
        self._fast = self.observer is NULL_OBSERVER
        from repro.schedulers.qoserve import QoServeScheduler

        self._qoserve_fast = self._fast and isinstance(
            scheduler, QoServeScheduler
        )
        self._forest_predictor = None
        if self._qoserve_fast:
            from repro.core.predictor import ForestBatchPredictor

            predictor = scheduler.predictor
            if (
                isinstance(predictor, ForestBatchPredictor)
                and predictor.memoize
            ):
                self._forest_predictor = predictor

    # --- decode queue as a view over the rows -----------------------------

    @property
    def decode_queue(self) -> list[Request]:
        self._sync_rows()
        return list(self._rows.req)

    @decode_queue.setter
    def decode_queue(self, value) -> None:
        # The parent __init__ assigns an empty list; the row store is
        # the real container, so only the vacuous assignment is legal.
        if value:
            raise TypeError(
                "ArrayReplicaEngine's decode queue is array-backed; "
                "mutate it through the engine API"
            )

    @property
    def running_requests(self) -> int:
        return self._rows.n + len(self._inflight_prefills)

    def has_work(self) -> bool:
        return self._rows.n > 0 or self.scheduler.has_pending_prefill()

    def _sync_rows(self) -> None:
        if not self._rows_dirty:
            return
        self._rows_dirty = False
        rows = self._rows
        for i in range(rows.n):
            rows.sync_row(i)

    def _add_decode_row(self, request: Request) -> None:
        tokens, blocks = self.kv_cache.attach_row(request.request_id)
        self._rows.add(request, tokens, blocks)

    # --- iteration loop ---------------------------------------------------

    def _start_iteration(self) -> None:
        if self._fast:
            self._start_iteration_fast()
        else:
            self._start_iteration_observed()

    def _start_iteration_fast(self) -> None:
        now = self.simulator.now
        if (
            self._rows.n > 0
            and self.token_hook is None
            and not self.config.record_iterations
            and not self._inflight_prefills
            and not self.scheduler.has_pending_prefill()
        ):
            now = self._decode_stretch(now)
        self._reserve_decode_growth()
        rows = self._rows
        n_live = rows.n
        decode_context_total = self._decode_context_total
        if self._qoserve_fast:
            assignments = self._plan_qoserve_fast(now, n_live)
        else:
            view = EngineView(
                now=now,
                decode_requests=_LazyRequestList(self, n_live),
                kv_cache=self.kv_cache,
                execution_model=self.execution_model,
                max_decode_slots=self.config.max_decode_slots,
                inflight_prefill_ids=frozenset(self._inflight_prefills),
                decode_context_total=decode_context_total,
            )
            assignments = self.scheduler.plan_prefill(view)
        if not assignments and n_live == 0:
            if (
                self.scheduler.has_pending_prefill()
                and self._recover_prefill_stall()
            ):
                self._start_iteration()
                return
            return
        prefill_tokens = 0
        if assignments:
            chunks = []
            for assignment in assignments:
                request = assignment.request
                request_id = request.request_id
                tokens = assignment.tokens
                chunks.append((tokens, request.prefill_done))
                self.kv_cache.grow(request_id, tokens)
                self._inflight_prefills.add(request_id)
                if request.scheduled_first_time is None:
                    request.scheduled_first_time = now
                if (
                    request.relegated
                    and request_id not in self._relegation_served_ids
                ):
                    self._relegation_served_ids.add(request_id)
                prefill_tokens += tokens
        else:
            chunks = ()
        exec_time = self.execution_model.batch_time_flat(
            chunks, n_live, decode_context_total
        )
        if self.slowdown_factor != 1.0:
            exec_time *= self.slowdown_factor
        self._busy = True
        self.busy_time += exec_time
        if prefill_tokens > 0:
            self.chunk_tokens_hist[prefill_tokens] += 1
        seq = self._batch_seq = self._batch_seq + 1
        rows.epoch[:n_live] = seq
        self._stamp_version = rows.version
        self._inflight_event = self.simulator.schedule_after(
            exec_time,
            lambda: self._finish_iteration_fast(
                assignments, n_live, decode_context_total,
                prefill_tokens, exec_time, now, seq,
            ),
        )

    def _finish_iteration_fast(
        self,
        assignments: list[PrefillAssignment],
        num_decodes: int,
        decode_context_total: int,
        prefill_tokens: int,
        exec_time: float,
        start_time: float,
        seq: int,
    ) -> None:
        now = self.simulator.now
        self._inflight_event = None
        self.iterations_run += 1
        if self.config.record_iterations:
            self.iteration_records.append(
                IterationRecord(
                    start_time=start_time,
                    exec_time=exec_time,
                    prefill_tokens=prefill_tokens,
                    num_decodes=num_decodes,
                    decode_context_total=decode_context_total,
                    kv_utilization=self.kv_cache.utilization,
                )
            )
        if self._rows.n:
            if (
                self.token_hook is not None
                or self._rows.n < _SMALL_BATCH
            ):
                self._advance_scalar(now, seq)
            else:
                self._advance_vector(now, seq)
        for assignment in assignments:
            request = assignment.request
            if request.cancelled:
                continue
            request.prefill_done += assignment.tokens
            if request.remaining_prefill == 0:
                self._on_prefill_finished(request, now)
        self._busy = False
        self._maybe_start()

    def _decode_stretch(self, now: float) -> float:
        """Collapse a run of pure-decode iterations into one advance.

        Preconditions (checked by the caller): fast mode, no token
        hook, no iteration recording, no pending or in-flight prefill
        work.  Finds the longest run of ``k >= 2`` future iterations
        that provably (a) complete no request, (b) fit their KV
        growth without eviction, and (c) finish strictly before the
        next simulator event and within the driver's run bound — then
        applies the ``k`` per-token advances as closed-form vector
        updates and fast-forwards the clock to the last finish time.
        Falls back to the per-iteration path (returning ``now``
        unchanged) whenever any bound trims the run below 2.

        Bit-exactness: finish times are the left-associated cumulative
        sum ``((now + e_1) + e_2) + ...`` (``np.add.accumulate``),
        matching the simulator's sequential clock; per-iteration gaps
        are differences of those cumulative times (level-synchronous,
        so shared by every row); deadline misses evaluate the exact
        Eq. 2 expression ``ttft_base + (decoded + j) * tbt`` per
        token.  The one accepted divergence from the reference is
        ``Simulator.events_processed``/``max_events`` accounting: the
        ``k`` collapsed finish events are never enqueued (the safety
        valve sees fewer events; no other consumer exists).
        """
        rows = self._rows
        n = rows.n
        # (a) the iteration emitting a request's final token must run
        # on the normal path (completion side effects).
        k_cap = int((rows.target[:n] - rows.decoded[:n]).min()) - 1
        if k_cap < 2:
            return now
        # (b) largest run whose cumulative block demand fits; the
        # demand is monotone in k, so bisect on it.
        ledger = self.kv_cache
        free = ledger.free_blocks
        if ledger.stretch_need(n, k_cap) > free:
            lo, hi = 0, k_cap  # invariant: need(lo) <= free < need(hi)
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if ledger.stretch_need(n, mid) <= free:
                    lo = mid
                else:
                    hi = mid
            k_cap = lo
            if k_cap < 2:
                return now
        # (c) cumulative finish times of the candidate run; iteration
        # j (0-based) sees the decode context grown j times.
        exec_times = self.execution_model.decode_batch_times_flat(
            n,
            self._decode_context_total
            + np.arange(k_cap, dtype=np.int64) * n,
        )
        if self.slowdown_factor != 1.0:
            exec_times = exec_times * self.slowdown_factor
        c = np.add.accumulate(np.concatenate(((now,), exec_times)))
        k = k_cap
        next_event = self.simulator.next_event_time()
        if next_event is not None:
            # Strictly before: at equal timestamps the reference fires
            # the pending event (lower heap seq) before our finish.
            k = min(k, int(np.searchsorted(c[1:], next_event, side="left")))
        bound = self.simulator.run_bound
        if bound is not None:
            k = min(k, int(np.searchsorted(c[1:], bound, side="right")))
        if k < 2:
            return now

        times = c[1 : k + 1]
        self._rows_dirty = True
        self.iterations_run += k
        self.busy_time = float(
            np.add.accumulate(
                np.concatenate(((self.busy_time,), exec_times[:k]))
            )[-1]
        )
        d0 = rows.decoded[:n].copy()
        rows.decoded[:n] = d0 + k
        t0 = times[0]
        fresh = d0 == 0
        rows.first[:n][fresh] = t0
        # Gaps: every row shares the k-1 in-window gaps (level-
        # synchronous batch); each row adds one private gap across the
        # window boundary (its previous last-token time), except fresh
        # rows whose first token opens the window.
        shared = times[1:] - times[:-1]
        shared_max = float(shared.max())
        cross = np.where(fresh, -np.inf, t0 - rows.last[:n])
        cand = np.maximum(shared_max, cross)
        np.maximum(rows.max_tbt[:n], cand, out=rows.max_tbt[:n])
        inter = rows.inter[:n]
        inter_rows = np.flatnonzero(inter)
        if inter_rows.size:
            tbt = rows.tbt[:n]
            # Strict gap > tbt count via sorted shared gaps.
            sg = np.sort(shared)
            over = (k - 1) - np.searchsorted(sg, tbt, side="right")
            over = over + (cross > tbt)
            rows.gap_miss[inter_rows] += over[inter_rows]
            # Eq. 2 deadline misses: token j (0-based) of the stretch
            # lands at times[j] against deadline ttft_base +
            # (decoded + j) * tbt — the reference's exact expression.
            base = rows.ttft_base[inter_rows][:, None]
            steps = d0[inter_rows][:, None] + np.arange(k)[None, :]
            deadlines = base + steps * tbt[inter_rows][:, None]
            rows.ddl_miss[inter_rows] += (
                times[None, :] > deadlines
            ).sum(axis=1)
        rows.last[:n] = times[-1]
        rows.ctx[:n] += k
        ledger.stretch_grow(n, k)
        self._decode_context_total += n * k
        end = float(c[k])
        self.simulator.fast_forward(end)
        return end

    def _start_iteration_observed(self) -> None:
        """Reference-ordered iteration start with full observability.

        Mirrors ``ReplicaEngine._start_iteration`` line for line
        (events, spans, scheduler view) while the rows/ledger carry
        the state, so traced runs stay byte-identical.
        """
        now = self.simulator.now
        self._reserve_decode_growth()
        self._sync_rows()
        rows = self._rows
        decode_snapshot = list(rows.req)
        decode_context_total = self._decode_context_total
        view = EngineView(
            now=now,
            decode_requests=decode_snapshot,
            kv_cache=self.kv_cache,
            execution_model=self.execution_model,
            max_decode_slots=self.config.max_decode_slots,
            inflight_prefill_ids=frozenset(self._inflight_prefills),
            decode_context_total=decode_context_total,
        )
        assignments = self.scheduler.plan_prefill(view)
        plan = BatchPlan(
            prefill_assignments=assignments,
            decode_requests=decode_snapshot,
        )
        if plan.is_empty:
            if (
                rows.n == 0
                and self.scheduler.has_pending_prefill()
                and self._recover_prefill_stall()
            ):
                self._start_iteration()
                return
            return
        for assignment in assignments:
            request = assignment.request
            self.kv_cache.grow(request.request_id, assignment.tokens)
            self._inflight_prefills.add(request.request_id)
            if request.scheduled_first_time is None:
                request.scheduled_first_time = now
                self.observer.on_span_end(
                    "queue", request, now, self.replica_id
                )
                self.observer.on_span_start(
                    "prefill", request, now, self.replica_id
                )
            if (
                request.relegated
                and request.request_id not in self._relegation_served_ids
            ):
                self._relegation_served_ids.add(request.request_id)
                self.observer.on_relegation_served(
                    self.replica_id, request, now, assignment.tokens
                )
        shape = plan.to_shape(decode_context_total)
        exec_time = self.execution_model.batch_time(shape)
        if self.slowdown_factor != 1.0:
            exec_time *= self.slowdown_factor
        self._busy = True
        self.busy_time += exec_time
        if plan.prefill_tokens > 0:
            self.chunk_tokens_hist[plan.prefill_tokens] += 1
        self.observer.on_iteration_start(
            self.replica_id, now, exec_time, plan, self.iterations_run,
            queue_depth=self.scheduler.queue_length(),
        )
        seq = self._batch_seq = self._batch_seq + 1
        rows.epoch[: rows.n] = seq
        self._stamp_version = rows.version
        self._inflight_event = self.simulator.schedule_after(
            exec_time,
            lambda: self._finish_iteration_observed(
                plan, shape, exec_time, now, seq
            ),
        )

    def _finish_iteration_observed(
        self,
        plan: BatchPlan,
        shape: BatchShape,
        exec_time: float,
        start_time: float,
        seq: int,
    ) -> None:
        now = self.simulator.now
        self._inflight_event = None
        self.iterations_run += 1
        if self.config.record_iterations:
            self.iteration_records.append(
                IterationRecord(
                    start_time=start_time,
                    exec_time=exec_time,
                    prefill_tokens=shape.prefill_tokens,
                    num_decodes=shape.num_decodes,
                    decode_context_total=shape.decode_context_total,
                    kv_utilization=self.kv_cache.utilization,
                )
            )
        self._advance_scalar(now, seq)
        for assignment in plan.prefill_assignments:
            request = assignment.request
            if request.cancelled:
                continue
            request.prefill_done += assignment.tokens
            if request.remaining_prefill == 0:
                self._on_prefill_finished(request, now)
        self.observer.on_iteration_end(
            self.replica_id, now, start_time, exec_time, plan,
            self.kv_cache,
        )
        self._busy = False
        self._maybe_start()

    # --- decode advance kernels -------------------------------------------

    def _advance_scalar(self, now: float, seq: int) -> None:
        """Per-row advance mirroring ``Request.record_output_token``.

        Used when a token hook needs the reference's interleaved
        hook/completion ordering, in observed mode, and for small
        batches where kernel launch overhead loses to the loop.
        """
        rows = self._rows
        if (
            rows.n
            and self.token_hook is None
            and rows.version == self._stamp_version
        ):
            # Membership untouched since the batch was stamped: it is
            # exactly rows [0, n), so skip the epoch scan and the
            # per-request id lookups.
            self._advance_scalar_all(now)
            return
        epoch = rows.epoch
        batch = [
            rows.req[i] for i in range(rows.n) if epoch[i] == seq
        ]
        if not batch:
            return
        self._rows_dirty = True
        hook = self.token_hook
        index = rows.index
        decoded = rows.decoded
        first = rows.first
        last = rows.last
        max_tbt = rows.max_tbt
        gap_miss = rows.gap_miss
        ddl_miss = rows.ddl_miss
        inter = rows.inter
        ttft_base = rows.ttft_base
        tbt = rows.tbt
        ctx = rows.ctx
        target = rows.target
        for request in batch:
            i = index.get(request.request_id)
            if i is None:
                continue  # evicted/cancelled while in flight
            d0 = int(decoded[i])
            d1 = d0 + 1
            decoded[i] = d1
            if d0 == 0:
                first[i] = now
            else:
                gap = now - float(last[i])
                if gap > float(max_tbt[i]):
                    max_tbt[i] = gap
                if inter[i] and gap > float(tbt[i]):
                    gap_miss[i] += 1
            if inter[i] and now > float(ttft_base[i]) + d0 * float(tbt[i]):
                ddl_miss[i] += 1
            last[i] = now
            finished = d1 >= int(target[i])
            self._decode_context_total += 1
            ctx[i] += 1
            if hook is not None:
                rows.sync_row(i)
                if finished:
                    request.completion_time = now
                hook(request, now)
            if finished:
                if hook is None:
                    rows.sync_row(i)
                    request.completion_time = now
                self._complete(request, now)

    def _advance_scalar_all(self, now: float) -> None:
        """Scalar advance when the stamped batch is exactly rows [0, n).

        Same float operations as :meth:`_advance_scalar`, minus the
        epoch scan, the id lookups and the NumPy scalar boxing.
        Completions are applied after the sweep (like the vector
        kernel): their side effects touch no state the remaining
        advances read, so the interleaving is equivalent.
        """
        rows = self._rows
        n = rows.n
        self._rows_dirty = True
        decoded = rows.decoded
        first = rows.first
        last = rows.last
        max_tbt = rows.max_tbt
        gap_miss = rows.gap_miss
        ddl_miss = rows.ddl_miss
        inter = rows.inter
        ttft_base = rows.ttft_base
        tbt = rows.tbt
        ctx = rows.ctx
        target = rows.target
        finished_rows = None
        for i in range(n):
            d0 = decoded.item(i)
            decoded[i] = d0 + 1
            it = inter.item(i)
            if d0 == 0:
                first[i] = now
            else:
                gap = now - last.item(i)
                if gap > max_tbt.item(i):
                    max_tbt[i] = gap
                if it and gap > tbt.item(i):
                    gap_miss[i] += 1
            if it and now > ttft_base.item(i) + d0 * tbt.item(i):
                ddl_miss[i] += 1
            last[i] = now
            ctx[i] += 1
            if d0 + 1 >= target.item(i):
                if finished_rows is None:
                    finished_rows = []
                finished_rows.append(i)
        self._decode_context_total += n
        if finished_rows is None:
            return
        finished = []
        for i in finished_rows:
            rows.sync_row(i)
            request = rows.req[i]
            request.completion_time = now
            finished.append(request)
        for request in finished:
            self._complete(request, now)

    def _advance_vector(self, now: float, seq: int) -> None:
        """Level-synchronous decode advance over the whole batch."""
        rows = self._rows
        n = rows.n
        if n and rows.version == self._stamp_version:
            self._advance_vector_all(now)
            return
        idx = np.flatnonzero(rows.epoch[:n] == seq)
        if idx.size == 0:
            return
        self._rows_dirty = True
        d0 = rows.decoded[idx]
        rows.decoded[idx] = d0 + 1
        rows.first[idx[d0 == 0]] = now
        gap_rows = idx[d0 > 0]
        if gap_rows.size:
            gaps = now - rows.last[gap_rows]
            worse = gaps > rows.max_tbt[gap_rows]
            rows.max_tbt[gap_rows[worse]] = gaps[worse]
            missed = rows.inter[gap_rows] & (gaps > rows.tbt[gap_rows])
            rows.gap_miss[gap_rows[missed]] += 1
        deadline = rows.ttft_base[idx] + d0 * rows.tbt[idx]
        late = rows.inter[idx] & (now > deadline)
        rows.ddl_miss[idx[late]] += 1
        rows.last[idx] = now
        rows.ctx[idx] += 1
        self._decode_context_total += int(idx.size)
        done = idx[rows.decoded[idx] >= rows.target[idx]]
        if done.size == 0:
            return
        finished = []
        for i in done:
            i = int(i)
            rows.sync_row(i)
            request = rows.req[i]
            request.completion_time = now
            finished.append(request)
        for request in finished:
            self._complete(request, now)

    def _advance_vector_all(self, now: float) -> None:
        """Slice-based advance when the batch is exactly rows [0, n).

        Identical float operations to :meth:`_advance_vector`, with
        contiguous slices replacing the epoch filter and its fancy
        indexing.
        """
        rows = self._rows
        n = rows.n
        self._rows_dirty = True
        d0 = rows.decoded[:n].copy()
        rows.decoded[:n] = d0 + 1
        fresh = d0 == 0
        rows.first[:n][fresh] = now
        gap_rows = np.flatnonzero(~fresh)
        if gap_rows.size:
            gaps = now - rows.last[gap_rows]
            worse = gaps > rows.max_tbt[gap_rows]
            rows.max_tbt[gap_rows[worse]] = gaps[worse]
            missed = rows.inter[gap_rows] & (gaps > rows.tbt[gap_rows])
            rows.gap_miss[gap_rows[missed]] += 1
        deadline = rows.ttft_base[:n] + d0 * rows.tbt[:n]
        late = rows.inter[:n] & (now > deadline)
        rows.ddl_miss[:n][late] += 1
        rows.last[:n] = now
        rows.ctx[:n] += 1
        self._decode_context_total += n
        done = np.flatnonzero(rows.decoded[:n] >= rows.target[:n])
        if done.size == 0:
            return
        finished = []
        for i in done:
            i = int(i)
            rows.sync_row(i)
            request = rows.req[i]
            request.completion_time = now
            finished.append(request)
        for request in finished:
            self._complete(request, now)

    # --- KV reservation / eviction ----------------------------------------

    def _reserve_decode_growth(self) -> None:
        rows = self._rows
        n = rows.n
        if n == 0:
            return
        if self.kv_cache.bulk_decode_grow(n):
            return
        # Pressure: replay the reference algorithm exactly, including
        # its snapshot iteration and victim re-selection.
        for request in list(rows.req):
            request_id = request.request_id
            if self.kv_cache.can_grow(request_id, 1):
                self.kv_cache.grow(request_id, 1)
                continue
            victim = self._pick_eviction_victim(exclude=request)
            while victim is not None and not self.kv_cache.can_grow(
                request_id, 1
            ):
                self._evict_decode(victim)
                victim = self._pick_eviction_victim(exclude=request)
            if self.kv_cache.can_grow(request_id, 1):
                self.kv_cache.grow(request_id, 1)
            else:
                self._evict_decode(request)

    def _pick_eviction_victim(self, exclude: Request) -> Request | None:
        rows = self._rows
        n = rows.n
        if n == 0:
            return None
        deadline = np.where(
            rows.inter[:n],
            rows.ttft_base[:n] + rows.decoded[:n] * rows.tbt[:n],
            rows.ni_ddl[:n],
        )
        excluded = rows.index.get(exclude.request_id)
        if excluded is not None:
            if n == 1:
                return None
            deadline[excluded] = -np.inf
        # argmax returns the first maximum, matching max()'s
        # tie-breaking over the queue order.
        return rows.req[int(np.argmax(deadline))]

    def _evict_decode(self, request: Request) -> None:
        rows = self._rows
        i = rows.index[request.request_id]
        rows.sync_row(i)
        context_lost = int(rows.ctx[i])
        self.kv_cache.release(request.request_id)
        if self.prefix_cache is not None:
            self.prefix_cache.unlock(request.request_id)
        rows.remove_at(i)
        self._decode_context_total -= context_lost
        request.evict()
        self.decode_evictions += 1
        self.observer.on_decode_evicted(
            self.replica_id, request, self.simulator.now, context_lost
        )
        self.scheduler.enqueue(request, self.simulator.now)

    # --- lifecycle transitions --------------------------------------------

    def _admit_handoffs(self) -> None:
        while self._pending_handoffs:
            request = self._pending_handoffs[0]
            if self.running_requests >= self.config.max_decode_slots:
                return
            context = request.context_length
            if not self.kv_cache.can_grow(request.request_id, context):
                return
            self.kv_cache.grow(request.request_id, context)
            self._add_decode_row(request)
            self._decode_context_total += context
            if request.scheduled_first_time is None:
                request.scheduled_first_time = self.simulator.now
            self._pending_handoffs.popleft()

    def _on_prefill_finished(self, request: Request, now: float) -> None:
        self._inflight_prefills.discard(request.request_id)
        self.scheduler.on_prefill_complete(request, now)
        self.observer.on_span_end("prefill", request, now, self.replica_id)
        if self.config.prefill_only:
            self.kv_cache.release(request.request_id)
            assert self.prefill_sink is not None
            self.prefill_sink(request, now)
            return
        if self.prefix_cache is not None and request.token_ids is not None:
            created, deduped = self.prefix_cache.insert_and_lock(
                request.request_id, request.token_ids
            )
            self.observer.on_prefix_insert(
                self.replica_id,
                now,
                created,
                deduped,
                self.prefix_cache.cached_tokens,
            )
        if request.decoded == 0:
            request.record_output_token(now)
            self.observer.on_span_start(
                "decode", request, now, self.replica_id
            )
            if self.token_hook is not None:
                self.token_hook(request, now)
        if request.is_finished:
            self._complete(request, now)
        else:
            self._add_decode_row(request)
            self._decode_context_total += request.context_length

    def _complete(self, request: Request, now: float) -> None:
        rows = self._rows
        i = rows.index.get(request.request_id)
        if i is not None:
            self._decode_context_total -= int(rows.ctx[i])
            self.kv_cache.release(request.request_id)
            rows.remove_at(i)
        else:
            self.kv_cache.release(request.request_id)
        if self.prefix_cache is not None:
            self.prefix_cache.unlock(request.request_id)
        self.completed.append(request)
        self.observer.on_span_end("decode", request, now, self.replica_id)
        self.observer.on_request_completed(self.replica_id, request, now)
        self.scheduler.on_request_complete(request, now)
        if self.completion_hook is not None:
            self.completion_hook(request, now)
        if self._pending_handoffs:
            self._admit_handoffs()
        if self._stalled_requests:
            for stalled in self._stalled_requests:
                self.scheduler.enqueue(stalled, now)
            self._stalled_requests.clear()

    # --- faults -----------------------------------------------------------

    def crash(self) -> list[Request]:
        now = self.simulator.now
        if self._inflight_event is not None:
            self._inflight_event.cancel()
            self._inflight_event = None
        self._busy = False
        self._sync_rows()

        lost: list[Request] = []
        seen: set[int] = set()

        def take(request: Request) -> None:
            if request.request_id not in seen and not request.is_finished:
                seen.add(request.request_id)
                lost.append(request)

        rows = self._rows
        for request in rows.req:
            take(request)
        for request in self.scheduler.pending_requests():
            take(request)
        for request in self._stalled_requests:
            take(request)
        for request in self._pending_handoffs:
            take(request)

        kv_blocks_dropped = 0
        for request in lost:
            self.scheduler.remove(request, now)
            # Row-backed holdings must be released while the rows are
            # still alive; the order among lost requests is free.
            kv_blocks_dropped += self.kv_cache.release(request.request_id)
            request.evict()

        if self.prefix_cache is not None:
            kv_blocks_dropped += self.prefix_cache.flush()

        rows.clear()
        self._decode_context_total = 0
        self._stalled_requests.clear()
        self._pending_handoffs.clear()
        self._inflight_prefills.clear()

        leaked = self.kv_cache.holders()
        assert not leaked and self.kv_cache.used_blocks == 0, (
            f"KV blocks leaked across crash of replica "
            f"{self.replica_id}: {leaked}"
        )

        self.healthy = False
        self.crash_count += 1
        self._crashed_at = now
        self.observer.on_replica_crashed(
            self.replica_id, now, len(lost), kv_blocks_dropped
        )
        return lost

    def cancel_request(self, request: Request, reason: str) -> bool:
        if request.is_finished:
            return False
        now = self.simulator.now
        resident = False
        rows = self._rows
        i = rows.index.get(request.request_id)
        if i is not None:
            rows.sync_row(i)
            context = int(rows.ctx[i])
            self.kv_cache.release(request.request_id)
            rows.remove_at(i)
            self._decode_context_total -= context
            resident = True
        if request.request_id in self._inflight_prefills:
            self._inflight_prefills.discard(request.request_id)
            resident = True
        if any(
            r.request_id == request.request_id
            for r in self.scheduler.pending_requests()
        ):
            resident = True
        self.scheduler.remove(request, now)
        if request in self._stalled_requests:
            self._stalled_requests.remove(request)
            resident = True
        if request in self._pending_handoffs:
            self._pending_handoffs.remove(request)
            resident = True
        self.kv_cache.release(request.request_id)
        if self.prefix_cache is not None:
            self.prefix_cache.unlock(request.request_id)
        request.cancel(now, reason)
        self.cancelled.append(request)
        self.observer.on_request_cancelled(self.replica_id, request, now,
                                           reason)
        if self._pending_handoffs:
            self._admit_handoffs()
        self._maybe_start()
        return resident

    # --- driving ----------------------------------------------------------

    def run_until_drained(self, max_events: int | None = None) -> float:
        result = super().run_until_drained(max_events=max_events)
        self._sync_rows()
        return result

    def advance(
        self, until: float | None = None, max_events: int | None = None
    ) -> float:
        result = super().advance(until=until, max_events=max_events)
        self._sync_rows()
        return result

    # --- fast scheduler kernels (QoServe) ---------------------------------

    def _plan_qoserve_fast(
        self, now: float, n_live: int
    ) -> list[PrefillAssignment]:
        """QoServe planning without view/plan/closure construction.

        Mirrors ``QoServeScheduler.plan_prefill`` exactly: the replan
        cadence, selective-preemption pinning and the greedy packer
        run the reference (object) code on the scheduler's own state;
        only the per-iteration latency-budget scan and the predictor
        lookups are replaced by vectorized/memo-direct equivalents.
        """
        scheduler = self.scheduler
        if not scheduler._member:
            return []
        scheduler._iterations_since_replan += 1
        if (
            scheduler._order_dirty
            or scheduler._iterations_since_replan
            >= scheduler.config.replan_interval
        ):
            scheduler._replan(now)
        ordered = scheduler._order_cache
        if scheduler.config.selective_preemption:
            ordered = scheduler._pin_at_risk_inflight(ordered, now)

        if not scheduler.config.dynamic_chunking:
            budget = max(0, scheduler.chunk_size - n_live)
        else:
            chunker = scheduler.chunker
            latency_budget = self._latency_budget_fast(
                now, chunker.ni_pace_floor
            )
            head_context = ordered[0].prefill_done if ordered else 0
            predict = self._fast_predict(
                head_context, n_live, self._decode_context_total
            )
            decision = chunker._decide(latency_budget, predict)
            scheduler._last_iteration_estimate = decision.predicted_latency
            budget = decision.prefill_budget
        if budget <= 0:
            return []
        from repro.schedulers.base import pack_prefill_assignments

        view = _FastView(
            now=now,
            decode_requests=range(n_live),
            kv_cache=self.kv_cache,
            execution_model=self.execution_model,
            max_decode_slots=self.config.max_decode_slots,
            inflight_prefill_ids=self._inflight_prefills,
            decode_context_total=self._decode_context_total,
        )
        return pack_prefill_assignments(
            ordered, budget, view, scheduler.kv_start_watermark
        )

    def _latency_budget_fast(self, now: float, floor: float) -> float:
        """Vectorized ``DynamicChunker.latency_budget``.

        Float-exact: interactive slack is ``(ttft_base + decoded*tbt)
        - now`` (the reference's association), non-interactive pace is
        ``(total_deadline - now) / max(1, remaining)`` floored, and
        the min over rows equals the reference's running minimum.
        """
        rows = self._rows
        n = rows.n
        if n == 0:
            return float("inf")
        if n < _SMALL_BATCH:
            # Scalar sweep: identical float ops, no kernel launches.
            inter = rows.inter
            decoded = rows.decoded
            ttft_base = rows.ttft_base
            tbt = rows.tbt
            target = rows.target
            ni_ddl = rows.ni_ddl
            best = float("inf")
            for i in range(n):
                if inter.item(i):
                    slack = (
                        ttft_base.item(i) + decoded.item(i) * tbt.item(i)
                    ) - now
                    if slack <= 0.0:
                        slack = floor
                else:
                    remaining = target.item(i) - decoded.item(i)
                    if remaining < 1:
                        remaining = 1
                    slack = (ni_ddl.item(i) - now) / remaining
                    if slack < floor:
                        slack = floor
                if slack < best:
                    best = slack
            return best
        interactive_slack = (
            rows.ttft_base[:n] + rows.decoded[:n] * rows.tbt[:n]
        ) - now
        interactive_slack = np.where(
            interactive_slack <= 0.0, floor, interactive_slack
        )
        remaining = np.maximum(rows.target[:n] - rows.decoded[:n], 1)
        pace = (rows.ni_ddl[:n] - now) / remaining
        np.maximum(pace, floor, out=pace)
        slack = np.where(rows.inter[:n], interactive_slack, pace)
        return float(slack.min())

    def _fast_predict(
        self, head_context: int, num_decodes: int, decode_context: int
    ):
        """Latency-predictor closure bypassing shape construction.

        For the memoized forest predictor this computes the bucketed
        memo key directly (the key, not the raw features, is what the
        reference feeds the forest); otherwise it mirrors the
        chunker's closure with real ``BatchShape`` objects.
        """
        predictor = self._forest_predictor
        if predictor is not None:
            memo = predictor._memo
            b0, b1, b2, b3 = predictor.MEMO_BUCKETS
            k2 = b2 * -(-float(num_decodes) // b2)
            k3 = b3 * -(-float(decode_context) // b3)
            k1 = b1 * -(-float(head_context) // b1)
            forest = predictor.forest
            quantile = predictor.quantile
            safety = predictor.safety_factor
            limit = predictor.MEMO_LIMIT

            def predict(chunk: int) -> float:
                if chunk > 0:
                    key = (b0 * -(-float(chunk) // b0), k1, k2, k3)
                else:
                    key = (0.0, 0.0, k2, k3)
                cached = memo.get(key)
                if cached is None:
                    if len(memo) >= limit:
                        memo.clear()
                    cached = safety * forest.predict_one(
                        key, quantile=quantile
                    )
                    memo[key] = cached
                return cached

            return predict

        fallback = self.scheduler.predictor

        def predict(chunk: int) -> float:
            chunks = (
                [PrefillChunk(chunk, head_context)] if chunk > 0 else []
            )
            return fallback.predict(
                BatchShape(
                    prefill_chunks=chunks,
                    num_decodes=num_decodes,
                    decode_context_total=decode_context,
                )
            )

        return predict
