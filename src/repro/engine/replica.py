"""The replica engine: iteration-level chunked-prefill serving loop.

One :class:`ReplicaEngine` models one model replica (a TP group of
GPUs).  Each iteration it batches *all* running decodes with the
prefill chunks its scheduler selects (Section 3.1), asks the execution
model how long the batch takes, and advances simulated time.  KV-cache
growth is accounted before execution; if a decode step cannot fit, the
engine preempts the decode request with the slackest deadline and
recomputes it later, mirroring vLLM's recompute-on-eviction.

In ``prefill_only`` mode (PD disaggregation, Section 4.1.3) completed
prefills are handed to a caller-provided sink instead of entering the
local decode queue, and their KV is released (shipped to the decode
node).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable

from repro.core.request import Request
from repro.engine.batch import BatchPlan, IterationRecord, PrefillAssignment
from repro.engine.interface import EngineView, Scheduler
from repro.engine.kvcache import KVCacheManager
from repro.engine.prefix import RadixPrefixCache
from repro.obs.observer import NULL_OBSERVER, Observer, get_default_observer
from repro.obs.timing import timed
from repro.perfmodel.execution import BatchShape, ExecutionModel
from repro.simcore.simulator import Simulator


@dataclass(frozen=True)
class ReplicaConfig:
    """Engine knobs.

    Attributes:
        max_decode_slots: Cap on concurrently running requests
            (vLLM's ``max_num_seqs``); prefill admission respects it.
        kv_block_size: Paged-attention block size in tokens.
        record_iterations: Keep an :class:`IterationRecord` per batch
            (Figure 9 telemetry); off by default to save memory.
        prefill_only: PD-disaggregation prefill-node mode.
        kv_reuse: Prefix-aware KV reuse policy — ``"radix"`` shares
            prompt-prefix blocks across requests via
            :class:`repro.engine.prefix.RadixPrefixCache`; ``"off"``
            (the default) is byte-identical to a reuse-free engine.
    """

    KV_REUSE_KINDS = ("off", "radix")

    max_decode_slots: int = 256
    kv_block_size: int = 16
    record_iterations: bool = False
    prefill_only: bool = False
    kv_reuse: str = "off"

    def __post_init__(self) -> None:
        if self.kv_reuse not in self.KV_REUSE_KINDS:
            raise ValueError(
                f"kv_reuse must be one of {self.KV_REUSE_KINDS}, "
                f"got {self.kv_reuse!r}"
            )


class ReplicaEngine:
    """Serves requests on one simulated replica."""

    def __init__(
        self,
        simulator: Simulator,
        execution_model: ExecutionModel,
        scheduler: Scheduler,
        config: ReplicaConfig | None = None,
        replica_id: int = 0,
        prefill_sink: Callable[[Request, float], None] | None = None,
        observer: Observer | None = None,
    ) -> None:
        """Args:
        simulator: Shared event loop.
        execution_model: Ground-truth iteration cost model.
        scheduler: Prefill-selection policy.
        config: Engine knobs; defaults to :class:`ReplicaConfig`.
        replica_id: Identifier used in multi-replica deployments.
        prefill_sink: Required in ``prefill_only`` mode — receives
            ``(request, now)`` when a prompt finishes prefilling.
        observer: Observability hooks (tracing/metrics); ``None``
            adopts the process default (no-op unless the CLI enabled
            tracing).  Installed on the scheduler too, so scheduler
            events land in the same trace.
        """
        self.simulator = simulator
        self.execution_model = execution_model
        self.scheduler = scheduler
        self.config = config or ReplicaConfig()
        self.replica_id = replica_id
        if self.config.prefill_only and prefill_sink is None:
            raise ValueError("prefill_only mode requires a prefill_sink")
        self.prefill_sink = prefill_sink
        self.observer = (
            observer if observer is not None else get_default_observer()
        )
        if self.observer is not NULL_OBSERVER:
            scheduler.set_observer(self.observer)

        self.kv_cache = KVCacheManager(
            capacity_tokens=execution_model.kv_capacity_tokens,
            block_size=self.config.kv_block_size,
        )
        #: Radix prefix index (``kv_reuse="radix"``), or None; every
        #: prefix code path in the engine is guarded on it so the
        #: ``"off"`` mode stays byte-identical to a reuse-free engine.
        #: Prefill-only nodes ship their KV away at prefill finish, so
        #: they never populate (and therefore never consult) a tree.
        self.prefix_cache: RadixPrefixCache | None = None
        if self.config.kv_reuse == "radix" and not self.config.prefill_only:
            self._install_prefix_cache()
        self.decode_queue: list[Request] = []
        # Incremental mirror of sum(r.context_length for r in
        # decode_queue): adjusted on admit/evict/finish so the hot
        # loop never re-aggregates the whole queue.
        self._decode_context_total = 0
        self.completed: list[Request] = []
        self.submitted: list[Request] = []
        #: Requests refused at admission: their prompt plus decode
        #: tokens can never fit this replica's KV cache (vLLM rejects
        #: over-length prompts the same way).
        self.rejected: list[Request] = []
        #: Arrivals that found the replica crashed (bare-engine use
        #: only; a cluster router never dispatches to a down replica).
        self.dropped: list[Request] = []
        self.iteration_records: list[IterationRecord] = []
        self.iterations_run = 0
        self.busy_time = 0.0
        #: Always-on cheap decision counters (one int/dict bump per
        #: occurrence) feeding ``RunSummary.scheduler_stats`` without
        #: requiring a tracing observer.
        self.decode_evictions = 0
        self.stall_preemptions = 0
        self.chunk_tokens_hist: Counter[int] = Counter()
        #: Relegated requests already reported served (each request
        #: gets exactly one relegation_served event per demotion).
        self._relegation_served_ids: set[int] = set()
        #: False while the replica is crashed (see :meth:`crash`); a
        #: down replica accepts no work and runs no iterations.
        self.healthy = True
        #: Transient-straggler multiplier applied to every iteration's
        #: execution time (1.0 = nominal speed).
        self.slowdown_factor = 1.0
        self.crash_count = 0
        self.cancelled: list[Request] = []
        self._crashed_at = 0.0
        self._busy = False
        # Handle of the scheduled end-of-iteration event, so a crash
        # can abort the batch in flight.
        self._inflight_event = None
        #: Optional ``(request, now)`` callback fired on completion;
        #: the resilient cluster uses it to disarm deadline watchdogs.
        self.completion_hook: Callable[[Request, float], None] | None = None
        #: Optional ``(request, now)`` callback fired once per output
        #: token; the serving gateway uses it to stream tokens to
        #: clients.  Must never mutate engine state.
        self.token_hook: Callable[[Request, float], None] | None = None
        # Requests whose prefill has started but not finished; counts
        # against decode slots so admission cannot overshoot.
        self._inflight_prefills: set[int] = set()
        # Prefilled handoffs (disaggregation) waiting for KV or slots.
        self._pending_handoffs: deque[Request] = deque()
        # Requests evicted by stall recovery: parked outside the
        # scheduler until a completion frees memory, so they cannot
        # immediately re-consume the blocks they just released.
        self._stalled_requests: list[Request] = []

    # --- prefix reuse -----------------------------------------------------

    def _install_prefix_cache(self) -> None:
        """Bind a fresh radix cache to the current KV ledger.

        Called from ``__init__`` and again by the array engine after it
        swaps in its own ledger (the tree is empty at both points).
        """
        self.prefix_cache = RadixPrefixCache(self.kv_cache)
        self.kv_cache.set_reclaimer(self.prefix_cache)
        self.prefix_cache.on_evict = self._notify_prefix_evicted

    def _notify_prefix_evicted(self, blocks: int) -> None:
        assert self.prefix_cache is not None
        self.observer.on_prefix_evicted(
            self.replica_id,
            self.simulator.now,
            blocks,
            self.prefix_cache.cached_tokens,
        )

    # --- submission ------------------------------------------------------

    def submit(self, request: Request) -> None:
        """Register a request; it arrives at ``request.arrival_time``."""
        self.submitted.append(request)
        self.simulator.schedule(
            max(request.arrival_time, self.simulator.now),
            lambda: self._on_arrival(request),
        )

    def submit_now(self, request: Request) -> None:
        """Hand a request over immediately (disaggregation handoff,
        cluster dispatch)."""
        if not self.healthy:
            raise RuntimeError(
                f"replica {self.replica_id} is down; router must not "
                "dispatch to it"
            )
        self.submitted.append(request)
        self._on_arrival(request)

    def submit_prefilled(self, request: Request) -> None:
        """Admit an already-prefilled request straight into decode.

        This is the decode-node entry point of a disaggregated
        deployment: the prompt's KV arrives with the request (grown
        here), and the first output token is produced by this
        replica's next iteration.  Requests that do not fit (KV or
        decode slots) wait in an admission queue and are admitted as
        completions free resources.
        """
        if request.remaining_prefill != 0:
            raise ValueError(
                f"request {request.request_id} still has prefill work"
            )
        if request.is_finished:
            raise ValueError(f"request {request.request_id} is finished")
        self.submitted.append(request)
        self._pending_handoffs.append(request)
        self._admit_handoffs()
        self._maybe_start()

    def _admit_handoffs(self) -> None:
        while self._pending_handoffs:
            request = self._pending_handoffs[0]
            if self.running_requests >= self.config.max_decode_slots:
                return
            context = request.context_length
            if not self.kv_cache.can_grow(request.request_id, context):
                return
            self.kv_cache.grow(request.request_id, context)
            self.decode_queue.append(request)
            self._decode_context_total += context
            if request.scheduled_first_time is None:
                request.scheduled_first_time = self.simulator.now
            self._pending_handoffs.popleft()

    def _on_arrival(self, request: Request) -> None:
        if not self.healthy:
            # The arrival was scheduled before the crash (direct
            # engine use); a cluster router re-dispatches via its own
            # retry path, a bare engine records the drop.
            self.dropped.append(request)
            return
        max_tokens = self.kv_cache.capacity_tokens
        if request.prefill_target + request.remaining_decode > max_tokens:
            self.rejected.append(request)
            return
        if (
            self.prefix_cache is not None
            and request.token_ids is not None
            and request.prefill_done == 0
            and request.folded == 0
        ):
            # A matched prefix counts as already-prefilled work: the
            # scheduler only ever plans the uncached suffix, and the
            # final chunk (>= 1 token, hence the cap) still emits the
            # first output token.
            hit = self.prefix_cache.match_and_lock(
                request.request_id,
                request.token_ids,
                request.prompt_tokens - 1,
            )
            if hit:
                request.prefill_done = hit
            self.observer.on_prefix_lookup(
                self.replica_id,
                request,
                self.simulator.now,
                hit,
                self.prefix_cache.cached_tokens,
            )
        self.scheduler.enqueue(request, self.simulator.now)
        self.observer.on_span_start(
            "queue", request, self.simulator.now, self.replica_id
        )
        self._maybe_start()

    # --- derived state ----------------------------------------------------

    @property
    def running_requests(self) -> int:
        """Requests occupying decode slots (decoding or mid-prefill)."""
        return len(self.decode_queue) + len(self._inflight_prefills)

    @property
    def free_decode_slots(self) -> int:
        return max(0, self.config.max_decode_slots - self.running_requests)

    def has_work(self) -> bool:
        return bool(self.decode_queue) or self.scheduler.has_pending_prefill()

    # --- iteration loop ----------------------------------------------------

    def _maybe_start(self) -> None:
        if self._busy or not self.healthy:
            return
        if self.has_work():
            self._start_iteration()

    @timed("engine.start_iteration")
    def _start_iteration(self) -> None:
        now = self.simulator.now
        self._reserve_decode_growth()
        # One snapshot serves both the scheduler's view and the batch
        # plan: plan_prefill never mutates the decode queue (the view
        # is read-only by contract), so the lists would be identical.
        decode_snapshot = list(self.decode_queue)
        decode_context_total = self._decode_context_total
        view = EngineView(
            now=now,
            decode_requests=decode_snapshot,
            kv_cache=self.kv_cache,
            execution_model=self.execution_model,
            max_decode_slots=self.config.max_decode_slots,
            inflight_prefill_ids=frozenset(self._inflight_prefills),
            decode_context_total=decode_context_total,
        )
        assignments = self.scheduler.plan_prefill(view)
        plan = BatchPlan(
            prefill_assignments=assignments,
            decode_requests=decode_snapshot,
        )
        if plan.is_empty:
            if (
                not self.decode_queue
                and self.scheduler.has_pending_prefill()
                and self._recover_prefill_stall()
            ):
                # Freed KV by evicting a partial prefill; plan again.
                self._start_iteration()
                return
            # Prefill queue blocked (e.g. on KV memory) and nothing is
            # decoding; idle until the next arrival or completion.
            return
        for assignment in assignments:
            request = assignment.request
            self.kv_cache.grow(request.request_id, assignment.tokens)
            self._inflight_prefills.add(request.request_id)
            if request.scheduled_first_time is None:
                request.scheduled_first_time = now
                self.observer.on_span_end(
                    "queue", request, now, self.replica_id
                )
                self.observer.on_span_start(
                    "prefill", request, now, self.replica_id
                )
            if (
                request.relegated
                and request.request_id not in self._relegation_served_ids
            ):
                # First opportunistic chunk after demotion: the end of
                # the relegation stall, which latency attribution needs
                # as an explicit anchor.
                self._relegation_served_ids.add(request.request_id)
                self.observer.on_relegation_served(
                    self.replica_id, request, now, assignment.tokens
                )

        # Token counts of snapshot members cannot change while the
        # batch is in flight (they only move in _finish_iteration), so
        # the shape computed here is also the one _finish_iteration
        # records.
        shape = plan.to_shape(decode_context_total)
        exec_time = self.execution_model.batch_time(shape)
        if self.slowdown_factor != 1.0:
            # Transient straggler (fault injection): the replica runs,
            # just slower.  Guarded so the nominal path stays
            # bit-exact with no fault layer attached.
            exec_time *= self.slowdown_factor
        self._busy = True
        self.busy_time += exec_time
        if plan.prefill_tokens > 0:
            # Decode-only iterations carry no chunk; counting their
            # zeros would drown the histogram's smallest bucket.
            self.chunk_tokens_hist[plan.prefill_tokens] += 1
        self.observer.on_iteration_start(
            self.replica_id, now, exec_time, plan, self.iterations_run,
            queue_depth=self.scheduler.queue_length(),
        )
        self._inflight_event = self.simulator.schedule_after(
            exec_time,
            lambda: self._finish_iteration(plan, shape, exec_time, now),
        )

    def _reserve_decode_growth(self) -> None:
        """Grow KV by one token per decode request, evicting on pressure.

        Eviction victims are the decode requests with the largest
        next-token slack (they can best afford recompute); evicted
        requests return to the prefill queue with recompute pending.
        """
        for request in list(self.decode_queue):
            if self.kv_cache.can_grow(request.request_id, 1):
                self.kv_cache.grow(request.request_id, 1)
                continue
            victim = self._pick_eviction_victim(exclude=request)
            while victim is not None and not self.kv_cache.can_grow(
                request.request_id, 1
            ):
                self._evict_decode(victim)
                victim = self._pick_eviction_victim(exclude=request)
            if self.kv_cache.can_grow(request.request_id, 1):
                self.kv_cache.grow(request.request_id, 1)
            else:
                # Last resort: evict this request itself.
                self._evict_decode(request)

    def _recover_prefill_stall(self) -> bool:
        """Break a mutual-prefill KV deadlock by recomputation.

        With no decodes running and prefill work pending but no plan,
        the cache is wedged by partially-prefilled requests that each
        need more blocks than remain.  Evicting the least-progressed
        holder (losing the least work) lets the most advanced one
        finish and the evicted one recompute later — vLLM's
        recompute-on-preemption, applied to the prefill phase.

        Returns True if a victim was evicted.
        """
        holders = [
            r
            for r in self.scheduler.pending_requests()
            if r.remaining_prefill > 0
            and self.kv_cache.holding(r.request_id) > 0
        ]
        if len(holders) < 2:
            return False  # a lone holder gains nothing from eviction
        victim = min(holders, key=lambda r: r.prefill_done)
        prefill_lost = victim.prefill_done
        self.kv_cache.release(victim.request_id)
        if self.prefix_cache is not None:
            # The victim recomputes from scratch; its shared prefix
            # stays resident for others until memory pressure evicts it.
            self.prefix_cache.unlock(victim.request_id)
        self._inflight_prefills.discard(victim.request_id)
        victim.evict()
        self.stall_preemptions += 1
        self.observer.on_preempted(
            self.replica_id, victim, self.simulator.now, prefill_lost
        )
        # Park the victim outside the scheduler: re-admitting it right
        # away would let it re-consume the freed blocks before the
        # surviving holder finishes, thrashing forever.
        self.scheduler.on_prefill_complete(victim, self.simulator.now)
        self._stalled_requests.append(victim)
        return True

    def _pick_eviction_victim(self, exclude: Request) -> Request | None:
        candidates = [r for r in self.decode_queue if r is not exclude]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.next_token_deadline)

    def _evict_decode(self, request: Request) -> None:
        context_lost = request.context_length
        self.kv_cache.release(request.request_id)
        if self.prefix_cache is not None:
            self.prefix_cache.unlock(request.request_id)
        self.decode_queue.remove(request)
        self._decode_context_total -= context_lost
        request.evict()
        self.decode_evictions += 1
        self.observer.on_decode_evicted(
            self.replica_id, request, self.simulator.now, context_lost
        )
        self.scheduler.enqueue(request, self.simulator.now)

    @timed("engine.finish_iteration")
    def _finish_iteration(
        self,
        plan: BatchPlan,
        shape: BatchShape,
        exec_time: float,
        start_time: float,
    ) -> None:
        now = self.simulator.now
        self._inflight_event = None
        self.iterations_run += 1
        if self.config.record_iterations:
            self.iteration_records.append(
                IterationRecord(
                    start_time=start_time,
                    exec_time=exec_time,
                    prefill_tokens=shape.prefill_tokens,
                    num_decodes=shape.num_decodes,
                    decode_context_total=shape.decode_context_total,
                    kv_utilization=self.kv_cache.utilization,
                )
            )

        # Decode side: every running request emitted one token.
        for request in plan.decode_requests:
            if request not in self.decode_queue:
                continue  # evicted while this iteration was in flight
            request.record_output_token(now)
            self._decode_context_total += 1
            if self.token_hook is not None:
                self.token_hook(request, now)
            if request.is_finished:
                self._complete(request, now)

        # Prefill side: advance chunk progress.
        for assignment in plan.prefill_assignments:
            request = assignment.request
            if request.cancelled:
                continue  # cancelled mid-iteration; KV already freed
            request.prefill_done += assignment.tokens
            if request.remaining_prefill == 0:
                self._on_prefill_finished(request, now)

        self.observer.on_iteration_end(
            self.replica_id, now, start_time, exec_time, plan, self.kv_cache
        )
        self._busy = False
        self._maybe_start()

    def _on_prefill_finished(self, request: Request, now: float) -> None:
        self._inflight_prefills.discard(request.request_id)
        self.scheduler.on_prefill_complete(request, now)
        self.observer.on_span_end(
            "prefill", request, now, self.replica_id
        )
        if self.config.prefill_only:
            # First token is produced by the decode node after handoff;
            # the prefill node's job (and its KV holding) ends here.
            self.kv_cache.release(request.request_id)
            assert self.prefill_sink is not None
            self.prefill_sink(request, now)
            return
        if self.prefix_cache is not None and request.token_ids is not None:
            # Publish the finished prompt's blocks: privately-held
            # blocks transfer to (or dedupe against) the shared tree,
            # and the request keeps its path locked until completion.
            created, deduped = self.prefix_cache.insert_and_lock(
                request.request_id, request.token_ids
            )
            self.observer.on_prefix_insert(
                self.replica_id,
                now,
                created,
                deduped,
                self.prefix_cache.cached_tokens,
            )
        if request.decoded == 0:
            # The final prefill chunk yields output token 1 (Sec. 2.1).
            request.record_output_token(now)
            self.observer.on_span_start(
                "decode", request, now, self.replica_id
            )
            if self.token_hook is not None:
                self.token_hook(request, now)
        if request.is_finished:
            self._complete(request, now)
        else:
            self.decode_queue.append(request)
            self._decode_context_total += request.context_length

    def _complete(self, request: Request, now: float) -> None:
        if request in self.decode_queue:
            self.decode_queue.remove(request)
            self._decode_context_total -= request.context_length
        self.kv_cache.release(request.request_id)
        if self.prefix_cache is not None:
            self.prefix_cache.unlock(request.request_id)
        self.completed.append(request)
        self.observer.on_span_end(
            "decode", request, now, self.replica_id
        )
        self.observer.on_request_completed(self.replica_id, request, now)
        self.scheduler.on_request_complete(request, now)
        if self.completion_hook is not None:
            self.completion_hook(request, now)
        if self._pending_handoffs:
            self._admit_handoffs()
        if self._stalled_requests:
            for stalled in self._stalled_requests:
                self.scheduler.enqueue(stalled, now)
            self._stalled_requests.clear()

    # --- faults (repro.faults) --------------------------------------------

    def crash(self) -> list[Request]:
        """Fail the replica: drop its KV cache and in-flight batch.

        Mirrors a process/host failure: the batch being executed never
        completes, every cached KV block is lost, and each resident
        request's generation state must be recomputed from scratch
        (``Request.evict``).  The engine stops serving until
        :meth:`recover` is called.

        Returns:
            The unfinished requests that were resident (decoding,
            prefilling, queued, parked, or awaiting handoff), in a
            deterministic order, for the cluster's retry layer to
            re-dispatch.
        """
        now = self.simulator.now
        if self._inflight_event is not None:
            self._inflight_event.cancel()
            self._inflight_event = None
        self._busy = False

        lost: list[Request] = []
        seen: set[int] = set()

        def take(request: Request) -> None:
            if request.request_id not in seen and not request.is_finished:
                seen.add(request.request_id)
                lost.append(request)

        for request in self.decode_queue:
            take(request)
        for request in self.scheduler.pending_requests():
            take(request)
        for request in self._stalled_requests:
            take(request)
        for request in self._pending_handoffs:
            take(request)

        self.decode_queue.clear()
        self._decode_context_total = 0
        self._stalled_requests.clear()
        self._pending_handoffs.clear()
        self._inflight_prefills.clear()

        kv_blocks_dropped = 0
        for request in lost:
            self.scheduler.remove(request, now)
            kv_blocks_dropped += self.kv_cache.release(request.request_id)
            request.evict()
        if self.prefix_cache is not None:
            # Shared prefix blocks die with the replica too; flushing
            # (all node blocks released, every lock dropped) is what
            # lets the no-leak assertion below keep holding.
            kv_blocks_dropped += self.prefix_cache.flush()
        # No-leak invariant: every block belonged to a resident
        # request, so dropping them all must empty the cache.
        leaked = self.kv_cache.holders()
        assert not leaked and self.kv_cache.used_blocks == 0, (
            f"KV blocks leaked across crash of replica "
            f"{self.replica_id}: {leaked}"
        )

        self.healthy = False
        self.crash_count += 1
        self._crashed_at = now
        self.observer.on_replica_crashed(
            self.replica_id, now, len(lost), kv_blocks_dropped
        )
        return lost

    def recover(self) -> None:
        """Bring a crashed replica back with a cold (empty) cache."""
        if self.healthy:
            return
        now = self.simulator.now
        self.healthy = True
        self.observer.on_replica_recovered(
            self.replica_id, now, now - self._crashed_at
        )
        self._maybe_start()

    def set_slowdown(self, factor: float) -> None:
        """Set the straggler multiplier on iteration execution time."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be > 0, got {factor}")
        self.slowdown_factor = float(factor)

    def cancel_request(self, request: Request, reason: str) -> bool:
        """Withdraw an unfinished request (client disconnect/timeout).

        Frees its KV and removes it from every engine structure; the
        in-flight batch keeps executing (the work is simply discarded
        when the iteration completes).

        Returns:
            True if the request was resident on this replica.
        """
        if request.is_finished:
            return False
        now = self.simulator.now
        resident = False
        if request in self.decode_queue:
            self.decode_queue.remove(request)
            self._decode_context_total -= request.context_length
            resident = True
        if request.request_id in self._inflight_prefills:
            self._inflight_prefills.discard(request.request_id)
            resident = True
        if any(
            r.request_id == request.request_id
            for r in self.scheduler.pending_requests()
        ):
            resident = True
        self.scheduler.remove(request, now)
        if request in self._stalled_requests:
            self._stalled_requests.remove(request)
            resident = True
        if request in self._pending_handoffs:
            self._pending_handoffs.remove(request)
            resident = True
        self.kv_cache.release(request.request_id)
        if self.prefix_cache is not None:
            self.prefix_cache.unlock(request.request_id)
        request.cancel(now, reason)
        self.cancelled.append(request)
        self.observer.on_request_cancelled(self.replica_id, request, now,
                                           reason)
        # Freed KV/slots may unblock queued work.
        if self._pending_handoffs:
            self._admit_handoffs()
        self._maybe_start()
        return resident

    # --- driving ----------------------------------------------------------

    def run_until_drained(self, max_events: int | None = None) -> float:
        """Run the simulator until all submitted work completes."""
        self.simulator.run(max_events=max_events)
        return self.simulator.now

    def advance(
        self, until: float | None = None, max_events: int | None = None
    ) -> float:
        """Process events incrementally, up to virtual time ``until``.

        The online gateway's step API: unlike
        :meth:`run_until_drained`, the engine stays mid-flight and more
        requests may be injected (:meth:`submit_now`) between calls.
        """
        return self.simulator.run(until=until, max_events=max_events)

    def next_event_time(self) -> float | None:
        """When this replica's simulator fires next (None if idle)."""
        return self.simulator.next_event_time()
