"""Radix-tree prefix index for cross-request KV reuse.

Every request today prefills its prompt from scratch, yet multi-turn
conversations and shared-system-prompt agent/RAG traffic resubmit the
same leading tokens on every turn.  :class:`RadixPrefixCache` keeps a
block-granular radix tree over concrete prompt token ids (sglang's
RadixCache, adapted to the simulator's accounting-only KV ledger): a
new request whose prompt shares a prefix with resident KV locks that
path and skips the prefix's prefill work — the execution model only
ever sees the uncached suffix.

Accounting model
----------------

Each tree node owns exactly one KV block, held in the ledger under a
unique *negative* owner id (request ids are >= 0, so the two can never
collide and the ledger needs no special cases).  A request's private
holding covers only its uncached suffix plus decode growth; shared
prefix blocks live under node owners.  Block conservation is exact:

* **Match** (arrival): walking the tree locks the matched path by
  incrementing every node's reference count root->deepest.  No blocks
  move.
* **Insert** (prefill finish): each full prompt block either transfers
  ownership of a privately-held block to a new node
  (``shrink(request)`` then ``grow(node)`` — shrink-first, so the pair
  can never raise), or frees a duplicate block some earlier request
  already shares (``shrink`` alone).  The inserting request then holds
  a lock on its own prompt path until it completes.
* **Unlock** (complete / evict / stall-recovery / cancel): decrements
  the path.  Nodes at zero references become eviction candidates but
  stay resident — a relegated victim's pages remain reusable until
  memory pressure actually reclaims them.
* **Reclaim**: LRU over unreferenced leaves, driven by the ledger
  itself when an allocation would otherwise fail (the cache registers
  as the ledger's *reclaimer*).  Locking increments every ancestor, so
  a zero-reference node implies a zero-reference subtree and leaves
  can always be peeled innermost-first.
* **Flush** (replica crash): releases every node's block
  unconditionally so the engine's no-leak crash assertion holds.

Determinism: recency is a monotonic integer clock, never wall time,
and ties break on node creation order, so eviction order is a pure
function of the event sequence.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.interface import KVLedger


@runtime_checkable
class PrefixReclaimer(Protocol):
    """What a KV ledger needs from a prefix cache under memory pressure."""

    def reclaimable_blocks(self) -> int:
        """Blocks that :meth:`reclaim` could free right now."""
        ...

    def reclaim(self, blocks: int) -> int:
        """Evict up to ``blocks`` unreferenced blocks; returns freed."""
        ...


class _RadixNode:
    """One KV block's worth of tokens in the prefix tree."""

    __slots__ = (
        "tokens",
        "parent",
        "children",
        "depth",
        "ref_count",
        "last_access",
        "owner_id",
        "alive",
    )

    def __init__(
        self,
        tokens: tuple[int, ...],
        parent: "_RadixNode | None",
        owner_id: int,
    ) -> None:
        self.tokens = tokens
        self.parent = parent
        self.children: dict[tuple[int, ...], _RadixNode] = {}
        self.depth = 0 if parent is None else parent.depth + 1
        self.ref_count = 0
        self.last_access = 0
        self.owner_id = owner_id
        self.alive = True


class RadixPrefixCache:
    """Reference-counted radix tree over token-id blocks.

    Args:
        ledger: The replica's KV ledger; node blocks are held in it
            under negative owner ids.

    Attributes:
        hits / misses: Lookup outcomes (a lookup that matches zero
            blocks counts as a miss).
        hit_tokens: Total prefill tokens skipped via matches.
        evictions: Blocks reclaimed by LRU eviction (crash flushes are
            not evictions and are counted separately).
        on_evict: Optional callback invoked with the block count each
            time eviction frees memory — the engine points this at its
            observer.
    """

    def __init__(self, ledger: "KVLedger") -> None:
        self.ledger = ledger
        self.block_size = ledger.block_size
        self._root = _RadixNode((), None, owner_id=0)
        # request_id -> deepest locked node of that request's path
        self._locked: dict[int, _RadixNode] = {}
        self._clock = 0
        self._seq = itertools.count()
        self._next_owner = -1
        self._node_count = 0
        self._evictable = 0
        # lazy min-heap of (last_access, tiebreak, node); entries whose
        # recorded access no longer matches the node are stale
        self._heap: list[tuple[int, int, _RadixNode]] = []
        self.hits = 0
        self.misses = 0
        self.hit_tokens = 0
        self.evictions = 0
        self.on_evict: Callable[[int], None] | None = None

    # --- introspection --------------------------------------------------

    @property
    def cached_blocks(self) -> int:
        """Blocks resident in the tree (referenced or not)."""
        return self._node_count

    @property
    def cached_tokens(self) -> int:
        """Tokens resident in the tree (always whole blocks)."""
        return self._node_count * self.block_size

    @property
    def locked_requests(self) -> list[int]:
        """Request ids currently holding a locked path."""
        return list(self._locked)

    def total_refs(self) -> int:
        """Sum of all node reference counts (0 when no paths locked)."""
        total = 0
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            total += node.ref_count
            stack.extend(node.children.values())
        return total

    def reclaimable_blocks(self) -> int:
        return self._evictable

    # --- lookup / locking ----------------------------------------------

    def match_and_lock(
        self,
        request_id: int,
        token_ids: Sequence[int],
        max_tokens: int,
    ) -> int:
        """Longest shared-prefix match, locked for ``request_id``.

        Matches whole blocks only, never more than ``max_tokens``
        tokens (the engine caps at ``prompt_tokens - 1`` so at least
        one prefill token remains to emit the first output token).
        Returns the matched token count; 0 records a miss.
        """
        if request_id in self._locked:
            raise RuntimeError(
                f"request {request_id} already holds a locked prefix path"
            )
        bs = self.block_size
        limit = min(len(token_ids), max_tokens) // bs
        cur = self._root
        path: list[_RadixNode] = []
        for i in range(limit):
            child = cur.children.get(tuple(token_ids[i * bs : (i + 1) * bs]))
            if child is None:
                break
            path.append(child)
            cur = child
        if not path:
            self.misses += 1
            return 0
        for node in path:
            self._incref(node)
            self._touch(node)
        self._locked[request_id] = path[-1]
        matched = len(path) * bs
        self.hits += 1
        self.hit_tokens += matched
        return matched

    def insert_and_lock(
        self, request_id: int, token_ids: Sequence[int]
    ) -> tuple[int, int]:
        """Publish a finished prefill's prompt blocks into the tree.

        The request must currently hold one private block per full
        prompt block beyond any path it locked at admission; each such
        block is either transferred to a new node or freed as a
        duplicate of an existing one.  On return the request's lock
        covers its full prompt path (released via :meth:`unlock`).
        Returns ``(new_blocks, deduped_blocks)``.
        """
        bs = self.block_size
        full = len(token_ids) // bs
        locked = self._locked.get(request_id)
        locked_depth = 0 if locked is None else locked.depth
        cur = self._root
        path: list[_RadixNode] = []
        created = 0
        deduped = 0
        for i in range(full):
            block = tuple(token_ids[i * bs : (i + 1) * bs])
            child = cur.children.get(block)
            if child is None:
                child = _RadixNode(block, cur, owner_id=self._next_owner)
                self._next_owner -= 1
                # Ownership transfer: shrink first so the paired grow
                # always has a free block and can never raise.
                self.ledger.shrink(request_id, bs, 1)
                self.ledger.grow(child.owner_id, bs)
                cur.children[block] = child
                self._node_count += 1
                self._evictable += 1  # ref 0 until locked below
                created += 1
            elif i >= locked_depth:
                # The request privately recomputed a block an earlier
                # request already shares; free the duplicate.
                self.ledger.shrink(request_id, bs, 1)
                deduped += 1
            path.append(child)
            cur = child
        for node in path[locked_depth:]:
            self._incref(node)
        for node in path:
            self._touch(node)
        if path:
            self._locked[request_id] = path[-1]
        return created, deduped

    def unlock(self, request_id: int) -> None:
        """Drop ``request_id``'s path locks (idempotent).

        Nodes reaching zero references become LRU eviction candidates
        but stay resident until memory pressure reclaims them.
        """
        node = self._locked.pop(request_id, None)
        while node is not None and node.parent is not None:
            self._decref(node)
            node = node.parent

    # --- eviction -------------------------------------------------------

    def reclaim(self, blocks: int) -> int:
        """Evict up to ``blocks`` unreferenced leaves, LRU-first."""
        freed = 0
        while freed < blocks and self._heap:
            access, _, node = heapq.heappop(self._heap)
            if (
                not node.alive
                or node.ref_count != 0
                or node.children
                or node.last_access != access
            ):
                continue  # stale entry
            self._evict_node(node)
            freed += 1
        if freed and self.on_evict is not None:
            self.on_evict(freed)
        return freed

    def flush(self) -> int:
        """Release every node's block (replica crash); returns blocks."""
        freed = self._node_count
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            self.ledger.release(node.owner_id)
            node.alive = False
        self._root.children.clear()
        self._locked.clear()
        self._heap.clear()
        self._evictable = 0
        self._node_count = 0
        return freed

    # --- internals ------------------------------------------------------

    def _touch(self, node: _RadixNode) -> None:
        self._clock += 1
        node.last_access = self._clock

    def _incref(self, node: _RadixNode) -> None:
        if node.ref_count == 0:
            self._evictable -= 1
        node.ref_count += 1

    def _decref(self, node: _RadixNode) -> None:
        node.ref_count -= 1
        if node.ref_count == 0:
            self._evictable += 1
            self._touch(node)
            heapq.heappush(
                self._heap, (node.last_access, next(self._seq), node)
            )

    def _evict_node(self, node: _RadixNode) -> None:
        self.ledger.release(node.owner_id)
        parent = node.parent
        assert parent is not None
        del parent.children[node.tokens]
        node.alive = False
        self._node_count -= 1
        self._evictable -= 1
        self.evictions += 1
        if (
            parent.parent is not None
            and parent.ref_count == 0
            and not parent.children
        ):
            heapq.heappush(
                self._heap, (parent.last_access, next(self._seq), parent)
            )
