"""Figures 12 and 13: transient overload with a diurnal load pattern.

Load alternates between 2.0 and 5.0 QPS (2.5x peak-to-trough) on a
square wave; 20% of requests in each bucket carry a low-priority
application hint.  Figure 12's table reports overall / important /
per-tier violation percentages per scheme; Figure 13 plots the rolling
p99 of high-priority requests per tier.
"""

from __future__ import annotations

from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import make_scheduler, run_replica_trace
from repro.metrics.latency import rolling_percentile
from repro.workload.arrivals import DiurnalArrivals
from repro.workload.datasets import AZURE_CODE
from repro.workload.tiers import TierAssigner
from repro.workload.trace import TraceBuilder

SCHEMES = ("fcfs", "edf", "qoserve")
LOW_PRIORITY_FRACTION = 0.20


def build_diurnal_trace(
    scale: Scale,
    low_qps: float = 2.0,
    high_qps: float = 5.0,
    phase_duration: float | None = None,
):
    """Diurnal trace; the phase duration shrinks with the scale so a
    reduced-request run still sees several load cycles."""
    mean_qps = 0.5 * (low_qps + high_qps)
    num_requests = scale.requests_for(mean_qps)
    if phase_duration is None:
        expected_duration = num_requests / mean_qps
        phase_duration = max(60.0, expected_duration / 8.0)
    arrivals = DiurnalArrivals(
        low_qps=low_qps, high_qps=high_qps, phase_duration=phase_duration
    )
    assigner = TierAssigner(low_priority_fraction=LOW_PRIORITY_FRACTION)
    return TraceBuilder(
        AZURE_CODE,
        arrivals=arrivals,
        tier_assigner=assigner,
        seed=scale.seed,
    ).build(num_requests)


def run(
    scale: Scale = BENCH,
    schemes: tuple[str, ...] = SCHEMES,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Reproduce Figure 12's violation table under diurnal load."""
    execution_model = get_execution_model(deployment)
    result = ExperimentResult(
        experiment="figure-12",
        title="Deadline violations under diurnal transient overload",
        notes=[
            f"scale={scale.label}; QPS square wave 2.0<->5.0; "
            f"{int(LOW_PRIORITY_FRACTION * 100)}% low-priority hints"
        ],
    )
    for scheme in schemes:
        trace = build_diurnal_trace(scale)
        scheduler = make_scheduler(scheme, execution_model)
        summary, _ = run_replica_trace(execution_model, scheduler, trace)
        violations = summary.violations
        result.rows.append(
            {
                "scheme": f"Sarathi-{scheme.upper()}"
                if scheme != "qoserve"
                else "QoServe",
                "viol_overall_pct": violations.overall_pct,
                "viol_important_pct": violations.important_pct,
                "viol_q1_pct": violations.tier("Q1"),
                "viol_q2_pct": violations.tier("Q2"),
                "viol_q3_pct": violations.tier("Q3"),
                "relegated_pct": violations.relegated_pct,
            }
        )
    return result


def run_rolling_latency(
    scale: Scale = BENCH,
    schemes: tuple[str, ...] = SCHEMES,
    deployment: str = "llama3-8b",
    quantile: float = 0.99,
) -> ExperimentResult:
    """Reproduce Figure 13: rolling p99 of important requests per tier."""
    execution_model = get_execution_model(deployment)
    result = ExperimentResult(
        experiment="figure-13",
        title="Rolling p99 latency of high-priority requests (diurnal load)",
        notes=[f"scale={scale.label}; window sized to the trace duration"],
    )
    for scheme in schemes:
        trace = build_diurnal_trace(scale)
        scheduler = make_scheduler(scheme, execution_model)
        summary, engine = run_replica_trace(execution_model, scheduler, trace)
        window = max(30.0, trace.duration / 24.0)
        for tier in ("Q1", "Q2", "Q3"):
            important = [
                r for r in trace if r.qos.name == tier and r.important
            ]
            centers, series = rolling_percentile(
                important, quantile=quantile, window=window
            )
            for t, value in zip(centers, series):
                result.rows.append(
                    {
                        "scheme": f"Sarathi-{scheme.upper()}"
                        if scheme != "qoserve"
                        else "QoServe",
                        "tier": tier,
                        "window_center_s": float(t),
                        f"p{int(quantile * 100)}_latency_s": float(value),
                    }
                )
    return result


if __name__ == "__main__":
    print(run().render())
