"""Extension experiment: autoscaled vs static provisioning.

Section 2.3's motivation — "dedicated clusters often operate well
below their maximum capacity" — priced out: a diurnal cluster load is
served three ways, all with QoServe replicas:

* **static-peak** — enough replicas for the peak rate (the safe siloed
  practice); lowest violations, highest GPU-hours.
* **static-mean** — replicas for the mean rate; cheaper, but every
  burst rides on queueing.
* **autoscaled** — the reactive controller of
  :mod:`repro.cluster.autoscaler`, paying a cold-start delay on every
  scale-up.

Reported per deployment: GPU-hours consumed, violation percentages,
and the p99 of Q1.  The interesting shape: autoscaling approaches
static-mean's cost at far better SLO attainment, but the cold-start
lag shows up in Q1's tail on the first minutes of each burst — which
is why QoServe's relegation matters even with elastic capacity.
"""

from __future__ import annotations

import math

from repro.cluster.autoscaler import AutoscalerConfig, AutoscalingDeployment
from repro.cluster.deployment import ClusterDeployment
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import scheduler_factory
from repro.workload.arrivals import DiurnalArrivals
from repro.workload.datasets import AZURE_CODE
from repro.workload.tiers import TierAssigner
from repro.workload.trace import TraceBuilder

LOW_QPS = 6.0
HIGH_QPS = 15.0
PER_REPLICA_GOODPUT = 4.0  # QoServe on AzCode, from Figure 7


def build_cluster_trace(scale: Scale, phase_duration: float = 400.0):
    mean_qps = 0.5 * (LOW_QPS + HIGH_QPS)
    num_requests = max(scale.requests_for(mean_qps),
                       int(mean_qps * 4 * phase_duration))
    return TraceBuilder(
        AZURE_CODE,
        arrivals=DiurnalArrivals(LOW_QPS, HIGH_QPS, phase_duration),
        tier_assigner=TierAssigner(low_priority_fraction=0.2),
        seed=scale.seed,
    ).build(num_requests)


def _static_run(execution_model, trace, replicas: int):
    deployment = ClusterDeployment(
        execution_model,
        scheduler_factory("qoserve", execution_model),
        num_replicas=replicas,
    )
    deployment.submit_trace(trace)
    deployment.run(max_events=50_000_000)
    summary = deployment.summarize()
    gpu_hours = (
        replicas * execution_model.tp_degree * deployment.simulator.now
        / 3600.0
    )
    return summary, gpu_hours


def _autoscaled_run(execution_model, trace, config: AutoscalerConfig):
    deployment = AutoscalingDeployment(
        execution_model,
        scheduler_factory("qoserve", execution_model),
        config=config,
    )
    deployment.submit_trace(trace)
    deployment.run_until_drained()
    return deployment.summarize(), deployment.gpu_hours, deployment


def run(
    scale: Scale = BENCH,
    deployment_name: str = "llama3-8b",
) -> ExperimentResult:
    """Compare provisioning strategies under diurnal load."""
    execution_model = get_execution_model(deployment_name)
    trace = build_cluster_trace(scale)

    peak_replicas = math.ceil(HIGH_QPS / PER_REPLICA_GOODPUT)
    mean_replicas = math.ceil(
        0.5 * (LOW_QPS + HIGH_QPS) / PER_REPLICA_GOODPUT
    )
    autoscaler = AutoscalerConfig(
        min_replicas=max(1, mean_replicas - 1),
        max_replicas=peak_replicas,
        control_interval=45.0,
        provision_delay=120.0,
    )

    result = ExperimentResult(
        experiment="ext-autoscaling",
        title="Provisioning strategies under diurnal cluster load",
        notes=[
            f"scale={scale.label}; QPS {LOW_QPS}<->{HIGH_QPS}; "
            f"QoServe replicas; cold start "
            f"{autoscaler.provision_delay:.0f}s",
        ],
    )

    summary, gpu_hours = _static_run(
        execution_model, trace.fresh_copy(), peak_replicas
    )
    result.rows.append(_row("static-peak", peak_replicas, gpu_hours,
                            summary))

    summary, gpu_hours = _static_run(
        execution_model, trace.fresh_copy(), mean_replicas
    )
    result.rows.append(_row("static-mean", mean_replicas, gpu_hours,
                            summary))

    summary, gpu_hours, scaled = _autoscaled_run(
        execution_model, trace.fresh_copy(), autoscaler
    )
    row = _row(
        "autoscaled",
        f"{autoscaler.min_replicas}-{autoscaler.max_replicas}",
        gpu_hours,
        summary,
    )
    row["scaling_events"] = len(scaled.scaling_events)
    result.rows.append(row)
    return result


def _row(name, replicas, gpu_hours, summary):
    return {
        "provisioning": name,
        "replicas": replicas,
        "gpu_hours": gpu_hours,
        "viol_overall_pct": summary.violations.overall_pct,
        "viol_important_pct": summary.violations.important_pct,
        "q1_p99_s": summary.tier_percentile("Q1", 0.99),
        "relegated_pct": summary.violations.relegated_pct,
    }


if __name__ == "__main__":
    print(run().render())
