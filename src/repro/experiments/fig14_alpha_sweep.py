"""Figure 14: sensitivity to the hybrid prioritization parameter alpha.

Fixed alpha values (the paper plots 0, 2 and 4 ms/token) across a load
sweep: larger alpha lowers median latency under overload by shedding
long work, at the cost of violating long requests' deadlines — the
trade-off motivating load-adaptive tuning.
"""

from __future__ import annotations

from repro.core.priority import MS_PER_TOKEN
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import build_trace, make_scheduler, run_replica_trace
from repro.schedulers import QoServeConfig
from repro.workload.datasets import AZURE_CODE

DEFAULT_ALPHAS_MS = (0.0, 2.0, 4.0)
DEFAULT_LOADS = (2.0, 3.0, 4.0, 5.0, 6.0)


def run(
    scale: Scale = BENCH,
    alphas_ms: tuple[float, ...] = DEFAULT_ALPHAS_MS,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Reproduce Figure 14's alpha sweep."""
    execution_model = get_execution_model(deployment)
    base = build_trace(
        AZURE_CODE, qps=1.0, num_requests=scale.requests_for(max(loads)),
        seed=scale.seed
    )
    result = ExperimentResult(
        experiment="figure-14",
        title="Median latency vs long-request fairness across alpha",
        notes=[f"scale={scale.label}; alpha in ms/token; dataset=AzCode"],
    )
    for alpha_ms in alphas_ms:
        config = QoServeConfig(
            alpha=alpha_ms * MS_PER_TOKEN,
            # Isolate the prioritization knob, as the paper's ablation
            # figure does: relegation would mask the latency blow-up.
            eager_relegation=False,
        )
        for qps in loads:
            trace = base.scaled_arrivals(qps)
            scheduler = make_scheduler(
                "qoserve", execution_model, qoserve_config=config
            )
            summary, _ = run_replica_trace(execution_model, scheduler, trace)
            result.rows.append(
                {
                    "alpha_ms_per_token": alpha_ms,
                    "qps": qps,
                    "median_latency_s": summary.overall_percentiles[0.50],
                    "p99_latency_s": summary.overall_percentiles[0.99],
                    "violations_pct": summary.violations.overall_pct,
                    "long_violations_pct": summary.violations.long_pct,
                }
            )
    return result


if __name__ == "__main__":
    print(run().render())
