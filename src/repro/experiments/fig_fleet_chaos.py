"""Fleet chaos experiment: autoscaling policies under diurnal load + faults.

The QoServe silo-breaking claim extended to the *fleet* layer: one
heterogeneous pool (A100 + H100 slots) absorbs a diurnal load swing
while Poisson crash/recover chaos fires at it, and three procurement
policies compete on **goodput per GPU-hour** — SLO-attained requests
per unit of paid accelerator time:

* ``static-peak`` — classic siloed provisioning: buy enough replicas
  for the peak and keep them all run-long.  Best goodput, worst bill.
* ``busy-fraction`` — load-following autoscaling
  (:class:`~repro.cluster.fleet.BusyFractionAutoscaler`): scale on
  mean replica utilization.  Reacts only after the pool saturates, so
  the violations ship *before* the capacity arrives, and cold burn is
  invisible to it — it happily drains replicas while the error budget
  is on fire.
* ``burn-rate`` — SLO-driven autoscaling
  (:class:`~repro.cluster.fleet.BurnRateAutoscaler`): scale up when
  the error-budget burn rate runs hot, drain only when burn is cold
  *and* utilization is low, choose hardware by the violation mix.

All three see byte-identical arrivals and the *same* chaos plan
(armed against ``max_replicas`` — faults landing on slots a policy
never provisioned become ``fault_skipped`` events rather than crashes,
so lean fleets dodge some bullets: an emergent benefit of scaling
down).  As everywhere in :mod:`repro.experiments`, the drain-time KV
invariant is asserted for every run.
"""

from __future__ import annotations

from repro.cluster.fleet import (
    BurnRateAutoscaler,
    BusyFractionAutoscaler,
    DEFAULT_HARDWARE_CLASSES,
    FleetConfig,
    FleetDeployment,
)
from repro.core.request import Request
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import build_trace, scheduler_factory
from repro.faults.plan import FaultPlan
from repro.faults.policy import ResilienceConfig
from repro.obs.audit import audit_requests
from repro.simcore.rng import RngStreams
from repro.workload.arrivals import DiurnalArrivals
from repro.workload.datasets import AZURE_CODE

#: Shed free-tier arrivals once any replica of a small pool is down
#: (matches fig_faults' chaos stack).
CHAOS_RESILIENCE = ResilienceConfig(shed_free_below=0.8)


def _good(requests: list[Request]) -> int:
    return sum(
        1 for r in requests if r.is_finished and not r.violated_deadline
    )


def _span(requests: list[Request]) -> float:
    if not requests:
        return 1e-9
    return max(
        1e-9,
        max(r.arrival_time for r in requests)
        - min(r.arrival_time for r in requests),
    )


def _run_fleet(
    trace,
    execution_model,
    config: FleetConfig,
    autoscaler,
    plan: FaultPlan,
) -> FleetDeployment:
    fleet = FleetDeployment(
        execution_model,
        scheduler_factory("qoserve", execution_model),
        fleet=config,
        routing="perf-aware",
        fault_plan=plan,
        resilience=CHAOS_RESILIENCE,
        autoscaler=autoscaler,
    )
    fleet.submit_trace(trace.fresh_copy())
    fleet.run_until_drained(max_events=100_000_000)
    stats = fleet.fault_stats()
    assert stats["kv_blocks_resident"] == 0, (
        f"KV blocks leaked after fleet chaos run: {stats}"
    )
    return fleet


def _row(name: str, fleet: FleetDeployment) -> dict:
    summary = fleet.summarize()
    stats = fleet.fleet_stats()
    violations = summary.violations
    requests = fleet.all_requests()
    good = _good(requests)
    gpu_hours = stats["gpu_hours"]
    report = audit_requests(requests)
    causes = report.dominant_causes()
    top_cause = max(
        causes.items(), key=lambda kv: (kv[1], kv[0]), default=("-", 0)
    )[0]
    by_hw = stats["by_hardware"]
    return {
        "policy": name,
        "goodput_rps": good / _span(requests),
        "gpu_hours": gpu_hours,
        "cost": stats["cost"],
        "goodput_per_gpu_hour": good / max(gpu_hours, 1e-9),
        "final_fleet": "+".join(
            f"{n}x{c}" for c, n in sorted(by_hw.items()) if n
        ) or "-",
        "viol_overall_pct": violations.overall_pct,
        "viol_paid_pct": violations.important_pct,
        "crashes": stats["crashes"],
        "faults_skipped": stats["faults_skipped"],
        "shed": stats["shed"],
        "scaling_actions": stats["scaling_actions"],
        "max_burn": stats["max_burn_rate"],
        "top_cause": top_cause,
        "_attribution": report,
    }


def run(
    scale: Scale = BENCH,
    low_qps: float = 3.0,
    high_qps: float = 26.0,
    deployment: str = "llama3-8b",
    low_priority_fraction: float = 0.3,
    static_replicas: int = 5,
    elastic_initial: int = 2,
    max_replicas: int = 6,
    mtbf: float = 600.0,
    mttr: float = 30.0,
) -> ExperimentResult:
    """Diurnal swing + Poisson chaos across three fleet policies."""
    execution_model = get_execution_model(deployment)
    mean_qps = (low_qps + high_qps) / 2.0
    num_requests = scale.requests_for(mean_qps)
    # Four diurnal phases (low/high/low/high) across the expected
    # span; derived from scale parameters only, so the trace — and
    # therefore the whole experiment — is a pure function of the seed.
    expected_span = num_requests / mean_qps
    phase = expected_span / 4.0
    trace = build_trace(
        AZURE_CODE,
        qps=mean_qps,
        num_requests=num_requests,
        seed=scale.seed,
        low_priority_fraction=low_priority_fraction,
        arrivals=DiurnalArrivals(
            low_qps=low_qps, high_qps=high_qps, phase_duration=phase
        ),
    )
    streams = RngStreams(scale.seed)
    chaos = FaultPlan.poisson(
        num_replicas=max_replicas,
        duration=expected_span,
        mtbf=mtbf,
        mttr=mttr,
        rng=streams.stream("fleet.chaos"),
    )

    def fleet_config(initial: tuple[str, ...]) -> FleetConfig:
        return FleetConfig(
            classes=DEFAULT_HARDWARE_CLASSES,
            initial=initial,
            min_replicas=1,
            max_replicas=max_replicas,
            control_interval=phase / 8.0,
            provision_delay=phase / 4.0,
            max_step_up=2,
        )

    static = fleet_config(("a100",) * static_replicas)
    elastic = fleet_config(("a100",) * elastic_initial)

    result = ExperimentResult(
        experiment="fig-fleet-chaos",
        title=(
            f"Fleet autoscaling under chaos: diurnal {low_qps}-"
            f"{high_qps} QPS swing, Poisson MTBF={mtbf:.0f}s "
            f"MTTR={mttr:.0f}s, pool bound {max_replicas}"
        ),
        notes=[
            f"scale={scale.label}; dataset=AzCode; "
            f"free-tier fraction={low_priority_fraction}; "
            f"phase={phase:.0f}s; {len(chaos)} planned fault events",
            "goodput per GPU-hour = SLO-attained requests / paid "
            "accelerator hours; faults on unprovisioned slots are "
            "skipped, not crashes",
        ],
    )
    attribution: dict[str, object] = {}
    for name, config, autoscaler in (
        ("static-peak", static, None),
        ("busy-fraction", elastic, BusyFractionAutoscaler()),
        ("burn-rate", elastic, BurnRateAutoscaler()),
    ):
        fleet = _run_fleet(trace, execution_model, config, autoscaler, chaos)
        row = _row(name, fleet)
        attribution[name] = row.pop("_attribution")
        result.rows.append(row)
    result.extras["attribution"] = attribution

    by_policy = {row["policy"]: row for row in result.rows}
    burn = by_policy["burn-rate"]
    busy = by_policy["busy-fraction"]
    result.notes.append(
        "burn-rate vs busy-fraction efficiency: "
        f"{burn['goodput_per_gpu_hour']:.1f} vs "
        f"{busy['goodput_per_gpu_hour']:.1f} good requests/GPU-hour"
    )
    return result


if __name__ == "__main__":
    print(run().render())
