"""The policy arena: every scheduler raced, every loss explained.

ROADMAP item 4's standing harness: run every registered scheduler
kind over the same workload sweep, rank them on aggregate goodput,
then *explain* each loss with :mod:`repro.obs.diff` — the winner's
recorded trace is diffed against every loser at every load, and the
cause-delta accounting (which sums exactly to the goodput gap)
produces sentences like "medha loses 4.9pp goodput to qoserve, 100%
attributed to admission_queue on Q1".  New schedulers added to
:data:`repro.api.SCHEDULER_KINDS` join the arena automatically, so
the sliding-window and preemption-granularity competitors land with a
judge already seated.

The sweep fans out over ``--jobs`` worker processes; each cell ships
its recorded event stream back to the parent, which performs every
diff in fixed task order — the report is byte-identical at any job
count (pinned by ``tests/test_experiments_arena.py``).
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.cache import cached_cell
from repro.experiments.configs import SMOKE, Scale, get_execution_model
from repro.experiments.parallel import pmap
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    build_trace,
    make_scheduler,
    run_replica_trace,
)
from repro.obs import ListSink, TraceRecorder, TracingObserver
from repro.obs.diff import diff_runs
from repro.obs.sketch import QuantileSketch, merge_sketches
from repro.workload.datasets import AZURE_CODE

#: Every contender: the full registered scheduler registry.
from repro.api import SCHEDULER_KINDS as ALL_SCHEMES

DEFAULT_LOADS = (2.0, 3.0, 4.5, 6.0)


@lru_cache(maxsize=4)
def _base_trace(num_requests: int, seed: int):
    """Per-process base trace; scaled_arrivals clones it per cell."""
    return build_trace(
        AZURE_CODE, qps=1.0, num_requests=num_requests, seed=seed
    )


def _arena_cell(task: tuple[str, str, float, int, int]) -> dict:
    """One (scheme, qps) bout; a pmap worker function.

    The row carries the full recorded event stream (``_events``) back
    to the parent — the winner is unknown until every bout finishes,
    so diffing has to happen centrally.
    """
    deployment, scheme, qps, num_requests, seed = task

    def compute() -> dict:
        execution_model = get_execution_model(deployment)
        trace = _base_trace(num_requests, seed).scaled_arrivals(qps)
        sink = ListSink()
        observer = TracingObserver(recorder=TraceRecorder([sink]))
        scheduler = make_scheduler(scheme, execution_model)
        summary, _ = run_replica_trace(
            execution_model, scheduler, trace, observer=observer
        )
        completed = summary.finished
        violated = sum(
            1 for r in trace if r.completion_time is not None
            and r.violated_deadline
        )
        return {
            "scheme": scheme,
            "qps": qps,
            "completed": completed,
            "violated": violated,
            "good": completed - violated,
            "_events": sink.events,
        }

    return cached_cell(
        compute,
        figure="arena",
        dataset=AZURE_CODE.name,
        deployment=deployment,
        scheme=scheme,
        qps=qps,
        num_requests=num_requests,
        seed=seed,
    )


def run(
    scale: Scale = SMOKE,
    schemes: tuple[str, ...] = ALL_SCHEMES,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    deployment: str = "llama3-8b",
    jobs: int | None = None,
) -> ExperimentResult:
    """Race ``schemes`` over ``loads``; rank and explain every loss.

    Rows are ranked by aggregate goodput percentage (ties break on
    scheme name); each non-winner row names the attribution bucket
    carrying most of its gap to the winner, and the notes spell the
    explanations out.  ``extras['cause_deltas']`` keeps the full
    per-loser cause accounting and ``extras['phase_delta_sketches']``
    the merged per-tier phase-delta distributions, both mergeable and
    byte-identical at any job count.
    """
    num_requests = scale.requests_for(max(loads))
    tasks = [
        (deployment, scheme, qps, num_requests, scale.seed)
        for scheme in schemes
        for qps in loads
    ]
    rows = pmap(
        _arena_cell, tasks, jobs=jobs, warm_deployments=(deployment,)
    )

    # Reassemble per scheme in task order: events per load + aggregate
    # goodput over the whole sweep.
    events: dict[str, dict[float, list]] = {}
    totals: dict[str, dict[str, int]] = {}
    for task, row in zip(tasks, rows):
        scheme, qps = task[1], task[2]
        events.setdefault(scheme, {})[qps] = row.pop("_events")
        agg = totals.setdefault(
            scheme, {"completed": 0, "violated": 0, "good": 0}
        )
        for key in agg:
            agg[key] += row[key]

    def goodput_pct(scheme: str) -> float:
        agg = totals[scheme]
        if not agg["completed"]:
            return 0.0
        return 100.0 * agg["good"] / agg["completed"]

    ranking = sorted(schemes, key=lambda s: (-goodput_pct(s), s))
    winner = ranking[0]

    # Diff the winner against every loser at every load, in fixed
    # order; merge cause deltas and phase-delta sketches across loads.
    cause_deltas: dict[str, dict[str, int]] = {}
    tier_cause_deltas: dict[str, dict[str, dict[str, int]]] = {}
    sketches: dict[str, dict[str, QuantileSketch]] = {}
    divergence_at: dict[str, int | None] = {}
    for scheme in ranking[1:]:
        causes: dict[str, int] = {}
        tier_causes: dict[str, dict[str, int]] = {}
        first_div: int | None = None
        for qps in loads:
            diff = diff_runs(
                events[winner][qps], events[scheme][qps],
                base_label=winner, other_label=scheme,
            )
            for cause, delta in diff.cause_goodput_delta.items():
                causes[cause] = causes.get(cause, 0) + delta
            for tier, per_tier in diff.tier_cause_goodput_delta.items():
                bucket = tier_causes.setdefault(tier, {})
                for cause, delta in per_tier.items():
                    bucket[cause] = bucket.get(cause, 0) + delta
            for tier, named in diff.phase_delta_sketches.items():
                merged = sketches.setdefault(f"{scheme}/{tier}", {})
                for name, sketch in named.items():
                    merged[name] = merge_sketches(
                        [merged.get(name), sketch.to_dict()]
                    )
            if diff.first_divergence is not None and first_div is None:
                first_div = diff.first_divergence.index
        cause_deltas[scheme] = causes
        tier_cause_deltas[scheme] = tier_causes
        divergence_at[scheme] = first_div

    result = ExperimentResult(
        experiment="arena",
        title="Policy arena: schedulers ranked, losses attributed "
              f"({AZURE_CODE.name})",
        notes=[
            f"scale={scale.label}; deployment={deployment}; "
            f"loads={list(loads)} qps; "
            f"winner by aggregate goodput: {winner}",
        ],
    )
    for rank, scheme in enumerate(ranking, start=1):
        agg = totals[scheme]
        row = {
            "rank": rank,
            "scheme": scheme,
            "goodput_pct": goodput_pct(scheme),
            "good": agg["good"],
            "completed": agg["completed"],
            "violated": agg["violated"],
            "gap_pp": goodput_pct(winner) - goodput_pct(scheme),
            "top_loss_cause": "-",
            "loss_share_pct": 0.0,
        }
        if scheme != winner:
            explanation = _explain_loss(
                scheme, winner, row["gap_pp"],
                cause_deltas[scheme], tier_cause_deltas[scheme],
            )
            if explanation is not None:
                cause, share, tier, sentence = explanation
                row["top_loss_cause"] = cause
                row["loss_share_pct"] = 100.0 * share
                result.notes.append(sentence)
            else:
                result.notes.append(
                    f"{scheme} ties {winner} on goodput "
                    "(no attribution deltas)"
                )
        result.rows.append(row)

    result.extras["cause_deltas"] = {
        scheme: {
            cause: cause_deltas[scheme][cause]
            for cause in sorted(cause_deltas[scheme])
        }
        for scheme in ranking[1:]
    }
    result.extras["first_divergence"] = {
        scheme: divergence_at[scheme] for scheme in ranking[1:]
    }
    result.extras["phase_delta_sketches"] = {
        key: {
            name: sketch for name, sketch in sorted(named.items())
        }
        for key, named in sorted(sketches.items())
    }
    return result


def _explain_loss(
    scheme: str,
    winner: str,
    gap_pp: float,
    causes: dict[str, int],
    tier_causes: dict[str, dict[str, int]],
) -> tuple[str, float, str, str] | None:
    """One sentence: who loses how much, mostly to what, and where.

    The deltas are winner->loser, so losses are negative; the top
    cause is the bucket carrying the largest share of the summed
    losses, and the tier is where that bucket bit hardest.  Ties break
    on name for deterministic reports.
    """
    losses = {c: -d for c, d in causes.items() if d < 0}
    total = sum(losses.values())
    if not total:
        return None
    cause = max(sorted(losses), key=lambda c: losses[c])
    share = losses[cause] / total
    tier = max(
        sorted(tier_causes),
        key=lambda t: -tier_causes[t].get(cause, 0),
    )
    sentence = (
        f"{scheme} loses {gap_pp:.1f}pp goodput to {winner}, "
        f"{share:.0%} attributed to {cause} on {tier}"
    )
    return cause, share, tier, sentence


if __name__ == "__main__":
    print(run().render())
