"""Figure 8: goodput with prefill/decode disaggregation.

QoServe's prioritization and relegation applied to the prefill nodes
of a disaggregated deployment (Section 4.1.3): chunk budget 8K (no TBT
constraint on prefill nodes), Azure Conv trace, identical fixed-pace
decode pool across schemes.  Gains are smaller than colocated because
the large baseline chunk leaves no dynamic-chunking headroom.
"""

from __future__ import annotations

from repro.cluster.disagg import DisaggregatedDeployment
from repro.cluster.capacity import find_max_goodput, CapacityResult
from repro.experiments.cache import cached_cell
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.parallel import pmap
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import build_trace, scheduler_factory
from repro.metrics.summary import RunSummary
from repro.perfmodel.execution import ExecutionModel
from repro.schedulers import QoServeConfig
from repro.workload.datasets import AZURE_CONV
from repro.workload.trace import Trace

SCHEMES = ("fcfs", "edf", "qoserve")
DISAGG_CHUNK = 8192
DEFAULT_DEPLOYMENTS = ("llama3-8b", "qwen-7b", "llama3-70b")


QPS_HIGH = 16.0
MIN_PROBE_DURATION = 300.0


def _disagg_goodput(
    scheme: str,
    execution_model: ExecutionModel,
    num_requests: int,
    seed: int,
) -> CapacityResult:
    # Every probe spans at least MIN_PROBE_DURATION simulated seconds:
    # a short burst at high QPS hides beyond-capacity operation in the
    # long-TTLT tiers and the drain (same flooring goodput_search
    # applies for colocated capacity).
    max_requests = max(num_requests, int(QPS_HIGH * MIN_PROBE_DURATION))
    base = build_trace(
        AZURE_CONV, qps=1.0, num_requests=max_requests, seed=seed
    )
    if scheme == "qoserve":
        kwargs = {
            "qoserve_config": QoServeConfig(
                max_chunk_size=DISAGG_CHUNK, fixed_chunk_size=DISAGG_CHUNK
            )
        }
    else:
        kwargs = {"chunk_size": DISAGG_CHUNK}

    def evaluate(qps: float) -> RunSummary:
        deployment = DisaggregatedDeployment(
            execution_model,
            scheduler_factory(scheme, execution_model, **kwargs),
            num_prefill_replicas=1,
        )
        needed = max(num_requests, int(qps * MIN_PROBE_DURATION))
        trace = base.scaled_arrivals(qps)
        if needed < len(trace):
            trace = Trace(
                trace.requests[:needed],
                dataset_name=trace.dataset_name,
                seed=trace.seed,
            )
        deployment.submit_trace(trace)
        deployment.run()
        summary = deployment.summarize()
        arrivals = [r.arrival_time for r in trace]
        summary.drain_time = deployment.simulator.now - max(arrivals)
        summary.arrival_span = max(arrivals) - min(arrivals)
        return summary

    return find_max_goodput(evaluate, qps_high=QPS_HIGH, tolerance=0.2)


def _disagg_cell(task: tuple[str, str, int, int]) -> dict:
    """One (deployment, scheme) disaggregated goodput bisection."""
    deployment_name, scheme, num_requests, seed = task

    def compute() -> dict:
        capacity = _disagg_goodput(
            scheme, get_execution_model(deployment_name), num_requests, seed
        )
        return {
            "deployment": deployment_name,
            "scheme": f"Disagg-{scheme.upper()}"
            if scheme in ("fcfs", "edf")
            else "Disagg-QoServe",
            "goodput_qps": capacity.max_qps,
        }

    return cached_cell(
        compute,
        figure="fig08",
        deployment=deployment_name,
        scheme=scheme,
        chunk=DISAGG_CHUNK,
        num_requests=num_requests,
        seed=seed,
    )


def run(
    scale: Scale = BENCH,
    deployments: tuple[str, ...] = DEFAULT_DEPLOYMENTS,
    schemes: tuple[str, ...] = SCHEMES,
    jobs: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 8's disaggregated prefill goodput.

    Each (deployment, scheme) bisection is independent and fans out
    over ``jobs`` worker processes (``None`` reads ``--jobs``).
    """
    result = ExperimentResult(
        experiment="figure-08",
        title="Max goodput per prefill replica, PD disaggregation",
        notes=[
            f"scale={scale.label}; dataset=AzConv; chunk={DISAGG_CHUNK}; "
            "decode pool identical across schemes"
        ],
    )
    tasks = [
        (deployment_name, scheme, scale.num_requests, scale.seed)
        for deployment_name in deployments
        for scheme in schemes
    ]
    result.rows.extend(
        pmap(_disagg_cell, tasks, jobs=jobs, warm_deployments=deployments)
    )
    return result


if __name__ == "__main__":
    print(run().render())
