"""Figures 10 and 11: latency and deadline violations under load.

One load sweep powers both figures: per QoS bucket p50/p95 of the
governing latency (Figure 10) and the violation breakdown — overall,
short vs long, and per bucket (Figure 11) — for Sarathi-FCFS,
Sarathi-SRPF, Sarathi-EDF and QoServe on the Azure Code trace.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.cache import cached_cell
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.parallel import pmap
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import build_trace, make_scheduler, run_replica_trace
from repro.metrics.latency import governing_latency, latency_percentiles
from repro.obs.sketch import QuantileSketch, merge_sketches
from repro.workload.datasets import AZURE_CODE

SCHEMES = ("fcfs", "srpf", "edf", "qoserve")
DEFAULT_LOADS = (2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0)


@lru_cache(maxsize=4)
def _base_trace(num_requests: int, seed: int):
    """Per-process base trace (deterministic, so identical in every
    worker); scaled_arrivals clones it fresh per cell."""
    return build_trace(
        AZURE_CODE, qps=1.0, num_requests=num_requests, seed=seed
    )


def _sweep_cell(task: tuple[str, str, float, int, int]) -> dict:
    """One (scheme, qps) cell of the sweep; a pmap worker function."""
    deployment, scheme, qps, num_requests, seed = task

    def compute() -> dict:
        execution_model = get_execution_model(deployment)
        trace = _base_trace(num_requests, seed).scaled_arrivals(qps)
        scheduler = make_scheduler(scheme, execution_model)
        summary, _ = run_replica_trace(execution_model, scheduler, trace)
        row = {
            "scheme": f"Sarathi-{scheme.upper()}"
            if scheme != "qoserve"
            else "QoServe",
            "qps": qps,
        }
        for tier in ("Q1", "Q2", "Q3"):
            tier_requests = [r for r in trace if r.qos.name == tier]
            pcts = latency_percentiles(tier_requests, (0.50, 0.95))
            row[f"{tier.lower()}_p50_s"] = pcts[0.50]
            row[f"{tier.lower()}_p95_s"] = pcts[0.95]
        violations = summary.violations
        row.update(
            {
                "viol_overall_pct": violations.overall_pct,
                "viol_short_pct": violations.short_pct,
                "viol_long_pct": violations.long_pct,
                "viol_q1_pct": violations.tier("Q1"),
                "viol_q2_pct": violations.tier("Q2"),
                "viol_q3_pct": violations.tier("Q3"),
                "tbt_miss_pct": violations.tbt_miss_pct,
            }
        )
        # Serialized per-tier governing-latency sketches ride along in
        # the cell payload (and through the disk cache): the parent
        # merges them instead of ever seeing raw samples, which is how
        # --jobs N workers stream percentiles back.
        sketches: dict[str, QuantileSketch] = {}
        for request in trace:
            value = governing_latency(request, None)
            if value == value and value != float("inf"):
                sketches.setdefault(
                    request.qos.name, QuantileSketch()
                ).add(value)
        row["_sketches"] = {
            tier: sketches[tier].to_dict() for tier in sorted(sketches)
        }
        return row

    return cached_cell(
        compute,
        figure="fig10_11",
        dataset=AZURE_CODE.name,
        deployment=deployment,
        scheme=scheme,
        qps=qps,
        num_requests=num_requests,
        seed=seed,
    )


def run(
    scale: Scale = BENCH,
    schemes: tuple[str, ...] = SCHEMES,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    deployment: str = "llama3-8b",
    jobs: int | None = None,
) -> ExperimentResult:
    """Run the combined Figure 10/11 sweep.

    The scheme x QPS grid fans out over ``jobs`` worker processes
    (``None`` reads the process-wide ``--jobs`` setting); results are
    ordered by task, so the table is byte-identical at any job count.
    """
    num_requests = scale.requests_for(max(loads))
    result = ExperimentResult(
        experiment="figure-10-11",
        title="Latency and deadline violations vs load (AzCode)",
        notes=[f"scale={scale.label}; deployment={deployment}"],
    )
    tasks = [
        (deployment, scheme, qps, num_requests, scale.seed)
        for scheme in schemes
        for qps in loads
    ]
    rows = pmap(
        _sweep_cell, tasks, jobs=jobs, warm_deployments=(deployment,)
    )
    # Merge the per-cell sketches scheme by scheme, in task order, so
    # the merged sketch is byte-identical at any job count (pmap
    # returns results in task order and sketch merging is exact).
    merged: dict[str, QuantileSketch] = {}
    for task, row in zip(tasks, rows):
        scheme = task[1]
        for tier, payload in row.pop("_sketches", {}).items():
            key = f"{scheme}/{tier}"
            merged[key] = merge_sketches([merged.get(key), payload])
    result.rows.extend(rows)
    result.extras["latency_sketches"] = merged
    if merged:
        q1 = {
            key.split("/")[0]: sketch
            for key, sketch in merged.items()
            if key.endswith("/Q1")
        }
        result.notes.append(
            "Q1 governing-latency p99 across all loads (merged "
            "sketches): " + ", ".join(
                f"{scheme}={sketch.quantile(0.99):.3f}s"
                for scheme, sketch in sorted(q1.items())
            )
        )
    return result


def figure10_view(result: ExperimentResult) -> ExperimentResult:
    """Project the sweep onto Figure 10's latency panels."""
    view = ExperimentResult(
        experiment="figure-10",
        title="Per-tier p50/p95 latency vs load",
        notes=list(result.notes),
    )
    keep = (
        "scheme", "qps",
        "q1_p50_s", "q2_p50_s", "q3_p50_s",
        "q1_p95_s", "q2_p95_s", "q3_p95_s",
    )
    for row in result.rows:
        view.rows.append({k: row[k] for k in keep})
    return view


def figure11_view(result: ExperimentResult) -> ExperimentResult:
    """Project the sweep onto Figure 11's violation panels."""
    view = ExperimentResult(
        experiment="figure-11",
        title="Deadline violations: overall, by length, by tier",
        notes=list(result.notes),
    )
    keep = (
        "scheme", "qps",
        "viol_overall_pct", "viol_short_pct", "viol_long_pct",
        "viol_q1_pct", "viol_q2_pct", "viol_q3_pct",
    )
    for row in result.rows:
        view.rows.append({k: row[k] for k in keep})
    return view


if __name__ == "__main__":
    combined = run()
    print(figure10_view(combined).render())
    print()
    print(figure11_view(combined).render())
