"""Shared execution helpers for the experiment drivers.

These are thin delegating wrappers: the canonical implementations
moved to :mod:`repro.api` (the unified public surface), and the
wrappers here keep every existing experiment byte-identical.  New code
should call :mod:`repro.api` directly.
"""

from __future__ import annotations

from typing import Callable

from repro.api import (
    SCHEDULER_KINDS,
    ServeConfig,
    Session,
    build_trace,
    default_tier_names,
    engine_scheduler_stats,
    make_scheduler,
)
from repro.cluster.capacity import CapacityResult, find_max_goodput
from repro.engine.interface import Scheduler
from repro.engine.replica import ReplicaEngine
from repro.metrics.summary import RunSummary
from repro.obs.observer import Observer
from repro.perfmodel.execution import ExecutionModel
from repro.schedulers import QoServeConfig
from repro.workload.datasets import DatasetSpec
from repro.workload.tiers import TierMix
from repro.workload.trace import Trace

__all__ = [
    "SCHEDULER_KINDS",
    "make_scheduler",
    "scheduler_factory",
    "build_trace",
    "run_replica_trace",
    "engine_scheduler_stats",
    "goodput_search",
    "default_tier_names",
]


def scheduler_factory(
    kind: str, execution_model: ExecutionModel, **kwargs
) -> Callable[[], Scheduler]:
    """A zero-argument factory for deployments needing one per replica."""
    return lambda: make_scheduler(kind, execution_model, **kwargs)


def run_replica_trace(
    execution_model: ExecutionModel,
    scheduler: Scheduler,
    trace: Trace,
    record_iterations: bool = False,
    max_events: int = 50_000_000,
    observer: Observer | None = None,
    audit: bool = False,
) -> tuple[RunSummary, ReplicaEngine]:
    """Simulate one replica over a trace and summarize.

    The simulation runs to drain (all requests complete); the summary
    is taken at the drain time so every deadline verdict is final.
    ``observer`` forwards to :class:`ReplicaEngine` (``None`` adopts
    the process-wide default, usually the no-op observer).

    ``audit`` additionally records the run's trace events in memory and
    attributes every completed request's latency to named phases
    (:mod:`repro.obs.audit`); the resulting
    :class:`~repro.obs.audit.AttributionReport` lands in
    ``summary.attribution``.  The audit collector chains with — never
    displaces — whatever observer is in effect, and the summary's
    serialized form is unchanged (attribution is not exported).

    Delegates to :class:`repro.api.Session`; outputs are byte-identical
    to the pre-facade implementation.
    """
    session = Session(
        ServeConfig(
            record_iterations=record_iterations,
            audit=audit,
            max_events=max_events,
        ),
        execution_model=execution_model,
        scheduler=scheduler,
        observer=observer,
    )
    for request in trace:
        session.submit(request)
    session.advance(max_events=max_events)
    engine = session.engine
    assert engine is not None
    return session.summary(requests=list(trace)), engine


def goodput_search(
    kind: str,
    execution_model: ExecutionModel,
    dataset: DatasetSpec,
    num_requests: int,
    seed: int = 42,
    mix: TierMix | None = None,
    chunk_size: int = 256,
    qoserve_config: QoServeConfig | None = None,
    qps_high: float = 16.0,
    tolerance: float = 0.15,
    min_duration: float = 420.0,
    scheduler_kwargs: dict | None = None,
) -> CapacityResult:
    """Max per-replica goodput for one (scheduler, dataset) pair.

    Every probe's trace spans at least ``min_duration`` simulated
    seconds: a short burst at high QPS would hide beyond-capacity
    operation inside the long-TTLT tiers and the drain phase, so the
    probe size grows with the probed rate (the base trace is built
    once at the largest size and prefix-truncated per probe, keeping
    request bodies comparable across rates).
    """
    num_requests = max(num_requests, int(3.5 * 180))
    max_requests = max(num_requests, int(qps_high * min_duration))
    base = build_trace(dataset, qps=1.0, num_requests=max_requests,
                       seed=seed, mix=mix)

    def evaluate(qps: float) -> RunSummary:
        needed = max(num_requests, int(qps * min_duration))
        trace = base.scaled_arrivals(qps)
        if needed < len(trace):
            trace = Trace(
                trace.requests[:needed],
                dataset_name=trace.dataset_name,
                seed=trace.seed,
            )
        scheduler = make_scheduler(
            kind,
            execution_model,
            chunk_size=chunk_size,
            qoserve_config=qoserve_config,
            **(scheduler_kwargs or {}),
        )
        summary, _ = run_replica_trace(execution_model, scheduler, trace)
        return summary

    return find_max_goodput(
        evaluate, qps_high=qps_high, tolerance=tolerance
    )
