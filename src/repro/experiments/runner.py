"""Shared execution helpers for the experiment drivers."""

from __future__ import annotations

from typing import Callable

from repro.cluster.capacity import CapacityResult, find_max_goodput
from repro.core.qos import DEFAULT_TIERS
from repro.engine.interface import Scheduler
from repro.engine.replica import ReplicaConfig, ReplicaEngine
from repro.metrics.summary import RunSummary, summarize_run
from repro.obs.metrics import DEFAULT_CHUNK_BUCKETS, bucket_counts
from repro.obs.observer import Observer
from repro.perfmodel.execution import ExecutionModel
from repro.schedulers import (
    ConServeScheduler,
    EDFScheduler,
    FCFSScheduler,
    MedhaScheduler,
    QoServeConfig,
    QoServeScheduler,
    SJFScheduler,
    SRPFScheduler,
)
from repro.simcore.simulator import Simulator
from repro.workload.arrivals import ArrivalProcess, PoissonArrivals
from repro.workload.datasets import DatasetSpec
from repro.workload.tiers import TierAssigner, TierMix
from repro.workload.trace import Trace, TraceBuilder

#: Scheduler identifiers accepted by :func:`make_scheduler`.  The
#: "sarathi-" prefix used in the paper's figures maps to the bare
#: policies: every baseline here runs on the chunked Sarathi engine.
SCHEDULER_KINDS = (
    "fcfs",
    "sjf",
    "srpf",
    "edf",
    "qoserve",
    "qoserve-oracle",
    "medha",
    "conserve",
)


def make_scheduler(
    kind: str,
    execution_model: ExecutionModel,
    chunk_size: int = 256,
    qoserve_config: QoServeConfig | None = None,
    **kwargs,
) -> Scheduler:
    """Instantiate a scheduler by name.

    Args:
        kind: One of :data:`SCHEDULER_KINDS` (case-insensitive,
            "sarathi-" prefix tolerated).
        execution_model: Needed by predictor-backed schedulers.
        chunk_size: Fixed token budget for the Sarathi baselines.
        qoserve_config: Overrides the default QoServe configuration.
        **kwargs: Forwarded to the scheduler constructor.
    """
    key = kind.lower().removeprefix("sarathi-")
    if key == "fcfs":
        return FCFSScheduler(chunk_size=chunk_size, **kwargs)
    if key == "sjf":
        return SJFScheduler(chunk_size=chunk_size, **kwargs)
    if key == "srpf":
        return SRPFScheduler(chunk_size=chunk_size, **kwargs)
    if key == "edf":
        return EDFScheduler(chunk_size=chunk_size, **kwargs)
    if key == "qoserve":
        return QoServeScheduler(
            execution_model, qoserve_config or QoServeConfig(), **kwargs
        )
    if key == "qoserve-oracle":
        config = qoserve_config or QoServeConfig(use_forest_predictor=False)
        return QoServeScheduler(execution_model, config, **kwargs)
    if key == "medha":
        return MedhaScheduler(execution_model, **kwargs)
    if key == "conserve":
        return ConServeScheduler(**kwargs)
    raise KeyError(f"unknown scheduler kind {kind!r}")


def scheduler_factory(
    kind: str, execution_model: ExecutionModel, **kwargs
) -> Callable[[], Scheduler]:
    """A zero-argument factory for deployments needing one per replica."""
    return lambda: make_scheduler(kind, execution_model, **kwargs)


def build_trace(
    dataset: DatasetSpec,
    qps: float,
    num_requests: int,
    seed: int = 42,
    mix: TierMix | None = None,
    low_priority_fraction: float = 0.0,
    arrivals: ArrivalProcess | None = None,
) -> Trace:
    """Standard trace construction used across experiments."""
    assigner = TierAssigner(
        mix=mix or TierMix.equal_thirds(),
        low_priority_fraction=low_priority_fraction,
    )
    return TraceBuilder(
        dataset,
        arrivals=arrivals or PoissonArrivals(qps),
        tier_assigner=assigner,
        seed=seed,
    ).build(num_requests)


def run_replica_trace(
    execution_model: ExecutionModel,
    scheduler: Scheduler,
    trace: Trace,
    record_iterations: bool = False,
    max_events: int = 50_000_000,
    observer: Observer | None = None,
    audit: bool = False,
) -> tuple[RunSummary, ReplicaEngine]:
    """Simulate one replica over a trace and summarize.

    The simulation runs to drain (all requests complete); the summary
    is taken at the drain time so every deadline verdict is final.
    ``observer`` forwards to :class:`ReplicaEngine` (``None`` adopts
    the process-wide default, usually the no-op observer).

    ``audit`` additionally records the run's trace events in memory and
    attributes every completed request's latency to named phases
    (:mod:`repro.obs.audit`); the resulting
    :class:`~repro.obs.audit.AttributionReport` lands in
    ``summary.attribution``.  The audit collector chains with — never
    displaces — whatever observer is in effect, and the summary's
    serialized form is unchanged (attribution is not exported).
    """
    from repro.obs.observer import get_default_observer

    audit_sink = None
    if audit:
        from repro.obs.observer import MultiObserver, TracingObserver
        from repro.obs.trace import ListSink, TraceRecorder

        audit_sink = ListSink()
        collector = TracingObserver(TraceRecorder([audit_sink]))
        effective = observer if observer is not None else (
            get_default_observer()
        )
        observer = MultiObserver([collector, effective])

    simulator = Simulator()
    engine = ReplicaEngine(
        simulator,
        execution_model,
        scheduler,
        ReplicaConfig(record_iterations=record_iterations),
        observer=observer,
    )
    for request in trace:
        engine.submit(request)
    simulator.run(max_events=max_events)
    summary = summarize_run(engine.submitted, now=simulator.now)
    if len(trace) > 0:
        last_arrival = max(r.arrival_time for r in trace)
        first_arrival = min(r.arrival_time for r in trace)
        summary.drain_time = simulator.now - last_arrival
        summary.arrival_span = last_arrival - first_arrival
    summary.scheduler_stats = engine_scheduler_stats(engine)
    if audit_sink is not None:
        from repro.obs.audit import audit_events

        summary.attribution = audit_events(audit_sink.events)
    return summary, engine


def engine_scheduler_stats(engine: ReplicaEngine) -> dict:
    """Flatten the engine's always-on decision counters for export.

    These come from plain integer counters kept by the engine itself
    (not the optional :mod:`repro.obs` observer), so they are available
    — and identical — whether or not tracing is enabled.
    """
    relegations_by_tier: dict[str, int] = {}
    for request in engine.submitted:
        if request.relegated:
            tier = request.qos.name
            relegations_by_tier[tier] = relegations_by_tier.get(tier, 0) + 1
    return {
        "relegations_by_tier": dict(sorted(relegations_by_tier.items())),
        "relegations_total": sum(relegations_by_tier.values()),
        "preemptions": engine.stall_preemptions,
        "decode_evictions": engine.decode_evictions,
        "kv_high_water_utilization": engine.kv_cache.high_water_utilization,
        "chunk_size_histogram": bucket_counts(
            engine.chunk_tokens_hist, DEFAULT_CHUNK_BUCKETS
        ),
        "iterations": engine.iterations_run,
    }


def goodput_search(
    kind: str,
    execution_model: ExecutionModel,
    dataset: DatasetSpec,
    num_requests: int,
    seed: int = 42,
    mix: TierMix | None = None,
    chunk_size: int = 256,
    qoserve_config: QoServeConfig | None = None,
    qps_high: float = 16.0,
    tolerance: float = 0.15,
    min_duration: float = 420.0,
    scheduler_kwargs: dict | None = None,
) -> CapacityResult:
    """Max per-replica goodput for one (scheduler, dataset) pair.

    Every probe's trace spans at least ``min_duration`` simulated
    seconds: a short burst at high QPS would hide beyond-capacity
    operation inside the long-TTLT tiers and the drain phase, so the
    probe size grows with the probed rate (the base trace is built
    once at the largest size and prefix-truncated per probe, keeping
    request bodies comparable across rates).
    """
    num_requests = max(num_requests, int(3.5 * 180))
    max_requests = max(num_requests, int(qps_high * min_duration))
    base = build_trace(dataset, qps=1.0, num_requests=max_requests,
                       seed=seed, mix=mix)

    def evaluate(qps: float) -> RunSummary:
        needed = max(num_requests, int(qps * min_duration))
        trace = base.scaled_arrivals(qps)
        if needed < len(trace):
            trace = Trace(
                trace.requests[:needed],
                dataset_name=trace.dataset_name,
                seed=trace.seed,
            )
        scheduler = make_scheduler(
            kind,
            execution_model,
            chunk_size=chunk_size,
            qoserve_config=qoserve_config,
            **(scheduler_kwargs or {}),
        )
        summary, _ = run_replica_trace(execution_model, scheduler, trace)
        return summary

    return find_max_goodput(
        evaluate, qps_high=qps_high, tolerance=tolerance
    )


def default_tier_names() -> tuple[str, ...]:
    """Names of the Table 3 tiers, in order."""
    return tuple(t.name for t in DEFAULT_TIERS)
