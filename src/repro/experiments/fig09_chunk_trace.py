"""Figure 9: dynamic chunk sizes over consecutive batches.

Runs QoServe with iteration telemetry on the Azure Conv trace and
extracts a window of consecutive iterations: chunk size chosen and
batch execution time per iteration.  When slack accumulates, chunk
sizes rise toward the 2500 saturation point; with strict interactive
decodes in flight they fall back toward the small-chunk regime.
"""

from __future__ import annotations

from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import build_trace, make_scheduler, run_replica_trace
from repro.workload.datasets import AZURE_CONV


def run(
    scale: Scale = BENCH,
    qps: float = 3.2,
    window: int = 200,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Reproduce Figure 9's chunk-size/latency trace."""
    execution_model = get_execution_model(deployment)
    trace = build_trace(
        AZURE_CONV, qps=qps, num_requests=scale.num_requests, seed=scale.seed
    )
    scheduler = make_scheduler("qoserve", execution_model)
    summary, engine = run_replica_trace(
        execution_model, scheduler, trace, record_iterations=True,
        audit=True,
    )
    records = engine.iteration_records
    # Pick the window showing the most chunk-size dynamics — Figure 9's
    # point is the scheduler swinging between small (strict decode in
    # flight) and large (slack available) chunks, so score windows by
    # prefill activity times the chunk-size range they exhibit.
    def score(start: int) -> float:
        slice_ = records[start : start + window]
        chunks = [r.prefill_tokens for r in slice_ if r.prefill_tokens > 0]
        if not chunks:
            return 0.0
        return len(chunks) * (max(chunks) - min(chunks) + 1)

    candidates = range(0, max(1, len(records) - window), max(1, window // 4))
    start = max(candidates, key=score, default=0)
    selected = records[start : start + window]
    result = ExperimentResult(
        experiment="figure-09",
        title="Dynamic chunk size and execution time per batch",
        notes=[
            f"scale={scale.label}; dataset=AzConv; qps={qps}; "
            f"window of {len(selected)} iterations from batch {start}",
            "chunk-size distribution over the whole run: "
            + ", ".join(
                f"{bucket}={count}"
                for bucket, count in summary.scheduler_stats[
                    "chunk_size_histogram"
                ].items()
                if count
            ),
        ],
    )
    for i, record in enumerate(selected):
        result.rows.append(
            {
                "batch_id": start + i,
                "chunk_size": record.prefill_tokens,
                "exec_time_ms": record.exec_time * 1e3,
                "num_decodes": record.num_decodes,
            }
        )
    # Dynamic chunking's cost side: how much of total latency the
    # chunked prefills spent waiting between their slices.
    share = summary.attribution.phase_share()
    result.extras["attribution"] = summary.attribution
    result.notes.append(
        f"latency attribution across the run: "
        f"chunk_stall={share['chunk_stall']:.1%}, "
        f"prefill_compute={share['prefill_compute']:.1%}, "
        f"queue={share['admission_queue']:.1%}, "
        f"decode={share['decode']:.1%}"
    )
    return result


if __name__ == "__main__":
    print(run().render())
