"""Design-choice ablations beyond the paper's Table 5.

DESIGN.md calls out four choices worth quantifying:

* **Predictor** — trained random forest vs the analytical oracle, and
  the effect of the conservative quantile / safety factor (the
  "err on the side of under-predicting chunk size" tuning).
* **Selective preemption** — on vs off.
* **Decode-length estimator** — per-app history (mean + 2 sigma) vs
  oracle vs pessimistic static, feeding Eq. 5 and TTLT projections.
"""

from __future__ import annotations

from repro.core.decode_estimator import (
    OracleDecodeEstimator,
    StaticDecodeEstimator,
)
from repro.core.predictor import ForestBatchPredictor
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import build_trace, run_replica_trace
from repro.schedulers import QoServeConfig, QoServeScheduler
from repro.workload.datasets import AZURE_CODE


def _run(execution_model, trace, config=None, **scheduler_kwargs):
    scheduler = QoServeScheduler(
        execution_model, config or QoServeConfig(), **scheduler_kwargs
    )
    summary, _ = run_replica_trace(
        execution_model, scheduler, trace.fresh_copy()
    )
    return summary


def run_predictor_ablation(
    scale: Scale = BENCH,
    qps: float = 3.5,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Oracle vs forest variants: SLO safety against throughput cost.

    An aggressive predictor (no conservative bias) chooses chunks that
    overshoot latency budgets, inflating TBT misses; the conservative
    settings trade a little makespan for pacing safety.
    """
    execution_model = get_execution_model(deployment)
    trace = build_trace(
        AZURE_CODE, qps=qps, num_requests=scale.requests_for(qps),
        seed=scale.seed,
    )
    variants: list[tuple[str, dict]] = [
        ("oracle", dict(config=QoServeConfig(use_forest_predictor=False))),
        ("forest (q=0.75, x1.10)", dict(config=QoServeConfig())),
        (
            "forest aggressive (q=0.5, x1.0)",
            dict(
                predictor=ForestBatchPredictor.train(
                    execution_model, quantile=0.5, seed=1
                ),
            ),
        ),
        (
            "forest paranoid (q=1.0, x1.25)",
            dict(
                predictor=_paranoid_predictor(execution_model),
            ),
        ),
    ]
    result = ExperimentResult(
        experiment="ablation-predictor",
        title="Batch-latency predictor variants",
        notes=[f"scale={scale.label}; qps={qps}; dataset=AzCode"],
    )
    for name, kwargs in variants:
        summary = _run(execution_model, trace, **kwargs)
        result.rows.append(
            {
                "predictor": name,
                "viol_pct": summary.violations.overall_pct,
                "tbt_miss_pct": summary.violations.tbt_miss_pct,
                "median_latency_s": summary.overall_percentiles[0.50],
            }
        )
    return result


def _paranoid_predictor(execution_model) -> ForestBatchPredictor:
    predictor = ForestBatchPredictor.train(
        execution_model, quantile=1.0, seed=1
    )
    predictor.safety_factor = 1.25
    return predictor


def run_preemption_ablation(
    scale: Scale = BENCH,
    qps: float = 4.5,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Selective preemption on vs off under load."""
    execution_model = get_execution_model(deployment)
    trace = build_trace(
        AZURE_CODE, qps=qps, num_requests=scale.requests_for(qps),
        seed=scale.seed,
    )
    result = ExperimentResult(
        experiment="ablation-preemption",
        title="Selective preemption on/off",
        notes=[f"scale={scale.label}; qps={qps}"],
    )
    for name, enabled in (("off", False), ("on", True)):
        config = QoServeConfig(
            selective_preemption=enabled, use_forest_predictor=False
        )
        summary = _run(execution_model, trace, config=config)
        result.rows.append(
            {
                "selective_preemption": name,
                "viol_pct": summary.violations.overall_pct,
                "q1_viol_pct": summary.violations.tier("Q1"),
                "q1_p99_s": summary.tier_percentile("Q1", 0.99),
            }
        )
    return result


def run_estimator_ablation(
    scale: Scale = BENCH,
    qps: float = 4.0,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Decode-length estimator variants for Eq. 5 / TTLT projection.

    The paper claims the simple per-app history (mean + 2 sigma) is
    sufficient (Section 4.4.1); the oracle bounds what better
    prediction could buy, and the pessimistic static estimator shows
    the cost of ignoring application structure.
    """
    execution_model = get_execution_model(deployment)
    trace = build_trace(
        AZURE_CODE, qps=qps, num_requests=scale.requests_for(qps),
        seed=scale.seed,
    )
    variants = [
        ("history mean+2sigma", None),  # scheduler default
        ("oracle", OracleDecodeEstimator()),
        ("static 2048 (pessimistic)", StaticDecodeEstimator(2048.0)),
    ]
    result = ExperimentResult(
        experiment="ablation-decode-estimator",
        title="Decode-length estimator variants",
        notes=[f"scale={scale.label}; qps={qps}"],
    )
    for name, estimator in variants:
        config = QoServeConfig(use_forest_predictor=False)
        summary = _run(
            execution_model, trace, config=config,
            decode_estimator=estimator,
        )
        result.rows.append(
            {
                "estimator": name,
                "viol_pct": summary.violations.overall_pct,
                "q2_viol_pct": summary.violations.tier("Q2"),
                "median_latency_s": summary.overall_percentiles[0.50],
            }
        )
    return result


if __name__ == "__main__":
    print(run_predictor_ablation().render())
    print()
    print(run_preemption_ablation().render())
    print()
    print(run_estimator_ablation().render())
