"""Chaos experiment: goodput and per-tier SLO attainment under faults.

Two views of the fault layer (``repro.faults``):

* :func:`run` — the **anatomy of a crash**: kill 1 of 4 replicas for a
  fixed outage window mid-run and compare (a) the no-fault baseline,
  (b) the full resilience stack (health-aware routing + retries +
  tier-aware shedding), and (c) the same crash with shedding disabled.
  The paid tier should degrade *less* than the free tier under (b):
  admission sheds free arrivals while capacity is degraded and the
  QoServe scheduler relegates free-tier work first.
* :func:`run_mtbf_sweep` — goodput vs fault rate: Poisson
  crash/recover chaos at several MTBF points (fixed MTTR), drawn from
  a named :mod:`repro.simcore.rng` stream so every point is
  reproducible.

Both drivers assert the engine-level KV invariant at drain: after all
crashes, recoveries, retries and cancellations, no replica may hold a
single KV block.
"""

from __future__ import annotations

from repro.cluster.resilient import ResilientClusterDeployment
from repro.core.request import Request
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import build_trace, scheduler_factory
from repro.faults.plan import FaultPlan, ReplicaCrash, get_default_fault_plan
from repro.faults.policy import ResilienceConfig, RetryPolicy
from repro.obs.audit import audit_requests
from repro.simcore.rng import RngStreams
from repro.workload.datasets import AZURE_CODE

#: Shed free-tier arrivals as soon as any replica of a 4-pool is down
#: (alive 3/4 = 0.75 < 0.8); level-2 shedding still needs a majority
#: outage.
CHAOS_RESILIENCE = ResilienceConfig(shed_free_below=0.8)

#: Same stack with admission control disabled — every arrival is
#: admitted no matter how degraded the pool is.
NO_SHED_RESILIENCE = ResilienceConfig(
    shed_free_below=0.0, shed_batch_below=0.0
)


def _goodput(requests: list[Request], qps: float) -> float:
    """Requests finished within SLO per second of arrival span."""
    good = sum(
        1 for r in requests if r.is_finished and not r.violated_deadline
    )
    if not requests:
        return 0.0
    span = max(
        1e-9,
        max(r.arrival_time for r in requests)
        - min(r.arrival_time for r in requests),
    )
    return good / span


def _run_cluster(
    trace,
    execution_model,
    num_replicas: int,
    plan: FaultPlan,
    resilience: ResilienceConfig,
) -> ResilientClusterDeployment:
    cluster = ResilientClusterDeployment(
        execution_model,
        scheduler_factory("qoserve", execution_model),
        num_replicas=num_replicas,
        fault_plan=plan,
        resilience=resilience,
    )
    cluster.submit_trace(trace.fresh_copy())
    cluster.run(max_events=100_000_000)
    stats = cluster.fault_stats()
    assert stats["kv_blocks_resident"] == 0, (
        f"KV blocks leaked after chaos run: {stats}"
    )
    return cluster


def _row(name: str, cluster: ResilientClusterDeployment, qps: float) -> dict:
    summary = cluster.summarize()
    stats = cluster.fault_stats()
    violations = summary.violations
    # Coarse latency attribution straight from the completed requests
    # (cluster runs have no single-replica trace): which phase
    # dominated the violated requests' latency.
    report = audit_requests(cluster.all_requests())
    causes = report.dominant_causes()
    top_cause = max(
        causes.items(), key=lambda kv: (kv[1], kv[0]), default=("-", 0)
    )[0]
    return {
        "config": name,
        "goodput_rps": _goodput(cluster.all_requests(), qps),
        "viol_overall_pct": violations.overall_pct,
        "viol_paid_pct": violations.important_pct,
        "viol_free_pct": violations.low_priority_pct,
        "crashes": stats["crashes"],
        "retries": stats["retries_scheduled"],
        "shed": stats["shed"],
        "cancelled": stats["cancelled"],
        "top_cause": top_cause,
        "_attribution": report,
    }


def run(
    scale: Scale = BENCH,
    cluster_qps: float = 10.0,
    num_replicas: int = 4,
    deployment: str = "llama3-8b",
    low_priority_fraction: float = 0.3,
) -> ExperimentResult:
    """Anatomy of one crash: 1 of 4 replicas down for a fixed window."""
    execution_model = get_execution_model(deployment)
    trace = build_trace(
        AZURE_CODE,
        qps=cluster_qps,
        num_requests=scale.requests_for(cluster_qps),
        seed=scale.seed,
        low_priority_fraction=low_priority_fraction,
    )
    span = max(r.arrival_time for r in trace) - min(
        r.arrival_time for r in trace
    )
    # Replica 1 dies a quarter into the arrival stream and stays down
    # for a quarter of it — long enough that Q1 arrivals during the
    # outage must be absorbed by the survivors.  A plan installed via
    # ``repro run --fault-plan`` replaces the built-in crash.
    crash_plan = get_default_fault_plan()
    if crash_plan is None:
        crash_plan = FaultPlan(
            events=(
                ReplicaCrash(
                    time=0.25 * span, replica_id=1,
                    recover_after=0.25 * span,
                ),
            )
        )

    result = ExperimentResult(
        experiment="fig-faults",
        title=f"Crash anatomy: {num_replicas} QoServe replicas at "
              f"{cluster_qps} QPS, 1 replica down for 25% of the run",
        notes=[
            f"scale={scale.label}; dataset=AzCode; "
            f"free-tier fraction={low_priority_fraction}",
            "goodput = requests finished within SLO per second of "
            "arrival span; shed/cancelled requests count as violated",
        ],
    )
    attribution: dict[str, object] = {}
    for name, plan, resilience in (
        ("no-fault", FaultPlan(), CHAOS_RESILIENCE),
        ("crash+resilience", crash_plan, CHAOS_RESILIENCE),
        ("crash, no shedding", crash_plan, NO_SHED_RESILIENCE),
    ):
        cluster = _run_cluster(
            trace, execution_model, num_replicas, plan, resilience
        )
        row = _row(name, cluster, cluster_qps)
        attribution[name] = row.pop("_attribution")
        result.rows.append(row)
    result.extras["attribution"] = attribution
    causes = attribution["crash, no shedding"].dominant_causes()
    if causes:
        result.notes.append(
            "crash-without-shedding dominant violation causes: "
            + ", ".join(f"{c}={n}" for c, n in sorted(causes.items()))
        )
    return result


def run_mtbf_sweep(
    scale: Scale = BENCH,
    cluster_qps: float = 10.0,
    num_replicas: int = 4,
    deployment: str = "llama3-8b",
    mttr: float = 30.0,
    mtbf_points: tuple[float, ...] = (float("inf"), 600.0, 240.0, 120.0),
    low_priority_fraction: float = 0.3,
) -> ExperimentResult:
    """Goodput vs crash rate under Poisson chaos (fixed MTTR)."""
    execution_model = get_execution_model(deployment)
    trace = build_trace(
        AZURE_CODE,
        qps=cluster_qps,
        num_requests=scale.requests_for(cluster_qps),
        seed=scale.seed,
        low_priority_fraction=low_priority_fraction,
    )
    span = max(r.arrival_time for r in trace) - min(
        r.arrival_time for r in trace
    )
    streams = RngStreams(scale.seed)

    result = ExperimentResult(
        experiment="fig-faults-mtbf",
        title=f"Goodput vs MTBF: {num_replicas} QoServe replicas at "
              f"{cluster_qps} QPS, MTTR={mttr:.0f}s",
        notes=[
            f"scale={scale.label}; dataset=AzCode; "
            f"free-tier fraction={low_priority_fraction}; "
            "replica 0 is the never-faulting spare",
        ],
    )
    for index, mtbf in enumerate(mtbf_points):
        if mtbf == float("inf"):
            plan = FaultPlan()
        else:
            plan = FaultPlan.poisson(
                num_replicas=num_replicas,
                duration=span,
                mtbf=mtbf,
                mttr=mttr,
                rng=streams.stream(f"faults.mtbf.{index}"),
            )
        cluster = _run_cluster(
            trace, execution_model, num_replicas, plan, CHAOS_RESILIENCE
        )
        row = _row(
            "no-faults" if mtbf == float("inf") else f"mtbf={mtbf:.0f}s",
            cluster,
            cluster_qps,
        )
        result.extras.setdefault("attribution", {})[row["config"]] = (
            row.pop("_attribution")
        )
        row["planned_faults"] = len(plan)
        result.rows.append(row)
    return result


if __name__ == "__main__":
    print(run().render())
    print(run_mtbf_sweep().render())
