"""Table 6 and Section 4.4.2: robustness to workload mix and SLOs.

Part 1 (Table 6): skewed tier mixes — 70-15-15 (interactive dominant)
and 15-15-70 (batch dominant) — at an overload operating point; the
baselines collapse while QoServe keeps per-tier medians within SLO via
relegation of a small request share.

Part 2 (SLO variation): tiers re-specified as (3 s, 50 ms),
(6 s, 50 ms) and 1000 s TTLT on the Azure Conv trace; goodput of
QoServe vs Sarathi-EDF (paper: 5.0 vs 3.7 QPS).
"""

from __future__ import annotations

from repro.core.qos import QoSClass, QoSSpec
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    build_trace,
    goodput_search,
    make_scheduler,
    run_replica_trace,
)
from repro.workload.datasets import AZURE_CODE, AZURE_CONV
from repro.workload.tiers import TierMix

SCHEMES = ("fcfs", "edf", "qoserve")
MIXES = {
    "70-15-15": TierMix.interactive_heavy(),
    "15-15-70": TierMix.batch_heavy(),
}


def run(
    scale: Scale = BENCH,
    qps: float = 4.5,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Reproduce Table 6's skewed-composition comparison."""
    execution_model = get_execution_model(deployment)
    result = ExperimentResult(
        experiment="table-06",
        title=f"Skewed workload compositions at {qps} QPS (AzCode)",
        notes=[f"scale={scale.label}"],
    )
    for mix_name, mix in MIXES.items():
        base = build_trace(
            AZURE_CODE,
            qps=qps,
            num_requests=scale.requests_for(qps),
            seed=scale.seed,
            mix=mix,
        )
        for scheme in SCHEMES:
            trace = base.fresh_copy()
            scheduler = make_scheduler(scheme, execution_model)
            summary, _ = run_replica_trace(execution_model, scheduler, trace)
            result.rows.append(
                {
                    "composition": mix_name,
                    "scheme": f"Sarathi-{scheme.upper()}"
                    if scheme != "qoserve"
                    else "QoServe",
                    "q1_p50_s": summary.tier_percentile("Q1", 0.50),
                    "q2_p50_s": summary.tier_percentile("Q2", 0.50),
                    "q3_p50_s": summary.tier_percentile("Q3", 0.50),
                    "viol_pct": summary.violations.overall_pct,
                    "relegated_pct": summary.violations.relegated_pct,
                }
            )
    return result


def run_slo_variation(
    scale: Scale = BENCH,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Section 4.4.2's modified-SLO goodput comparison (AzConv)."""
    execution_model = get_execution_model(deployment)
    tiers = (
        QoSSpec("Q1", QoSClass.INTERACTIVE, ttft_slo=3.0, tbt_slo=0.050),
        QoSSpec("Q2", QoSClass.INTERACTIVE, ttft_slo=6.0, tbt_slo=0.050),
        QoSSpec("Q3", QoSClass.NON_INTERACTIVE, ttlt_slo=1000.0),
    )
    mix = TierMix(
        tiers=tiers,
        weights=(1.0, 1.0, 1.0),
        app_names=("chat-fast", "chat", "batch"),
    )
    result = ExperimentResult(
        experiment="slo-variation",
        title="Goodput with modified SLOs: (3s,50ms), (6s,50ms), 1000s",
        notes=[f"scale={scale.label}; dataset=AzConv; paper: 5.0 vs 3.7 QPS"],
    )
    for scheme in ("edf", "qoserve"):
        capacity = goodput_search(
            scheme,
            execution_model,
            AZURE_CONV,
            num_requests=scale.num_requests,
            seed=scale.seed,
            mix=mix,
        )
        result.rows.append(
            {
                "scheme": "Sarathi-EDF" if scheme == "edf" else "QoServe",
                "goodput_qps": capacity.max_qps,
            }
        )
    return result


if __name__ == "__main__":
    print(run().render())
    print()
    print(run_slo_variation().render())
