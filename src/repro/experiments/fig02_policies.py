"""Figure 2: traditional multi-SLA policies vs QoServe.

Sweeps load and reports, for the strictest QoS class (Q1), the median
and p99 TTFT, plus the overall violation percentage and the violation
percentage among long requests — the four panels of Figure 2.
"""

from __future__ import annotations

from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import build_trace, make_scheduler, run_replica_trace
from repro.metrics.latency import latency_percentiles
from repro.workload.datasets import AZURE_CODE

POLICIES = ("fcfs", "sjf", "srpf", "edf", "qoserve")
DEFAULT_LOADS = (2.0, 2.5, 3.0, 4.0, 5.0, 6.0)


def run(
    scale: Scale = BENCH,
    policies: tuple[str, ...] = POLICIES,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Reproduce Figure 2's policy comparison."""
    execution_model = get_execution_model(deployment)
    base = build_trace(
        AZURE_CODE, qps=1.0, num_requests=scale.requests_for(max(loads)),
        seed=scale.seed
    )
    result = ExperimentResult(
        experiment="figure-02",
        title="Traditional policies for multi-SLA scheduling (Q1 stats)",
        notes=[
            f"scale={scale.label} ({scale.num_requests} requests/run), "
            f"dataset=AzCode, deployment={deployment}"
        ],
    )
    for policy in policies:
        for qps in loads:
            trace = base.scaled_arrivals(qps)
            scheduler = make_scheduler(policy, execution_model)
            summary, _ = run_replica_trace(execution_model, scheduler, trace)
            q1 = [r for r in trace if r.qos.name == "Q1"]
            q1_pcts = latency_percentiles(q1, (0.50, 0.99))
            result.rows.append(
                {
                    "policy": policy.upper() if policy != "qoserve" else "QoServe",
                    "qps": qps,
                    "q1_p50_ttft_s": q1_pcts[0.50],
                    "q1_p99_ttft_s": q1_pcts[0.99],
                    "violations_pct": summary.violations.overall_pct,
                    "long_violations_pct": summary.violations.long_pct,
                }
            )
    return result


if __name__ == "__main__":
    print(run().render())
