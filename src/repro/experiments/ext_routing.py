"""Extension experiment: load-balancing strategies across replicas.

The paper's deployments use round-robin ("Both deployments use
round-robin load balancing across replicas").  With heavy-tailed
prompt lengths a round-robin cluster leaves transient per-replica
imbalance on the table; this ablation measures how much QoServe-level
scheduling recovers versus what arrival-time load-aware routing
(least-loaded, power-of-two-choices) adds on top.
"""

from __future__ import annotations

from repro.cluster.deployment import ROUTING_STRATEGIES, ClusterDeployment
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import build_trace, scheduler_factory
from repro.workload.datasets import AZURE_CODE


def run(
    scale: Scale = BENCH,
    cluster_qps: float = 14.0,
    num_replicas: int = 4,
    deployment: str = "llama3-8b",
    strategies: tuple[str, ...] = ROUTING_STRATEGIES,
) -> ExperimentResult:
    """Compare routing strategies on a QoServe cluster near capacity."""
    execution_model = get_execution_model(deployment)
    trace = build_trace(
        AZURE_CODE,
        qps=cluster_qps,
        num_requests=scale.requests_for(cluster_qps),
        seed=scale.seed,
    )
    result = ExperimentResult(
        experiment="ext-routing",
        title=f"Routing strategies, {num_replicas} QoServe replicas "
              f"at {cluster_qps} QPS",
        notes=[f"scale={scale.label}; dataset=AzCode"],
    )
    for routing in strategies:
        cluster = ClusterDeployment(
            execution_model,
            scheduler_factory("qoserve", execution_model),
            num_replicas=num_replicas,
            routing=routing,
        )
        cluster.submit_trace(trace.fresh_copy())
        cluster.run(max_events=100_000_000)
        summary = cluster.summarize()
        busy = [r.busy_time for r in cluster.replicas]
        imbalance = (
            (max(busy) - min(busy)) / max(busy) if max(busy) > 0 else 0.0
        )
        result.rows.append(
            {
                "routing": routing,
                "viol_overall_pct": summary.violations.overall_pct,
                "q1_p99_s": summary.tier_percentile("Q1", 0.99),
                "overall_p99_s": summary.overall_percentiles[0.99],
                "busy_imbalance_pct": 100.0 * imbalance,
            }
        )
    return result


if __name__ == "__main__":
    print(run().render())
