"""Extension experiment: QoServe vs ConServe-style binary collocation.

Section 5 argues that ConServe's "binary interactive-offline
classification is inadequate for multi-QoS scenarios where all
requests have definite SLO requirements."  This experiment makes that
claim measurable: both schedulers co-schedule the Table 3 three-tier
workload on one replica across a load sweep.  ConServe protects Q1
unconditionally and harvests idle capacity for the offline mass — but
it cannot tell Q2 (600 s) from Q3 (1800 s), so as load grows the Q2
deadline is the first casualty, while QoServe spends Q3's slack first.
"""

from __future__ import annotations

from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    build_trace,
    make_scheduler,
    run_replica_trace,
)
from repro.workload.datasets import AZURE_CODE

SCHEMES = ("conserve", "qoserve")
DEFAULT_LOADS = (2.0, 3.0, 4.0, 5.0)


def run(
    scale: Scale = BENCH,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """QoServe vs ConServe under the three-tier workload."""
    execution_model = get_execution_model(deployment)
    base = build_trace(
        AZURE_CODE, qps=1.0,
        num_requests=scale.requests_for(max(loads)), seed=scale.seed,
    )
    result = ExperimentResult(
        experiment="ext-conserve",
        title="Binary collocation (ConServe-style) vs fine-grained QoS",
        notes=[
            f"scale={scale.label}; dataset=AzCode; Table 3 tiers",
            "ConServe: interactive strictly first, offline harvested, "
            "no offline deadline awareness",
        ],
    )
    for scheme in SCHEMES:
        for qps in loads:
            trace = base.scaled_arrivals(qps)
            scheduler = make_scheduler(scheme, execution_model)
            summary, _ = run_replica_trace(
                execution_model, scheduler, trace
            )
            violations = summary.violations
            result.rows.append(
                {
                    "scheme": "ConServe" if scheme == "conserve"
                    else "QoServe",
                    "qps": qps,
                    "viol_overall_pct": violations.overall_pct,
                    "viol_q1_pct": violations.tier("Q1"),
                    "viol_q2_pct": violations.tier("Q2"),
                    "viol_q3_pct": violations.tier("Q3"),
                    "q2_p99_s": summary.tier_percentile("Q2", 0.99),
                    "q3_p99_s": summary.tier_percentile("Q3", 0.99),
                }
            )
    return result


if __name__ == "__main__":
    print(run().render())
