"""Disk-backed run cache: incremental re-runs of experiment grids.

Every cell of an experiment grid is a pure function of its inputs —
the deployment (model/hardware/TP), the scheduler kind and config, and
the trace parameters (dataset, seed, QPS, size).  The cache keys a
cell's JSON-serializable result by a content hash of exactly those
inputs plus a schema version, so re-running a figure after an
interrupted sweep (or with one new load point) only simulates the
missing cells.

Caching is *opt-in*: with no ``--cache-dir`` the cache object is
``None`` and every cell recomputes, which keeps determinism audits
(byte-identical outputs across runs) trivially honest.  Invalidation
is equally blunt on purpose: delete the directory, or bump
``SCHEMA_VERSION`` when a change to the simulator makes old entries
semantically stale (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable

#: Bump when simulator semantics change so stale entries never
#: masquerade as fresh results.  Included in every cache key.
#: History: 2 — fig10_11 cell payloads grew embedded ``_sketches``
#: (per-tier governing-latency quantile sketches).
SCHEMA_VERSION = 2


class RunCache:
    """Content-addressed JSON store for experiment cell results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(**parts: Any) -> str:
        """Content hash of the cell inputs (order-insensitive)."""
        payload = json.dumps(
            {"schema": SCHEMA_VERSION, **parts},
            sort_keys=True,
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings manageable on
        # multi-thousand-cell sweeps.
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Any | None:
        """Cached value for ``key``, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            value = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` (must be JSON-serializable) atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(value))
        os.replace(tmp, path)  # atomic: concurrent workers never tear

    def cached(self, compute: Callable[[], Any], **parts: Any) -> Any:
        """Return the cached result for ``parts``, computing on miss.

        JSON round-trips preserve float64 exactly (repr-based), so a
        hit renders byte-identically to the original computation.
        """
        key = self.key(**parts)
        value = self.get(key)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value


def active_cache() -> RunCache | None:
    """The run cache selected by the process config, if any."""
    from repro.experiments.parallel import get_parallel_config

    cache_dir = get_parallel_config().cache_dir
    if cache_dir is None:
        return None
    return RunCache(cache_dir)


def cached_cell(compute: Callable[[], Any], **parts: Any) -> Any:
    """Convenience wrapper: compute through the active cache, if any."""
    cache = active_cache()
    if cache is None:
        return compute()
    return cache.cached(compute, **parts)
