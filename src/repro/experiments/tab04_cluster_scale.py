"""Table 4 / Figure 1 (top right): cluster-scale silo vs QoServe.

Follows the paper's provisioning method: the silo baseline sizes each
tier's dedicated pool from that tier's measured per-replica goodput
(chunk 256 for the strict tier, 2048 for the throughput tiers), while
QoServe sizes one shared pool from its mixed-workload goodput.  All
three deployments — the tuned silo, a silo squeezed to QoServe's GPU
count, and QoServe — are then simulated at the full cluster load and
their p99 latencies and violation rates reported.
"""

from __future__ import annotations

import math

from repro.cluster.deployment import ClusterDeployment, SiloedDeployment, SiloSpec
from repro.core.qos import Q1_INTERACTIVE, Q2_RELAXED, Q3_BATCH
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    build_trace,
    goodput_search,
    scheduler_factory,
)
from repro.workload.datasets import AZURE_CODE
from repro.workload.tiers import TierMix

SILO_CHUNKS = {"Q1": 256, "Q2": 2048, "Q3": 2048}
TIERS = {"Q1": Q1_INTERACTIVE, "Q2": Q2_RELAXED, "Q3": Q3_BATCH}


def _single_tier_mix(name: str) -> TierMix:
    return TierMix(tiers=(TIERS[name],), weights=(1.0,), app_names=(name,))


def silo_allocation(
    execution_model, scale: Scale, per_tier_qps: float
) -> tuple[dict[str, int], dict[str, float]]:
    """Replicas per tier from measured per-tier silo goodput."""
    replicas: dict[str, int] = {}
    goodputs: dict[str, float] = {}
    for tier_name, chunk in SILO_CHUNKS.items():
        capacity = goodput_search(
            "fcfs",
            execution_model,
            AZURE_CODE,
            num_requests=max(300, scale.num_requests // 3),
            seed=scale.seed,
            mix=_single_tier_mix(tier_name),
            chunk_size=chunk,
        )
        goodputs[tier_name] = capacity.max_qps
        replicas[tier_name] = max(
            1, math.ceil(per_tier_qps / max(1e-9, capacity.max_qps))
        )
    return replicas, goodputs


def _simulate_silo(
    execution_model, replicas: dict[str, int], trace
) -> tuple[int, dict]:
    silos = [
        SiloSpec(
            tier_names=(tier,),
            num_replicas=count,
            scheduler_factory=scheduler_factory(
                "fcfs", execution_model, chunk_size=SILO_CHUNKS[tier]
            ),
        )
        for tier, count in replicas.items()
    ]
    deployment = SiloedDeployment(execution_model, silos)
    deployment.submit_trace(trace)
    deployment.run()
    return deployment.gpus_used, deployment.summarize()


def _simulate_shared(execution_model, num_replicas: int, trace):
    deployment = ClusterDeployment(
        execution_model,
        scheduler_factory("qoserve", execution_model),
        num_replicas=num_replicas,
    )
    deployment.submit_trace(trace)
    deployment.run()
    return deployment.gpus_used, deployment.summarize()


def _row(scheme: str, gpus: int, summary) -> dict:
    return {
        "scheme": scheme,
        "gpus": gpus,
        "q1_p99_s": summary.tier_percentile("Q1", 0.99),
        "q2_p99_s": summary.tier_percentile("Q2", 0.99),
        "q3_p99_s": summary.tier_percentile("Q3", 0.99),
        "viol_overall_pct": summary.violations.overall_pct,
    }


def run(
    scale: Scale = BENCH,
    total_qps: float = 27.0,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Reproduce Table 4's cluster-scale comparison.

    ``total_qps`` defaults below the paper's 35 because the simulated
    replicas' absolute capacity differs from the authors' testbed; the
    provisioning *method* and the relative GPU savings are what carry.
    """
    execution_model = get_execution_model(deployment)
    per_tier_qps = total_qps / 3.0

    silo_replicas, silo_goodputs = silo_allocation(
        execution_model, scale, per_tier_qps
    )
    shared_capacity = goodput_search(
        "qoserve",
        execution_model,
        AZURE_CODE,
        num_requests=max(300, scale.num_requests // 3),
        seed=scale.seed,
    )
    qoserve_replicas = max(
        1, math.ceil(total_qps / max(1e-9, shared_capacity.max_qps))
    )

    cluster_requests = scale.num_requests * 4
    trace = build_trace(
        AZURE_CODE,
        qps=total_qps,
        num_requests=cluster_requests,
        seed=scale.seed,
    )

    result = ExperimentResult(
        experiment="table-04",
        title=f"Cluster scale at {total_qps} QPS (AzCode, {deployment})",
        notes=[
            f"silo per-tier goodputs: "
            + ", ".join(f"{k}={v:.2f}" for k, v in silo_goodputs.items()),
            f"QoServe shared goodput: {shared_capacity.max_qps:.2f} QPS",
            f"{cluster_requests} requests at cluster scale",
        ],
    )

    gpus, summary = _simulate_silo(
        execution_model, silo_replicas, trace.fresh_copy()
    )
    alloc = tuple(silo_replicas[t] for t in ("Q1", "Q2", "Q3"))
    result.rows.append(_row(f"Silo-{alloc}", gpus, summary))

    # Squeeze the silo to QoServe's GPU budget, shrinking the largest
    # pools first (mirroring the paper's (6,2,2) configuration).
    squeezed = dict(silo_replicas)
    while sum(squeezed.values()) > qoserve_replicas and any(
        v > 1 for v in squeezed.values()
    ):
        largest = max(squeezed, key=lambda k: squeezed[k])
        squeezed[largest] -= 1
    gpus, summary = _simulate_silo(
        execution_model, squeezed, trace.fresh_copy()
    )
    alloc = tuple(squeezed[t] for t in ("Q1", "Q2", "Q3"))
    result.rows.append(_row(f"Silo-{alloc}", gpus, summary))

    gpus, summary = _simulate_shared(
        execution_model, qoserve_replicas, trace.fresh_copy()
    )
    result.rows.append(_row(f"QoServe-({qoserve_replicas})", gpus, summary))
    return result


if __name__ == "__main__":
    print(run().render())
