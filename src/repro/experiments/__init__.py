"""Experiment drivers reproducing every table and figure of the paper.

Each module exposes a ``run(scale)`` function returning an
:class:`~repro.experiments.result.ExperimentResult` whose rows mirror
the corresponding paper artifact.  ``Scale`` presets trade run time
for statistical weight, in the spirit of the artifact appendix's
"tiny" scripts.
"""

from repro.experiments.configs import (
    DEPLOYMENTS,
    BENCH,
    FULL,
    SMOKE,
    DeploymentSpec,
    Scale,
    get_execution_model,
)
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    SCHEDULER_KINDS,
    goodput_search,
    make_scheduler,
    run_replica_trace,
    scheduler_factory,
)

__all__ = [
    "DEPLOYMENTS",
    "BENCH",
    "FULL",
    "SMOKE",
    "DeploymentSpec",
    "Scale",
    "get_execution_model",
    "ExperimentResult",
    "SCHEDULER_KINDS",
    "goodput_search",
    "make_scheduler",
    "run_replica_trace",
    "scheduler_factory",
]
