"""Table 5: the contribution of each QoServe technique.

Starting from the Sarathi-EDF baseline (all techniques off, which is
exactly QoServe with dynamic chunking, relegation and the alpha term
disabled), techniques are layered in the paper's order: dynamic
chunking (DC), eager relegation (ER), hybrid prioritization (HP).  Two
measurements per configuration: goodput at optimal load, and the
violation percentage at a fixed high load.
"""

from __future__ import annotations

from repro.experiments.cache import cached_cell
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.parallel import pmap
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    build_trace,
    goodput_search,
    make_scheduler,
    run_replica_trace,
)
from repro.schedulers.qoserve import make_ablation_config
from repro.workload.datasets import AZURE_CODE

CONFIGS = (
    ("Sarathi-EDF", dict()),
    ("QoServe (DC)", dict(dynamic_chunking=True)),
    ("QoServe (DC+ER)", dict(dynamic_chunking=True, eager_relegation=True)),
    (
        "QoServe (DC+ER+HP)",
        dict(
            dynamic_chunking=True,
            eager_relegation=True,
            hybrid_prioritization=True,
        ),
    ),
)


def _ablation_cell(
    task: tuple[str, tuple[tuple[str, bool], ...], int, int, int, float, str]
) -> dict:
    """Goodput + high-load violations for one ablation config.

    The ``goodput_gain_pct`` column chains off the previous row, so it
    is filled in serially by ``run`` after the fan-out.
    """
    (label, flag_items, num_requests, highload_requests, seed,
     high_load_qps, deployment) = task

    def compute() -> dict:
        execution_model = get_execution_model(deployment)
        config = make_ablation_config(**dict(flag_items))
        capacity = goodput_search(
            "qoserve",
            execution_model,
            AZURE_CODE,
            num_requests=num_requests,
            seed=seed,
            qoserve_config=config,
        )
        base = build_trace(
            AZURE_CODE, qps=1.0, num_requests=highload_requests, seed=seed
        )
        trace = base.scaled_arrivals(high_load_qps)
        scheduler = make_scheduler(
            "qoserve", execution_model, qoserve_config=config
        )
        summary, _ = run_replica_trace(execution_model, scheduler, trace)
        return {
            "config": label,
            "goodput_qps": capacity.max_qps,
            "high_load_viol_pct": summary.violations.overall_pct,
        }

    return cached_cell(
        compute,
        figure="tab05",
        deployment=deployment,
        flags=dict(flag_items),
        num_requests=num_requests,
        highload_requests=highload_requests,
        seed=seed,
        high_load_qps=high_load_qps,
    )


def run(
    scale: Scale = BENCH,
    high_load_qps: float = 6.0,
    deployment: str = "llama3-8b",
    jobs: int | None = None,
) -> ExperimentResult:
    """Reproduce Table 5's ablation.

    The four configurations are measured independently (fanned out over
    ``jobs`` workers); the gain-over-previous-row column is a pure
    function of the measured goodputs and is chained serially after.
    """
    result = ExperimentResult(
        experiment="table-05",
        title="Impact of QoServe's optimizations",
        notes=[
            f"scale={scale.label}; high load = {high_load_qps} QPS; "
            "dataset=AzCode"
        ],
    )
    highload_requests = scale.requests_for(high_load_qps)
    tasks = [
        (label, tuple(sorted(flags.items())), scale.num_requests,
         highload_requests, scale.seed, high_load_qps, deployment)
        for label, flags in CONFIGS
    ]
    rows = pmap(
        _ablation_cell, tasks, jobs=jobs, warm_deployments=(deployment,)
    )
    previous_goodput: float | None = None
    for row in rows:
        gain_pct = (
            100.0 * (row["goodput_qps"] - previous_goodput) / previous_goodput
            if previous_goodput
            else float("nan")
        )
        result.rows.append(
            {
                "config": row["config"],
                "goodput_qps": row["goodput_qps"],
                "goodput_gain_pct": gain_pct,
                "high_load_viol_pct": row["high_load_viol_pct"],
            }
        )
        previous_goodput = row["goodput_qps"]
    return result


if __name__ == "__main__":
    print(run().render())
