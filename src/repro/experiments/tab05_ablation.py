"""Table 5: the contribution of each QoServe technique.

Starting from the Sarathi-EDF baseline (all techniques off, which is
exactly QoServe with dynamic chunking, relegation and the alpha term
disabled), techniques are layered in the paper's order: dynamic
chunking (DC), eager relegation (ER), hybrid prioritization (HP).  Two
measurements per configuration: goodput at optimal load, and the
violation percentage at a fixed high load.
"""

from __future__ import annotations

from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    build_trace,
    goodput_search,
    make_scheduler,
    run_replica_trace,
)
from repro.schedulers.qoserve import make_ablation_config
from repro.workload.datasets import AZURE_CODE

CONFIGS = (
    ("Sarathi-EDF", dict()),
    ("QoServe (DC)", dict(dynamic_chunking=True)),
    ("QoServe (DC+ER)", dict(dynamic_chunking=True, eager_relegation=True)),
    (
        "QoServe (DC+ER+HP)",
        dict(
            dynamic_chunking=True,
            eager_relegation=True,
            hybrid_prioritization=True,
        ),
    ),
)


def run(
    scale: Scale = BENCH,
    high_load_qps: float = 6.0,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Reproduce Table 5's ablation."""
    execution_model = get_execution_model(deployment)
    base = build_trace(
        AZURE_CODE,
        qps=1.0,
        num_requests=scale.requests_for(high_load_qps),
        seed=scale.seed,
    )
    result = ExperimentResult(
        experiment="table-05",
        title="Impact of QoServe's optimizations",
        notes=[
            f"scale={scale.label}; high load = {high_load_qps} QPS; "
            "dataset=AzCode"
        ],
    )
    previous_goodput: float | None = None
    for label, flags in CONFIGS:
        config = make_ablation_config(**flags)
        capacity = goodput_search(
            "qoserve",
            execution_model,
            AZURE_CODE,
            num_requests=scale.num_requests,
            seed=scale.seed,
            qoserve_config=config,
        )
        trace = base.scaled_arrivals(high_load_qps)
        scheduler = make_scheduler(
            "qoserve", execution_model, qoserve_config=config
        )
        summary, _ = run_replica_trace(execution_model, scheduler, trace)
        gain_pct = (
            100.0 * (capacity.max_qps - previous_goodput) / previous_goodput
            if previous_goodput
            else float("nan")
        )
        result.rows.append(
            {
                "config": label,
                "goodput_qps": capacity.max_qps,
                "goodput_gain_pct": gain_pct,
                "high_load_viol_pct": summary.violations.overall_pct,
            }
        )
        previous_goodput = capacity.max_qps
    return result


if __name__ == "__main__":
    print(run().render())
