"""Extension experiment: multi-TBT decode nodes for disaggregation.

The paper's Section 4.1.3 sizes every decode node for the *strictest*
TBT class and explicitly defers "efficiently supporting different TBT
SLOs in the decode nodes" to future work.  This experiment implements
and evaluates that future work (see
:mod:`repro.cluster.decode_pool`): requests from a strict (25 ms) and
a relaxed (100 ms) TBT class stream into a fixed decode pool managed
three ways —

* ``strict-shared`` — status quo: batch cap from the strictest class;
* ``partitioned``   — PolyServe-style per-class replicas;
* ``qos-shared``    — TBT-aware dynamic admission (QoServe-flavoured).

Prefill is bypassed (requests arrive already prefilled), isolating the
decode-side scheduling question.  Reported per load and pool: TBT
pacing misses per class and the p99 total turnaround.
"""

from __future__ import annotations

from repro.cluster.decode_pool import (
    PartitionedDecodePool,
    QoSSharedDecodePool,
    StrictSharedDecodePool,
)
from repro.core.qos import QoSClass, QoSSpec
from repro.core.request import Request
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.simcore.rng import RngStreams
from repro.simcore.simulator import Simulator
from repro.workload.distributions import LognormalLengths

#: An ultra-low-latency streaming class: tight enough that the batch
#: cap it implies (couple dozen requests) costs real throughput.
TIER_STRICT = QoSSpec(
    "QA", QoSClass.INTERACTIVE, ttft_slo=30.0, tbt_slo=0.015
)
TIER_RELAXED = QoSSpec(
    "QB", QoSClass.INTERACTIVE, ttft_slo=30.0, tbt_slo=0.100
)

PROMPTS = LognormalLengths(p50=1730, p90=5696)   # ShareGPT-like
DECODES = LognormalLengths(p50=200, p90=500, max_tokens=2000)
AVG_CONTEXT = 3000


def prefilled_trace(num_requests: int, qps: float, seed: int,
                    strict_share: float = 0.5) -> list[Request]:
    """Already-prefilled requests, as handed off by prefill nodes."""
    streams = RngStreams(seed)
    rng = streams.stream("decode-ext")
    gaps = rng.exponential(scale=1.0 / qps, size=num_requests)
    prompts = PROMPTS.sample(streams.stream("prompts"), num_requests)
    decodes = DECODES.sample(streams.stream("decodes"), num_requests)
    strict = rng.random(num_requests) < strict_share
    t = 0.0
    requests = []
    for i in range(num_requests):
        t += float(gaps[i])
        request = Request(
            request_id=i,
            arrival_time=t,
            prompt_tokens=int(prompts[i]),
            decode_tokens=int(decodes[i]),
            qos=TIER_STRICT if strict[i] else TIER_RELAXED,
            app_id="strict" if strict[i] else "relaxed",
        )
        request.prefill_done = request.prompt_tokens
        requests.append(request)
    return requests


def make_pool(mode: str, simulator, execution_model, num_replicas: int):
    if mode == "strict-shared":
        return StrictSharedDecodePool(
            simulator, execution_model, num_replicas,
            strictest_tbt=TIER_STRICT.tbt_slo, avg_context=AVG_CONTEXT,
        )
    if mode == "partitioned":
        per_class = max(1, num_replicas // 2)
        return PartitionedDecodePool(
            simulator, execution_model,
            replicas_per_class={"QA": per_class, "QB": per_class},
            tbt_per_class={
                "QA": TIER_STRICT.tbt_slo, "QB": TIER_RELAXED.tbt_slo
            },
            avg_context=AVG_CONTEXT,
        )
    if mode == "qos-shared":
        return QoSSharedDecodePool(
            simulator, execution_model, num_replicas
        )
    raise KeyError(f"unknown pool mode {mode!r}")


def run(
    scale: Scale = BENCH,
    loads: tuple[float, ...] = (6.0, 12.0, 18.0),
    num_replicas: int = 2,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Sweep load over the three decode-pool designs."""
    execution_model = get_execution_model(deployment)
    result = ExperimentResult(
        experiment="ext-qos-decode",
        title="Multi-TBT decode pools (paper future work)",
        notes=[
            f"scale={scale.label}; {num_replicas} decode replicas; "
            f"classes: {TIER_STRICT.tbt_slo * 1e3:.0f} ms / "
            f"{TIER_RELAXED.tbt_slo * 1e3:.0f} ms TBT, 50/50 mix; "
            "prefill bypassed",
            "static sizing (strict-shared, partitioned) misses pacing "
            "under context heterogeneity; TBT-aware admission "
            "(qos-shared) trades queueing for exact pacing",
        ],
    )
    for mode in ("strict-shared", "partitioned", "qos-shared"):
        for qps in loads:
            num_requests = min(scale.requests_for(qps),
                               scale.num_requests * 2)
            requests = prefilled_trace(num_requests, qps, scale.seed)
            simulator = Simulator()
            pool = make_pool(mode, simulator, execution_model,
                             num_replicas)
            for request in requests:
                simulator.schedule(
                    request.arrival_time,
                    lambda r=request: pool.accept(r, simulator.now),
                )
            simulator.run(max_events=20_000_000)

            finished = [r for r in requests if r.is_finished]
            misses = {"QA": [0, 0], "QB": [0, 0]}
            turnaround = []
            for r in finished:
                misses[r.qos.name][0] += r.tbt_gap_misses
                misses[r.qos.name][1] += max(0, r.decoded - 1)
                turnaround.append(r.completion_time - r.arrival_time)
            turnaround.sort()
            p99 = (
                turnaround[int(0.99 * (len(turnaround) - 1))]
                if turnaround else float("inf")
            )

            def miss_pct(name):
                hits, total = misses[name]
                return 100.0 * hits / total if total else 0.0

            result.rows.append(
                {
                    "pool": mode,
                    "qps": qps,
                    "finished": len(finished),
                    "unfinished": len(requests) - len(finished),
                    "tbt_miss_strict_pct": miss_pct("QA"),
                    "tbt_miss_relaxed_pct": miss_pct("QB"),
                    "p99_turnaround_s": p99,
                }
            )
    return result


if __name__ == "__main__":
    print(run().render())
