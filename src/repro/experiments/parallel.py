"""Parallel experiment fan-out: a deterministic ``pmap`` over processes.

Experiment grids (scheme x QPS in the Figure 10/11 load sweep, the
goodput bisections of Figures 7/8, Table 5's ablation rows) are
embarrassingly parallel: every cell builds its own trace, scheduler
and engine from plain parameters.  This module provides the one
primitive they share:

* :func:`pmap` — map a module-level function over a list of picklable
  task tuples with a process pool.  Results always come back in task
  order (so serial and parallel runs render byte-identical tables),
  each worker warms the in-process forest-predictor cache once before
  taking tasks, and anything that prevents the pool from starting
  (sandboxed environments without semaphores, ``jobs=1``) falls back
  to a plain serial loop.

The process-wide :class:`ParallelConfig` is set once by the CLI
(``--jobs``, ``--cache-dir``) and read by the experiment drivers, so
their ``run(...)`` signatures stay unchanged for library callers.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """Process-wide execution knobs for the experiment layer.

    Attributes:
        jobs: Worker processes for grid fan-out (1 = serial).
        cache_dir: Root of the disk-backed run cache; ``None``
            disables caching entirely (the hermetic default).
    """

    jobs: int = 1
    cache_dir: Path | None = None


_CONFIG = ParallelConfig()


def set_parallel_config(config: ParallelConfig) -> None:
    """Install the process-wide config (the CLI calls this once)."""
    global _CONFIG
    _CONFIG = config


def get_parallel_config() -> ParallelConfig:
    return _CONFIG


def resolve_jobs(jobs: int | None) -> int:
    """An explicit ``jobs`` argument wins; ``None`` reads the config."""
    if jobs is None:
        jobs = _CONFIG.jobs
    return max(1, int(jobs))


def _warm_worker(deployments: tuple[str, ...]) -> None:
    """Pool initializer: train each deployment's forest predictor once.

    Forest training is deterministic but takes CPU-seconds; warming it
    in the initializer keeps it off the critical path of the first
    task each worker receives.  With a fork start method the parent's
    already-trained cache is inherited and this is nearly free.
    """
    from repro.core.predictor import cached_forest_predictor
    from repro.experiments.configs import get_execution_model

    for name in deployments:
        cached_forest_predictor(get_execution_model(name))


def pmap(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    jobs: int | None = None,
    warm_deployments: Sequence[str] = (),
) -> list[R]:
    """Map ``fn`` over ``tasks`` with deterministic result ordering.

    Args:
        fn: A *module-level* function (it crosses a process boundary).
        tasks: Task descriptions; must be picklable.
        jobs: Worker processes; ``None`` reads the process config, and
            ``1`` (the default config) runs a plain serial loop.
        warm_deployments: Deployment names whose forest predictors each
            worker trains before taking tasks.

    Returns:
        ``[fn(t) for t in tasks]`` — the parallel path preserves task
        order, so results are independent of worker scheduling.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]

    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(jobs, len(tasks)),
            initializer=_warm_worker,
            initargs=(tuple(warm_deployments),),
        ) as pool:
            return list(pool.map(fn, tasks))
    except (OSError, PermissionError, ImportError) as error:
        # No usable process pool here (sandbox without /dev/shm
        # semaphores, restricted fork, ...): degrade to serial rather
        # than failing the experiment; results are identical.
        print(
            f"pmap: process pool unavailable ({error}); "
            "falling back to serial execution",
            file=sys.stderr,
        )
        return [fn(task) for task in tasks]
