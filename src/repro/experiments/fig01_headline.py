"""Figure 1: the paper's headline results.

Top right: A100 GPUs needed to serve a fixed cluster load across three
QoS tiers — the tuned Sarathi silo vs QoServe co-scheduling (paper:
13 vs 10 GPUs, a 23% saving).  Delegates to the Table 4 experiment.

Bottom: the bursty-overload comparison — rolling latency under a
diurnal load where SOTA scheduling cascades and QoServe degrades
gracefully.  Delegates to the Figure 12/13 experiment.
"""

from __future__ import annotations

from repro.experiments import tab04_cluster_scale
from repro.experiments import fig12_13_transient
from repro.experiments.configs import BENCH, Scale
from repro.experiments.result import ExperimentResult


def run(scale: Scale = BENCH, deployment: str = "llama3-8b") -> ExperimentResult:
    """Reproduce Figure 1's GPU-count headline."""
    table4 = tab04_cluster_scale.run(scale=scale, deployment=deployment)
    result = ExperimentResult(
        experiment="figure-01",
        title="GPUs needed: SOTA silo vs QoServe co-scheduling",
        notes=list(table4.notes) + ["paper: 13 vs 10 A100s (23% saving)"],
    )
    tuned_silo = table4.rows[0]
    qoserve = table4.rows[-1]
    saving_pct = (
        100.0 * (tuned_silo["gpus"] - qoserve["gpus"]) / tuned_silo["gpus"]
        if tuned_silo["gpus"]
        else float("nan")
    )
    result.rows.append(
        {
            "scheme": "SOTA-Siloed",
            "gpus": tuned_silo["gpus"],
            "viol_pct": tuned_silo["viol_overall_pct"],
        }
    )
    result.rows.append(
        {
            "scheme": "QoServe",
            "gpus": qoserve["gpus"],
            "viol_pct": qoserve["viol_overall_pct"],
        }
    )
    result.notes.append(f"GPU saving: {saving_pct:.1f}%")
    return result


def run_burst(scale: Scale = BENCH, deployment: str = "llama3-8b") -> ExperimentResult:
    """Reproduce Figure 1's bursty-overload panel (via Figure 12)."""
    result = fig12_13_transient.run(scale=scale, deployment=deployment)
    result.experiment = "figure-01-burst"
    result.title = "Transient overload: violations per scheme"
    return result


if __name__ == "__main__":
    print(run().render())
    print()
    print(run_burst().render())
