"""Figure 6: the illustrative five-request example, executed.

The paper walks through requests A-E across three QoS buckets: A is
interactive; B-E are non-interactive with staggered deadlines.  Under
SOTA fixed-chunk FCFS scheduling some deadlines are missed; QoServe
prioritizes A (earlier deadline than D despite later arrival) and
grows chunks into accumulated slack, finishing the same work sooner
with no deadline missed.  This module realizes that walkthrough as a
concrete schedule the tests and bench can check: same five requests,
both schedulers, measured makespan and deadline outcomes.
"""

from __future__ import annotations

from repro.core.qos import QoSClass, QoSSpec
from repro.core.request import Request
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import make_scheduler, run_replica_trace
from repro.workload.trace import Trace

#: Three QoS buckets as in the figure: one interactive, two
#: non-interactive with increasingly relaxed completion deadlines.
QOS1 = QoSSpec("QoS1", QoSClass.INTERACTIVE, ttft_slo=2.0, tbt_slo=0.050)
QOS2 = QoSSpec("QoS2", QoSClass.NON_INTERACTIVE, ttlt_slo=12.0)
QOS3 = QoSSpec("QoS3", QoSClass.NON_INTERACTIVE, ttlt_slo=30.0)


def five_request_scenario() -> Trace:
    """Requests A-E: A interactive, the rest batch, staggered arrivals.

    Sizes are chosen so that, at the strict-tier chunk of 256, the
    fixed-chunk FCFS schedule cannot complete B and D before their
    QoS2 deadlines, while slack-aware dynamic chunking can.
    """
    specs = [
        ("A", 0.10, 600, 30, QOS1),
        ("B", 0.00, 9000, 4, QOS2),
        ("C", 0.05, 6000, 4, QOS3),
        ("D", 0.20, 9000, 4, QOS2),
        ("E", 0.30, 6000, 4, QOS3),
    ]
    requests = []
    for index, (name, arrival, prompt, decode, qos) in enumerate(specs):
        request = Request(
            request_id=index,
            arrival_time=arrival,
            prompt_tokens=prompt,
            decode_tokens=decode,
            qos=qos,
            app_id=name,
        )
        requests.append(request)
    requests.sort(key=lambda r: r.arrival_time)
    return Trace(requests, dataset_name="figure-06", seed=0)


def run(
    scale: Scale = BENCH,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Execute the Figure 6 scenario under both schedulers."""
    execution_model = get_execution_model(deployment)
    result = ExperimentResult(
        experiment="figure-06",
        title="The five-request illustration: SOTA fixed chunk vs "
              "QoServe dynamic chunking",
        notes=["A interactive (2s TTFT / 50ms TBT); B,D 12s TTLT; "
               "C,E 30s TTLT"],
    )
    for label, kind, kwargs in (
        ("SOTA (FCFS, chunk 256)", "fcfs", {"chunk_size": 256}),
        ("QoServe", "qoserve-oracle", {}),
    ):
        trace = five_request_scenario()
        scheduler = make_scheduler(kind, execution_model, **kwargs)
        summary, engine = run_replica_trace(
            execution_model, scheduler, trace
        )
        by_name = {r.app_id: r for r in trace}
        result.rows.append(
            {
                "scheduler": label,
                "makespan_s": engine.simulator.now,
                "a_ttft_s": by_name["A"].ttft,
                "missed_deadlines": sum(
                    1 for r in trace if r.violated_deadline
                ),
                "missed": ",".join(
                    r.app_id for r in trace if r.violated_deadline
                ) or "-",
            }
        )
    return result


if __name__ == "__main__":
    print(run().render())
