"""Prefix reuse: hit rate x load x scheduler on session traffic.

ROADMAP item 3's scenario gap, measured: multi-turn agent/RAG sessions
(shared 1024-token system prompt, growing per-conversation histories)
served with the radix KV prefix cache on and off, across a load sweep
and the two deadline-ordered schedulers.  Reuse shrinks every turn's
prefill to its uncached suffix, which reshapes the chunking /
relegation frontier the QoServe scheduler works against — the point of
the experiment is *how much* of the frontier shifts, per scheduler and
load, not just that reuse is faster.

Each ``kv_reuse="off"`` / ``"radix"`` pair replays byte-identical
arrivals (fresh request clones of one pinned trace), so every row's
``goodput_x`` ratio is causal.  Hit/eviction statistics come straight
from the replica's :class:`~repro.engine.prefix.RadixPrefixCache`.
"""

from __future__ import annotations

from repro.api import ServeConfig, Session
from repro.core.request import Request
from repro.experiments.configs import BENCH, Scale
from repro.experiments.result import ExperimentResult
from repro.workload.sessions import AGENT_PROFILE, SessionWorkload

#: Session-start rates swept (sessions/s); turn QPS is ~`mean_turns`
#: times higher once conversations overlap.
DEFAULT_LOADS = (0.2, 0.4, 0.8)

DEFAULT_SCHEDULERS = ("qoserve", "medha")


def _goodput(requests: list[Request]) -> float:
    """Requests finished within SLO per second of arrival span."""
    good = sum(
        1 for r in requests if r.is_finished and not r.violated_deadline
    )
    if not requests:
        return 0.0
    span = max(
        1e-9,
        max(r.arrival_time for r in requests)
        - min(r.arrival_time for r in requests),
    )
    return good / span


def _run_once(
    base: list[Request],
    scheduler: str,
    kv_reuse: str,
    engine: str,
) -> dict:
    session = Session(ServeConfig(
        scheduler=scheduler, kv_reuse=kv_reuse, engine=engine,
    ))
    requests = [r.clone_fresh() for r in base]
    for request in requests:
        session.submit(request)
    session.drain()
    summary = session.summary()
    prompt_tokens = sum(r.prompt_tokens for r in requests)
    hits = misses = hit_tokens = evictions = 0
    for replica in session.engines:
        cache = replica.prefix_cache
        if cache is None:
            continue
        assert cache.total_refs() == 0, "prefix refcounts leaked"
        hits += cache.hits
        misses += cache.misses
        hit_tokens += cache.hit_tokens
        evictions += cache.evictions
    return {
        "goodput_rps": _goodput(requests),
        "violations_pct": summary.violations.overall_pct,
        "mean_ttft_ms": summary.mean_ttft * 1e3,
        "hits": hits,
        "misses": misses,
        "hit_tokens": hit_tokens,
        "evictions": evictions,
        "prompt_tokens": prompt_tokens,
    }


def run(
    scale: Scale = BENCH,
    deployment: str = "llama3-8b",
    schedulers: tuple[str, ...] = DEFAULT_SCHEDULERS,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    engine: str = "objects",
) -> ExperimentResult:
    """Sweep kv_reuse x load x scheduler over agent/RAG sessions."""
    num_sessions = max(10, scale.num_requests // 6)
    result = ExperimentResult(
        experiment="fig-prefix",
        title="Radix KV prefix reuse on multi-turn session traffic",
        notes=[
            f"{num_sessions} sessions, AGENT_PROFILE (shared "
            f"{AGENT_PROFILE.shared_prefix_tokens}-token system "
            f"prompt), deployment={deployment}, engine={engine}",
            "each off/radix pair replays identical arrivals",
        ],
    )
    hit_rates: dict[str, float] = {}
    for load in loads:
        base = list(
            SessionWorkload(
                AGENT_PROFILE, session_qps=load, seed=scale.seed
            ).build(num_sessions)
        )
        for scheduler in schedulers:
            off = _run_once(base, scheduler, "off", engine)
            radix = _run_once(base, scheduler, "radix", engine)
            lookups = radix["hits"] + radix["misses"]
            hit_rate = radix["hits"] / lookups if lookups else 0.0
            token_rate = (
                radix["hit_tokens"] / radix["prompt_tokens"]
                if radix["prompt_tokens"] else 0.0
            )
            hit_rates[f"{scheduler}@{load}"] = hit_rate
            result.rows.append({
                "scheduler": scheduler,
                "session_qps": load,
                "requests": len(base),
                "hit_rate_pct": 100.0 * hit_rate,
                "prefill_saved_pct": 100.0 * token_rate,
                "evictions": radix["evictions"],
                "goodput_off_rps": off["goodput_rps"],
                "goodput_radix_rps": radix["goodput_rps"],
                "goodput_x": (
                    radix["goodput_rps"] / off["goodput_rps"]
                    if off["goodput_rps"] else float("inf")
                ),
                "violations_off_pct": off["violations_pct"],
                "violations_radix_pct": radix["violations_pct"],
                "ttft_off_ms": off["mean_ttft_ms"],
                "ttft_radix_ms": radix["mean_ttft_ms"],
            })
    result.extras["hit_rates"] = hit_rates
    return result


if __name__ == "__main__":
    from repro.experiments.configs import SMOKE

    print(run(SMOKE).render())
