"""Terminal (ASCII) charts for experiment results.

The paper's artifacts are figures; this module renders any
:class:`~repro.experiments.result.ExperimentResult` column as a line
chart directly in the terminal, no plotting dependency required::

    == figure-11: viol_overall_pct vs qps ==
    60.0 |                                        F
         |                          F
         |            F   E
         |  F
     0.0 |  SEQ.......SEQ...........SQ............EQ
         +------------------------------------------
            2.0                                  6.0

Each series gets a letter marker; overlapping points show the later
series.  Y can be linear or log-scaled.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.experiments.result import ExperimentResult

MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ*+ox#@"


def ascii_line_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    log_y: bool = False,
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Args:
        series: Mapping of series name to (x, y) points.
        width / height: Plot area in characters.
        title: Heading line.
        log_y: Log-scale the y axis (non-positive values are clamped
            to the smallest positive value present).

    Returns:
        The rendered chart as a multi-line string.
    """
    points = [
        (x, y)
        for values in series.values()
        for x, y in values
        if _finite(x) and _finite(y)
    ]
    if not points:
        return f"== {title} ==\n(no finite data)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y:
        positive = [y for y in ys if y > 0]
        floor = min(positive) if positive else 1.0
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
        ys = [transform(y) for y in ys]
    else:
        transform = lambda y: y  # noqa: E731

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = {}
    for index, (name, values) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend[marker] = name
        for x, y in values:
            if not (_finite(x) and _finite(y)):
                continue
            column = round((x - x_lo) / x_span * (width - 1))
            row = round(
                (transform(y) - y_lo) / y_span * (height - 1)
            )
            grid[height - 1 - row][column] = marker

    y_top = 10 ** y_hi if log_y else y_hi
    y_bottom = 10 ** y_lo if log_y else y_lo
    label_width = max(len(_fmt(y_top)), len(_fmt(y_bottom)))
    lines = []
    if title:
        lines.append(f"== {title} ==")
    for i, row in enumerate(grid):
        if i == 0:
            label = _fmt(y_top).rjust(label_width)
        elif i == height - 1:
            label = _fmt(y_bottom).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (
        " " * label_width + "  " + _fmt(x_lo)
        + _fmt(x_hi).rjust(width - len(_fmt(x_lo)))
    )
    lines.append(x_axis)
    lines.append(
        "legend: " + "  ".join(f"{m}={name}" for m, name in legend.items())
    )
    if log_y:
        lines.append("(log-scale y)")
    return "\n".join(lines)


def plot_result(
    result: ExperimentResult,
    y: str,
    x: str | None = None,
    group_by: str | None = None,
    log_y: bool = False,
    **chart_kwargs,
) -> str:
    """Chart one column of an experiment result.

    Args:
        result: The experiment to plot.
        y: Column for the y axis.
        x: Column for the x axis; auto-detected when omitted (first
            numeric column with more than one distinct value that is
            not ``y``).
        group_by: Column defining the series; auto-detected when
            omitted (first string-valued column).
        log_y: Log-scale y.

    Raises:
        KeyError: If the requested columns do not exist.
    """
    if not result.rows:
        return f"== {result.experiment}: no rows =="
    columns = result.columns()
    if y not in columns:
        raise KeyError(f"no column {y!r}; available: {columns}")
    if x is None:
        x = _auto_x(result, exclude=y)
    elif x not in columns:
        raise KeyError(f"no column {x!r}; available: {columns}")
    if group_by is None:
        group_by = _auto_group(result)

    series: dict[str, list[tuple[float, float]]] = {}
    for row in result.rows:
        name = str(row.get(group_by, "all")) if group_by else "all"
        x_value = row.get(x)
        y_value = row.get(y)
        if isinstance(x_value, (int, float)) and isinstance(
            y_value, (int, float)
        ):
            series.setdefault(name, []).append(
                (float(x_value), float(y_value))
            )
    return ascii_line_chart(
        series,
        title=f"{result.experiment}: {y} vs {x}",
        log_y=log_y,
        **chart_kwargs,
    )


def _auto_x(result: ExperimentResult, exclude: str) -> str:
    for column in result.columns():
        if column == exclude:
            continue
        values = [
            row.get(column)
            for row in result.rows
            if isinstance(row.get(column), (int, float))
        ]
        if len(values) == len(result.rows) and len(set(values)) > 1:
            return column
    raise KeyError(
        f"{result.experiment}: no numeric x-axis candidate found"
    )


def _auto_group(result: ExperimentResult) -> str | None:
    for column in result.columns():
        if all(isinstance(row.get(column), str) for row in result.rows):
            return column
    return None


def _finite(value: Any) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


def _fmt(value: float) -> str:
    if abs(value) >= 1000:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.1f}"
    return f"{value:.3f}"
