"""Figure 4: throughput-latency trade-off as a function of chunk size.

Pure performance-model measurement: for each chunk size, the prefill
throughput (tokens/s) when streaming a long prompt in fixed chunks and
the per-batch latency in a representative serving state.  The figure's
two annotations are checked in tests: the ~50 ms SLO crossing lands
near chunk 330, and throughput saturates near chunk 2500.
"""

from __future__ import annotations

from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.perfmodel.execution import BatchShape, PrefillChunk

DEFAULT_CHUNKS = (
    64, 128, 192, 256, 330, 384, 512, 768, 1024, 1280,
    1536, 2048, 2500, 3072, 4096,
)


def run(
    scale: Scale = BENCH,
    chunks: tuple[int, ...] = DEFAULT_CHUNKS,
    deployment: str = "llama3-8b",
    context_before: int = 1024,
) -> ExperimentResult:
    """Reproduce Figure 4's chunk-size sweep."""
    execution_model = get_execution_model(deployment)
    result = ExperimentResult(
        experiment="figure-04",
        title="Throughput-latency trade-off vs chunk size",
        notes=[f"deployment={deployment}, mid-prompt context={context_before}"],
    )
    for chunk in chunks:
        shape = BatchShape(
            prefill_chunks=[PrefillChunk(chunk, context_before)]
        )
        latency = execution_model.batch_time(shape)
        result.rows.append(
            {
                "chunk_size": chunk,
                "throughput_tokens_per_s": chunk / latency,
                "batch_latency_ms": latency * 1e3,
            }
        )
    return result


if __name__ == "__main__":
    print(run().render())
