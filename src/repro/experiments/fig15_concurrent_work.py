"""Figure 15: comparison with concurrent work (Medha, PolyServe).

Panel (a): chunk-size choices of Medha's adaptive chunking vs
QoServe's slack-aware dynamic chunking on a synthetic trace of
10K-prefill / 500-decode requests, plus the isolated goodput
comparison (dynamic chunking only, FCFS order on both sides).

Panel (b): A100s required to serve 50 QPS of two interactive TBT
classes (50 ms and 100 ms, both 6 s TTFT) as the class mix varies —
PolyServe's per-class deployments vs QoServe's colocation.
"""

from __future__ import annotations

import math

from repro.cluster.capacity import stable_drain
from repro.cluster.polyserve import PolyServePlanner
from repro.core.qos import QoSClass, QoSSpec
from repro.core.request import Request
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    goodput_search,
    make_scheduler,
    run_replica_trace,
)
from repro.schedulers import QoServeConfig
from repro.simcore.rng import RngStreams
from repro.workload.datasets import AZURE_CONV
from repro.workload.tiers import TierMix
from repro.workload.trace import Trace

#: Panel (a) QoS: one interactive class, as in Medha's setting.
SYNTH_QOS = QoSSpec(
    name="Q1", qos_class=QoSClass.INTERACTIVE, ttft_slo=60.0, tbt_slo=0.050
)

#: QoServe restricted to dynamic chunking under FCFS-equivalent order
#: (single tier makes EDF degenerate to arrival order).
DC_ONLY = QoServeConfig(
    hybrid_prioritization=False,
    eager_relegation=False,
    selective_preemption=False,
)


def synthetic_trace(
    num_requests: int,
    qps: float,
    seed: int = 0,
    prefill_tokens: int = 10_000,
    decode_tokens: int = 500,
) -> Trace:
    """Medha's evaluation workload: long uniform prefills."""
    rng = RngStreams(seed).stream("synthetic-arrivals")
    gaps = rng.exponential(scale=1.0 / qps, size=num_requests)
    t = 0.0
    requests = []
    for i in range(num_requests):
        t += float(gaps[i])
        requests.append(
            Request(
                request_id=i,
                arrival_time=t,
                prompt_tokens=prefill_tokens,
                decode_tokens=decode_tokens,
                qos=SYNTH_QOS,
                app_id="synthetic",
            )
        )
    return Trace(requests, dataset_name="synthetic-10k", seed=seed)


def run_medha_comparison(
    scale: Scale = BENCH,
    deployment: str = "llama3-8b",
    qps: float = 0.25,
    window: int = 1000,
) -> ExperimentResult:
    """Panel (a): per-batch chunk sizes, Medha vs QoServe-DC."""
    execution_model = get_execution_model(deployment)
    num_requests = max(20, scale.num_requests // 20)
    result = ExperimentResult(
        experiment="figure-15a",
        title="Chunk-size choices: Medha adaptive vs QoServe dynamic",
        notes=[
            f"synthetic trace: 10K prefill / 500 decode, qps={qps}, "
            f"{num_requests} requests"
        ],
    )
    for name, scheduler in (
        ("Medha", make_scheduler("medha", execution_model)),
        (
            "QoServe",
            make_scheduler(
                "qoserve", execution_model, qoserve_config=DC_ONLY
            ),
        ),
    ):
        trace = synthetic_trace(num_requests, qps, seed=scale.seed)
        _, engine = run_replica_trace(
            execution_model, scheduler, trace, record_iterations=True
        )
        for i, record in enumerate(engine.iteration_records[:window]):
            if record.prefill_tokens <= 0:
                continue
            result.rows.append(
                {
                    "scheme": name,
                    "batch_index": i,
                    "chunk_size": record.prefill_tokens,
                }
            )
    return result


def run_medha_goodput(
    scale: Scale = BENCH, deployment: str = "llama3-8b"
) -> ExperimentResult:
    """Panel (a) inset: isolated chunking-strategy goodput."""
    execution_model = get_execution_model(deployment)
    num_requests = max(20, scale.num_requests // 20)
    result = ExperimentResult(
        experiment="figure-15a-goodput",
        title="Goodput from the chunking strategy alone (FCFS order)",
        notes=["paper: QoServe 0.32 vs Medha 0.26 QPS (+23%)"],
    )
    for name, kind, kwargs in (
        ("Medha", "medha", {}),
        ("QoServe", "qoserve", {"qoserve_config": DC_ONLY}),
    ):
        base = synthetic_trace(num_requests, qps=1.0, seed=scale.seed)

        lo, hi = 0.02, 1.0
        best = 0.0
        for _ in range(10):
            mid = 0.5 * (lo + hi)
            trace = base.scaled_arrivals(mid)
            scheduler = make_scheduler(kind, execution_model, **kwargs)
            summary, _ = run_replica_trace(execution_model, scheduler, trace)
            if summary.violations.overall_pct <= 1.0 and stable_drain(summary):
                best = mid
                lo = mid
            else:
                hi = mid
        result.rows.append({"scheme": name, "goodput_qps": best})
    return result


def run_polyserve_comparison(
    scale: Scale = BENCH,
    deployment: str = "llama3-8b",
    total_qps: float = 50.0,
    q1_shares: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> ExperimentResult:
    """Panel (b): GPUs needed across TBT-class mixes."""
    execution_model = get_execution_model(deployment)
    tp = execution_model.tp_degree
    tier_strict = QoSSpec(
        name="Q1", qos_class=QoSClass.INTERACTIVE, ttft_slo=6.0, tbt_slo=0.050
    )
    tier_relaxed = QoSSpec(
        name="Q2", qos_class=QoSClass.INTERACTIVE, ttft_slo=6.0, tbt_slo=0.100
    )

    # PolyServe: one dedicated deployment per TBT class, Medha-style
    # adaptive chunking fitted to the class's TBT target.
    per_class_goodput = {}
    for tier in (tier_strict, tier_relaxed):
        mix = TierMix(tiers=(tier,), weights=(1.0,), app_names=("chat",))
        capacity = goodput_search(
            "medha",
            execution_model,
            AZURE_CONV,
            num_requests=scale.num_requests,
            seed=scale.seed,
            mix=mix,
            scheduler_kwargs={"tbt_target": tier.tbt_slo},
        )
        per_class_goodput[tier.name] = capacity.max_qps

    result = ExperimentResult(
        experiment="figure-15b",
        title=f"GPUs to serve {total_qps} QPS across two TBT classes",
        notes=[
            "PolyServe: dedicated deployment per TBT class; "
            "QoServe: colocated",
            f"per-class goodput (PolyServe): {per_class_goodput}",
        ],
    )
    for q1_share in q1_shares:
        mix = TierMix(
            tiers=(tier_strict, tier_relaxed),
            weights=(q1_share, 1.0 - q1_share),
            app_names=("chat-strict", "chat-relaxed"),
        )
        qoserve_capacity = goodput_search(
            "qoserve",
            execution_model,
            AZURE_CONV,
            num_requests=scale.num_requests,
            seed=scale.seed,
            mix=mix,
        )
        planner = PolyServePlanner(per_class_goodput, tp_degree=tp)
        poly_gpus = planner.plan(
            total_qps, {"Q1": q1_share, "Q2": 1.0 - q1_share}
        ).gpus
        qoserve_gpus = (
            math.ceil(total_qps / max(1e-9, qoserve_capacity.max_qps)) * tp
        )
        result.rows.append(
            {
                "q1_share_pct": int(round(q1_share * 100)),
                "polyserve_gpus": poly_gpus,
                "qoserve_gpus": qoserve_gpus,
            }
        )
    return result


if __name__ == "__main__":
    print(run_medha_goodput().render())
    print()
    print(run_polyserve_comparison().render())
