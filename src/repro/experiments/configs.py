"""Canonical deployments (Table 1) and experiment scale presets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel import (
    A100_80GB,
    H100_80GB,
    LLAMA3_70B,
    LLAMA3_8B,
    QWEN_7B,
    ExecutionModel,
    HardwareSpec,
    ModelSpec,
)


@dataclass(frozen=True)
class DeploymentSpec:
    """A (model, hardware, TP) row of Table 1."""

    name: str
    model: ModelSpec
    hardware: HardwareSpec
    tp_degree: int


#: Table 1's three deployments.
DEPLOYMENTS: dict[str, DeploymentSpec] = {
    "llama3-8b": DeploymentSpec("llama3-8b", LLAMA3_8B, A100_80GB, 1),
    "qwen-7b": DeploymentSpec("qwen-7b", QWEN_7B, A100_80GB, 2),
    "llama3-70b": DeploymentSpec("llama3-70b", LLAMA3_70B, H100_80GB, 4),
}

_MODEL_CACHE: dict[str, ExecutionModel] = {}


def get_execution_model(deployment: str = "llama3-8b") -> ExecutionModel:
    """Cached :class:`ExecutionModel` for a named deployment."""
    if deployment not in DEPLOYMENTS:
        raise KeyError(
            f"unknown deployment {deployment!r}; "
            f"options: {sorted(DEPLOYMENTS)}"
        )
    if deployment not in _MODEL_CACHE:
        spec = DEPLOYMENTS[deployment]
        _MODEL_CACHE[deployment] = ExecutionModel(
            spec.model, spec.hardware, tp_degree=spec.tp_degree
        )
    return _MODEL_CACHE[deployment]


@dataclass(frozen=True)
class Scale:
    """How big an experiment run should be.

    Attributes:
        num_requests: Requests per simulation run (rate sweeps that
            hold the request bodies fixed use exactly this many).
        min_duration_s: Floor on the arrival span for experiments that
            measure *violations under sustained load*.  The Q2/Q3
            tiers carry 600 s / 1800 s TTLT deadlines, so overload
            only turns into violations once backlog delay crosses
            those horizons — a short burst hides it (the paper runs 4
            hours; the artifact's tiny scripts shrink this the same
            way).
        seed: Trace seed.
        label: Name shown in result headers.
    """

    num_requests: int
    min_duration_s: float = 0.0
    seed: int = 42
    label: str = "custom"

    def requests_for(self, qps: float) -> int:
        """Request count giving at least ``min_duration_s`` at ``qps``."""
        return max(self.num_requests, int(qps * self.min_duration_s))


#: Quick validation (the artifact appendix's ``tester.sh`` spirit).
SMOKE = Scale(num_requests=300, min_duration_s=150.0, label="smoke")

#: Default for the benchmark suite: big enough for stable trends.
BENCH = Scale(num_requests=1500, min_duration_s=700.0, label="bench")

#: Closer to the paper's durations; minutes of wall clock per figure.
FULL = Scale(num_requests=6000, min_duration_s=2000.0, label="full")
