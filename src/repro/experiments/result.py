"""Tabular experiment results with paper-style rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Rows of an experiment plus provenance, renderable as a table.

    Attributes:
        experiment: Identifier, e.g. "figure-10".
        title: Human-readable description.
        rows: List of uniform dicts (column -> value).
        notes: Free-form caveats (scale, substitutions).
        extras: Non-tabular attachments (e.g. merged latency sketches,
            attribution reports) that downstream consumers read
            programmatically; never rendered into the table.
    """

    experiment: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    def columns(self) -> list[str]:
        cols: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if value == float("inf"):
                return "inf"
            if abs(value) >= 1000:
                return f"{value:.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        """Format as a fixed-width text table."""
        lines = [f"== {self.experiment}: {self.title} =="]
        cols = self.columns()
        if self.rows:
            table = [[self._fmt(row.get(c, "")) for c in cols] for row in self.rows]
            widths = [
                max(len(c), *(len(r[i]) for r in table))
                for i, c in enumerate(cols)
            ]
            header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
            lines.append(header)
            lines.append("-" * len(header))
            for r in table:
                lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, name: str) -> list[Any]:
        """Extract one column across rows."""
        return [row.get(name) for row in self.rows]

    def row_by(self, **criteria: Any) -> dict[str, Any]:
        """First row matching all key=value criteria.

        Raises:
            KeyError: If no row matches.
        """
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                return row
        raise KeyError(f"no row matching {criteria}")
