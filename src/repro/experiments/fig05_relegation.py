"""Figure 5: the effect of eager relegation under overload.

Compares QoServe with and without relegation across a load sweep; the
paper shows that relegating a small percentage of requests keeps the
*median* request's latency flat where the no-relegation system's
latency grows by orders of magnitude from cascading violations.
"""

from __future__ import annotations

from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import build_trace, make_scheduler, run_replica_trace
from repro.schedulers.qoserve import make_ablation_config
from repro.workload.datasets import AZURE_CODE

DEFAULT_LOADS = (3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0)


def run(
    scale: Scale = BENCH,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    deployment: str = "llama3-8b",
) -> ExperimentResult:
    """Reproduce Figure 5's relegation on/off comparison."""
    execution_model = get_execution_model(deployment)
    base = build_trace(
        AZURE_CODE, qps=1.0, num_requests=scale.requests_for(max(loads)),
        seed=scale.seed
    )
    # Relegation is isolated on the deadline-ordered (EDF) base with
    # dynamic chunking, matching Table 5's layering: under pure EDF the
    # most-overdue request sorts *first*, so without relegation every
    # doomed request keeps consuming capacity ahead of savable ones —
    # the cascade of Figure 5.  (With hybrid prioritization already
    # on, the alpha term masks most of this effect.)
    configs = {
        "no-relegation": make_ablation_config(dynamic_chunking=True),
        "eager-relegation": make_ablation_config(
            dynamic_chunking=True, eager_relegation=True
        ),
    }
    result = ExperimentResult(
        experiment="figure-05",
        title="Eager relegation keeps median latency stable under overload",
        notes=[f"scale={scale.label}, dataset=AzCode, deployment={deployment}"],
    )
    attribution: dict[str, dict[str, int]] = {}
    for name, config in configs.items():
        causes: dict[str, int] = {}
        for qps in loads:
            trace = base.scaled_arrivals(qps)
            scheduler = make_scheduler(
                "qoserve", execution_model, qoserve_config=config
            )
            summary, _ = run_replica_trace(
                execution_model, scheduler, trace, audit=True
            )
            stats = summary.scheduler_stats
            report = summary.attribution
            # Relegation's causal fingerprint: what fraction of the
            # run's latency was deliberate parking vs congestion.
            share = report.phase_share()
            for cause, n in report.dominant_causes().items():
                causes[cause] = causes.get(cause, 0) + n
            result.rows.append(
                {
                    "config": name,
                    "qps": qps,
                    "median_latency_s": summary.overall_percentiles[0.50],
                    "violations_pct": summary.violations.overall_pct,
                    "relegated_pct": summary.violations.relegated_pct,
                    "relegated_n": stats["relegations_total"],
                    "preemptions": stats["preemptions"],
                    "releg_stall_share": share["relegation_stall"],
                    "queue_share": share["admission_queue"],
                }
            )
        attribution[name] = dict(sorted(causes.items()))
    result.extras["violation_attribution"] = attribution
    for name, causes in attribution.items():
        if causes:
            result.notes.append(
                f"{name} dominant violation causes: "
                + ", ".join(f"{c}={n}" for c, n in causes.items())
            )
    return result


if __name__ == "__main__":
    print(run().render())
