"""Figure 7: max per-replica goodput in a shared cluster.

For each (model, hardware, dataset) cell, finds the largest QPS each
scheduler sustains with <= 1% deadline violations.  The paper reports
QoServe at 1.5-2.4x Sarathi-FCFS and 1.2-1.4x Sarathi-EDF.
"""

from __future__ import annotations

from repro.experiments.cache import cached_cell
from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.parallel import pmap
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import goodput_search
from repro.workload.datasets import DATASETS

SCHEMES = ("fcfs", "edf", "qoserve")
DEFAULT_DEPLOYMENTS = ("llama3-8b", "qwen-7b", "llama3-70b")
DEFAULT_DATASETS = ("AzCode", "AzConv", "ShareGPT")


def _goodput_cell(task: tuple[str, str, str, int, int]) -> dict:
    """One (deployment, dataset, scheme) goodput bisection."""
    deployment, dataset_name, scheme, num_requests, seed = task

    def compute() -> dict:
        capacity = goodput_search(
            scheme,
            get_execution_model(deployment),
            DATASETS[dataset_name],
            num_requests=num_requests,
            seed=seed,
        )
        return {
            "deployment": deployment,
            "dataset": dataset_name,
            "scheme": f"Sarathi-{scheme.upper()}"
            if scheme in ("fcfs", "edf")
            else "QoServe",
            "goodput_qps": capacity.max_qps,
        }

    return cached_cell(
        compute,
        figure="fig07",
        deployment=deployment,
        dataset=dataset_name,
        scheme=scheme,
        num_requests=num_requests,
        seed=seed,
    )


def run(
    scale: Scale = BENCH,
    deployments: tuple[str, ...] = DEFAULT_DEPLOYMENTS,
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    schemes: tuple[str, ...] = SCHEMES,
    jobs: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 7's goodput grid (PD colocation).

    Each grid cell is an independent bisection search, fanned out over
    ``jobs`` worker processes (``None`` reads the ``--jobs`` setting).
    """
    result = ExperimentResult(
        experiment="figure-07",
        title="Max goodput per replica, shared cluster, PD colocation",
        notes=[
            f"scale={scale.label}; goodput = max QPS with <=1% violations"
        ],
    )
    tasks = [
        (deployment, dataset_name, scheme, scale.num_requests, scale.seed)
        for deployment in deployments
        for dataset_name in datasets
        for scheme in schemes
    ]
    result.rows.extend(
        pmap(_goodput_cell, tasks, jobs=jobs, warm_deployments=deployments)
    )
    return result


if __name__ == "__main__":
    print(run().render())
