"""Figure 7: max per-replica goodput in a shared cluster.

For each (model, hardware, dataset) cell, finds the largest QPS each
scheduler sustains with <= 1% deadline violations.  The paper reports
QoServe at 1.5-2.4x Sarathi-FCFS and 1.2-1.4x Sarathi-EDF.
"""

from __future__ import annotations

from repro.experiments.configs import BENCH, Scale, get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import goodput_search
from repro.workload.datasets import DATASETS

SCHEMES = ("fcfs", "edf", "qoserve")
DEFAULT_DEPLOYMENTS = ("llama3-8b", "qwen-7b", "llama3-70b")
DEFAULT_DATASETS = ("AzCode", "AzConv", "ShareGPT")


def run(
    scale: Scale = BENCH,
    deployments: tuple[str, ...] = DEFAULT_DEPLOYMENTS,
    datasets: tuple[str, ...] = DEFAULT_DATASETS,
    schemes: tuple[str, ...] = SCHEMES,
) -> ExperimentResult:
    """Reproduce Figure 7's goodput grid (PD colocation)."""
    result = ExperimentResult(
        experiment="figure-07",
        title="Max goodput per replica, shared cluster, PD colocation",
        notes=[
            f"scale={scale.label}; goodput = max QPS with <=1% violations"
        ],
    )
    for deployment in deployments:
        execution_model = get_execution_model(deployment)
        for dataset_name in datasets:
            dataset = DATASETS[dataset_name]
            for scheme in schemes:
                capacity = goodput_search(
                    scheme,
                    execution_model,
                    dataset,
                    num_requests=scale.num_requests,
                    seed=scale.seed,
                )
                result.rows.append(
                    {
                        "deployment": deployment,
                        "dataset": dataset_name,
                        "scheme": f"Sarathi-{scheme.upper()}"
                        if scheme in ("fcfs", "edf")
                        else "QoServe",
                        "goodput_qps": capacity.max_qps,
                    }
                )
    return result


if __name__ == "__main__":
    print(run().render())
