"""SLO forensics: per-request latency attribution from trace events.

QoServe's claims are causal — dynamic chunking, hybrid prioritization
and eager relegation each prevent a *specific kind* of violation — so
aggregate violation rates are not enough: we need to say *why* a given
request missed its deadline.  This module reconstructs each completed
request's causal timeline from the recorded event stream
(:mod:`repro.obs.events`) and tiles its end-to-end latency into named
phases:

``admission_queue``
    Arrival until the first prefill chunk was scheduled (or until
    relegation, whichever came first).
``prefill_compute``
    Time actually spent inside iterations that carried one of the
    request's prefill chunks.
``chunk_stall``
    Gaps between prefill chunks with no other explanation: the dynamic
    chunker granted a chunk smaller than the remaining prefill, so the
    request waited for its next slice.
``preempt_stall``
    Gaps containing a stall-recovery preemption of this request (its
    partial KV was sacrificed and recomputed).
``relegation_stall``
    Time parked behind regular work after eager relegation demoted the
    request.
``retry_stall``
    Gaps containing a crash-retry re-enqueue of this request.
``decode``
    First output token until the last.

The tiling is exact by construction — consecutive phase boundaries
telescope from arrival to completion — which is what lets the
conservation test demand agreement with measured TTLT to 1e-9 s.
Every violated request then gets exactly one *dominant cause*: the
largest phase among those that could have caused its governing SLO
miss (pre-first-token phases for TTFT-governed interactive tiers, all
phases for TTLT-governed tiers), ties broken by canonical phase order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.qos import DEFAULT_TIERS

#: Canonical phase order: decomposition reports phases in this order
#: and dominant-cause ties resolve to the earlier phase.
PHASES: tuple[str, ...] = (
    "admission_queue",
    "prefill_compute",
    "chunk_stall",
    "preempt_stall",
    "relegation_stall",
    "retry_stall",
    "decode",
)

#: Tolerance for the conservation invariant (seconds).
CONSERVATION_TOL = 1e-9

_TIER_INTERACTIVE: dict[str, bool] = {
    spec.name: spec.is_interactive for spec in DEFAULT_TIERS
}


def is_interactive(tier: str, qos_class: str) -> bool:
    """TTFT-governed (interactive) vs TTLT-governed request.

    Schema-v2 ``request_completed`` events carry ``qos_class``
    explicitly; v1 traces fall back to the Table 3 tier-name
    convention, and unknown names default to non-interactive (TTLT
    governance considers every phase, so no cause is structurally
    unreachable).  Shared with :mod:`repro.obs.diff`, which needs the
    same governance rule to compute deadline slack.
    """
    if qos_class:
        return qos_class == "interactive"
    return _TIER_INTERACTIVE.get(tier, False)


_is_interactive = is_interactive


@dataclass
class RequestAudit:
    """One completed request's reconstructed latency decomposition.

    ``phases`` maps every name in :data:`PHASES` to seconds (zeros
    included), and sums to ``completion_time - arrival_time`` within
    :data:`CONSERVATION_TOL`.  ``dominant_cause`` is set iff the
    request violated its governing SLO.
    """

    request_id: int
    tier: str
    arrival_time: float
    first_scheduled_time: float
    first_token_time: float
    completion_time: float
    violated: bool
    relegated: bool
    evictions: int
    phases: dict[str, float]
    #: "interactive" / "non-interactive" / "" (v1 trace, unknown).
    qos_class: str = ""
    dominant_cause: str | None = None
    #: The decomposition as an ordered timeline: ``(phase, start, end)``
    #: tuples telescoping from arrival to completion (zero-length
    #: segments omitted).  ``phases`` is summed from exactly these
    #: segments, so a span tree built over them reconciles with the
    #: attribution identically — this is what :mod:`repro.obs.spans`
    #: consumes.
    segments: list[tuple[str, float, float]] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.completion_time - self.arrival_time

    @property
    def conservation_error(self) -> float:
        return abs(sum(self.phases.values()) - self.total)

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "tier": self.tier,
            "total": self.total,
            "violated": self.violated,
            "relegated": self.relegated,
            "evictions": self.evictions,
            "dominant_cause": self.dominant_cause,
            "phases": {name: self.phases[name] for name in PHASES},
        }


@dataclass
class AttributionReport:
    """Aggregated latency attribution for one run.

    Attributes:
        requests: Per-request decompositions, ordered by completion.
        phase_totals: Tier -> phase -> summed seconds.
        violations_by_cause: Tier -> dominant cause -> violated count.
        completed: Tier -> completed request count.
        violated: Tier -> violated request count.
    """

    requests: list[RequestAudit] = field(default_factory=list)
    phase_totals: dict[str, dict[str, float]] = field(default_factory=dict)
    violations_by_cause: dict[str, dict[str, int]] = field(
        default_factory=dict
    )
    completed: dict[str, int] = field(default_factory=dict)
    violated: dict[str, int] = field(default_factory=dict)

    def max_conservation_error(self) -> float:
        """Largest per-request tiling error (0.0 when empty)."""
        return max(
            (audit.conservation_error for audit in self.requests),
            default=0.0,
        )

    def dominant_causes(self) -> dict[str, int]:
        """Violated counts by cause, across all tiers."""
        out: dict[str, int] = {}
        for causes in self.violations_by_cause.values():
            for cause, n in causes.items():
                out[cause] = out.get(cause, 0) + n
        return out

    def phase_share(self, tier: str | None = None) -> dict[str, float]:
        """Fraction of total latency spent in each phase.

        Args:
            tier: Restrict to one tier; ``None`` aggregates all tiers.
        """
        totals = {name: 0.0 for name in PHASES}
        for t, phases in self.phase_totals.items():
            if tier is not None and t != tier:
                continue
            for name, seconds in phases.items():
                totals[name] += seconds
        grand = sum(totals.values())
        if grand <= 0.0:
            return {name: 0.0 for name in PHASES}
        return {name: totals[name] / grand for name in PHASES}

    def to_dict(self) -> dict[str, Any]:
        tiers = sorted(self.completed)
        return {
            "num_requests": len(self.requests),
            "max_conservation_error": self.max_conservation_error(),
            "completed": {t: self.completed[t] for t in tiers},
            "violated": {t: self.violated.get(t, 0) for t in tiers},
            "phase_totals": {
                t: {
                    name: self.phase_totals[t].get(name, 0.0)
                    for name in PHASES
                }
                for t in tiers
            },
            "violations_by_cause": {
                t: dict(sorted(self.violations_by_cause.get(t, {}).items()))
                for t in tiers
            },
            "dominant_causes": dict(sorted(self.dominant_causes().items())),
        }


def _merge_intervals(
    intervals: list[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Union of possibly-overlapping ``(start, end)`` spans, sorted."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


def _classify_gap(
    gap_start: float,
    gap_end: float,
    retry_times: list[float],
    preempt_times: list[float],
    relegated_time: float | None,
    served_time: float | None,
) -> str:
    """Name the stall occupying ``[gap_start, gap_end]``.

    Precedence mirrors mechanism severity: a crash retry explains the
    whole wait better than anything else, then a preemption (the KV
    was lost and recomputed), then relegation (deliberately parked),
    and only an unexplained gap is charged to chunking.
    """
    if any(gap_start <= t <= gap_end for t in retry_times):
        return "retry_stall"
    if any(gap_start <= t <= gap_end for t in preempt_times):
        return "preempt_stall"
    if relegated_time is not None and relegated_time <= gap_end:
        # Parked behind regular work from demotion until opportunistic
        # service; after relegation_served, waits are ordinary chunk
        # scheduling again.
        if served_time is None or gap_start < served_time:
            return "relegation_stall"
    return "chunk_stall"


def audit_events(events: Iterable[Mapping[str, Any]]) -> AttributionReport:
    """Reconstruct per-request latency attribution from trace events.

    Args:
        events: Serialized trace events (dicts with a ``kind`` key), in
            any order — e.g. the output of
            :func:`repro.obs.trace.read_jsonl_trace` or a
            :class:`~repro.obs.trace.ListSink`'s buffer.  Only
            completed requests are audited; kinds the audit does not
            need are ignored, so v1 traces work (they simply cannot
            attribute relegation service precisely).
    """
    # Pass 1: index the per-request markers the decomposition needs.
    service: dict[int, list[tuple[float, float]]] = {}
    retries: dict[int, list[float]] = {}
    preempts: dict[int, list[float]] = {}
    relegated_at: dict[int, float] = {}
    served_at: dict[int, float] = {}
    completions: list[Mapping[str, Any]] = []
    for event in events:
        kind = event.get("kind")
        if kind == "iteration_scheduled":
            ts = event["ts"]
            end = ts + event["dur"]
            for request_id in event.get("prefill_request_ids", ()):
                service.setdefault(request_id, []).append((ts, end))
        elif kind == "request_completed":
            completions.append(event)
        elif kind == "request_retried":
            retries.setdefault(event["request_id"], []).append(event["ts"])
        elif kind == "preempted":
            preempts.setdefault(event["request_id"], []).append(event["ts"])
        elif kind == "relegated":
            relegated_at.setdefault(event["request_id"], event["ts"])
        elif kind == "relegation_served":
            served_at.setdefault(event["request_id"], event["ts"])

    report = AttributionReport()
    for completion in completions:
        request_id = completion["request_id"]
        audit = _decompose(
            completion,
            service.get(request_id, []),
            retries.get(request_id, []),
            preempts.get(request_id, []),
            relegated_at.get(request_id),
            served_at.get(request_id),
        )
        report.requests.append(audit)
        tier = audit.tier
        report.completed[tier] = report.completed.get(tier, 0) + 1
        totals = report.phase_totals.setdefault(
            tier, {name: 0.0 for name in PHASES}
        )
        for name, seconds in audit.phases.items():
            totals[name] += seconds
        if audit.violated:
            report.violated[tier] = report.violated.get(tier, 0) + 1
            causes = report.violations_by_cause.setdefault(tier, {})
            assert audit.dominant_cause is not None
            causes[audit.dominant_cause] = (
                causes.get(audit.dominant_cause, 0) + 1
            )
    return report


def _decompose(
    completion: Mapping[str, Any],
    service: list[tuple[float, float]],
    retry_times: list[float],
    preempt_times: list[float],
    relegated_time: float | None,
    served_time: float | None,
) -> RequestAudit:
    arrival = completion["arrival_time"]
    completed = completion["completion_time"]
    first_token = completion["first_token_time"]
    if first_token is None:
        first_token = completed
    anchor0 = completion["scheduled_first_time"]
    if anchor0 is None:
        anchor0 = first_token
    anchor0 = min(max(anchor0, arrival), first_token)
    first_token = min(max(first_token, arrival), completed)

    # The decomposition is built as an ordered segment timeline and the
    # phase totals are summed from exactly those segments, so a span
    # tree over the segments reconciles with the phase totals by
    # construction (the same additions, in the same order).
    segments: list[tuple[str, float, float]] = []

    def push(name: str, start: float, end: float) -> None:
        if end > start:
            segments.append((name, start, end))

    # [arrival, anchor0]: waiting for the first chunk.  If relegation
    # struck while still queued, the wait after demotion was a policy
    # decision, not congestion.
    if relegated_time is not None and relegated_time < anchor0:
        split = max(relegated_time, arrival)
        push("admission_queue", arrival, split)
        push("relegation_stall", split, anchor0)
    else:
        push("admission_queue", arrival, anchor0)

    # [anchor0, first_token]: tiled by merged service spans (clipped)
    # and the classified gaps between them.
    cursor = anchor0
    for start, end in _merge_intervals(service):
        start = min(max(start, cursor), first_token)
        end = min(max(end, cursor), first_token)
        if start > cursor:
            push(_classify_gap(
                cursor, start, retry_times, preempt_times,
                relegated_time, served_time,
            ), cursor, start)
        push("prefill_compute", start, end)
        cursor = max(cursor, end)
    if first_token > cursor:
        # Trailing wait with no recorded service (e.g. the decode ramp
        # before the first token, or a v1 trace without service spans).
        push(_classify_gap(
            cursor, first_token, retry_times, preempt_times,
            relegated_time, served_time,
        ), cursor, first_token)

    # [first_token, completion]: decoding (includes any re-prefill
    # after a decode eviction — the request was past first token).
    push("decode", first_token, completed)

    phases = {name: 0.0 for name in PHASES}
    for name, start, end in segments:
        phases[name] += end - start

    violated = bool(completion["violated"])
    audit = RequestAudit(
        request_id=completion["request_id"],
        tier=completion["tier"],
        arrival_time=arrival,
        first_scheduled_time=anchor0,
        first_token_time=first_token,
        completion_time=completed,
        violated=violated,
        relegated=bool(completion["relegated"]),
        evictions=int(completion["evictions"]),
        phases=phases,
        qos_class=str(completion.get("qos_class", "")),
        segments=segments,
    )
    if violated:
        audit.dominant_cause = _dominant_cause(audit)
    return audit


def _dominant_cause(audit: RequestAudit) -> str:
    """The largest phase that can explain the governing SLO miss.

    Interactive (TTFT-governed) tiers cannot blame decode — the miss
    happened at or before the first token — so decode is excluded;
    TTLT-governed tiers consider every phase.  Ties resolve to the
    earliest phase in :data:`PHASES`, making classification
    deterministic.
    """
    candidates = (
        tuple(name for name in PHASES if name != "decode")
        if _is_interactive(audit.tier, audit.qos_class)
        else PHASES
    )
    return max(candidates, key=lambda name: (audit.phases[name],
                                             -candidates.index(name)))


def audit_requests(requests: Iterable[Any]) -> AttributionReport:
    """Coarse attribution directly from completed ``Request`` objects.

    A fallback for callers without a trace (no per-chunk service
    spans): phases collapse to admission wait, a single pre-first-token
    span (charged to relegation when the request was relegated, else to
    chunking), and decode.  Conservation still holds exactly.
    """
    events: list[dict[str, Any]] = []
    for request in requests:
        if request.completion_time is None:
            continue
        events.append({
            "kind": "request_completed",
            "ts": request.completion_time,
            "replica_id": -1,
            "request_id": request.request_id,
            "tier": request.qos.name,
            "arrival_time": request.arrival_time,
            "scheduled_first_time": request.scheduled_first_time,
            "first_token_time": request.first_token_time,
            "completion_time": request.completion_time,
            "relegated": request.relegated,
            "violated": request.violated_deadline,
            "evictions": request.evictions,
            "qos_class": request.qos.qos_class.value,
        })
        if request.relegated and request.relegated_time is not None:
            events.append({
                "kind": "relegated",
                "ts": request.relegated_time,
                "request_id": request.request_id,
                "tier": request.qos.name,
                "important": request.important,
                "remaining_prefill": 0,
            })
    return audit_events(events)
