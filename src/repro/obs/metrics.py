"""A zero-dependency metrics registry with Prometheus-text export.

Models the subset of the Prometheus data model the simulator needs:
counters (monotone totals), gauges (point-in-time values with a
tracked maximum) and histograms (configurable bucket boundaries with
cumulative ``le`` export).  Every metric family supports label
dimensions via :meth:`MetricFamily.labels`, mirroring
``prometheus_client``'s API so the instrumentation reads familiarly —
without importing anything beyond the standard library.

Registries are plain objects, not process-global state: each
:class:`~repro.obs.observer.TracingObserver` owns one, so concurrent
simulations never share series.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Mapping

from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

#: Quantiles exported for sketch metrics (Prometheus summary lines).
DEFAULT_SKETCH_QUANTILES: tuple[float, ...] = (0.50, 0.90, 0.95, 0.99)

#: Default histogram boundaries for iteration latencies (seconds).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.005, 0.010, 0.025, 0.050, 0.100, 0.250, 0.500, 1.0, 2.5,
)

#: Default histogram boundaries for chunk sizes (tokens); the top
#: boundary matches the paper's 2500-token saturation point.
DEFAULT_CHUNK_BUCKETS: tuple[float, ...] = (
    32, 64, 128, 256, 512, 1024, 2048, 2500,
)


def format_value(value: float) -> str:
    """Render a sample the way Prometheus text exposition expects."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(
    labelnames: tuple[str, ...], labelvalues: tuple[str, ...]
) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{value}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Child:
    """One labeled series of a counter or gauge family."""

    __slots__ = ("value", "max_seen")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_seen = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount
        if self.value > self.max_seen:
            self.max_seen = self.value

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.max_seen:
            self.max_seen = self.value


class _HistogramChild:
    """One labeled series of a histogram family."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot is +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative count)`` pairs, ending with ``+Inf``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


class _SketchChild:
    """One labeled series of a sketch family (mergeable quantiles).

    Unlike :class:`_HistogramChild`'s fixed buckets, the wrapped
    :class:`~repro.obs.sketch.QuantileSketch` holds any quantile to a
    relative-error bound regardless of the value range, and two
    children can be merged exactly — the property ``pmap`` workers rely
    on to stream percentiles without shipping raw samples.
    """

    __slots__ = ("sketch",)

    def __init__(self, relative_accuracy: float) -> None:
        self.sketch = QuantileSketch(relative_accuracy)

    def observe(self, value: float) -> None:
        self.sketch.add(value)

    def merge(self, other: "_SketchChild") -> None:
        self.sketch.merge(other.sketch)

    @property
    def count(self) -> int:
        return self.sketch.count

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)


class MetricFamily:
    """A named metric with a fixed type and label dimensions."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ) -> None:
        if kind not in ("counter", "gauge", "histogram", "sketch"):
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.help_text = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        if kind == "histogram":
            self.buckets = tuple(sorted(float(b) for b in buckets))
            if not self.buckets:
                raise ValueError("histogram needs at least one bucket")
        if kind == "sketch":
            self.relative_accuracy = float(relative_accuracy)
        self._children: dict[
            tuple[str, ...], _Child | _HistogramChild | _SketchChild
        ] = {}

    # --- series access ---------------------------------------------------

    def labels(self, *values, **kv):
        """The child series for one label-value combination."""
        if kv:
            if values:
                raise ValueError("pass labels positionally or by name")
            values = tuple(kv[name] for name in self.labelnames)
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {key}"
            )
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = _HistogramChild(self.buckets)
            elif self.kind == "sketch":
                child = _SketchChild(self.relative_accuracy)
            else:
                child = _Child()
            self._children[key] = child
        return child

    def _default_child(self):
        return self.labels()

    # Unlabeled convenience API (prometheus_client style).
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        child = self._default_child()
        if isinstance(child, (_HistogramChild, _SketchChild)):
            raise TypeError(f"{self.kind}s have no scalar value")
        return child.value

    def series(
        self,
    ) -> dict[tuple[str, ...], "_Child | _HistogramChild | _SketchChild"]:
        """All live children, keyed by label values (sorted)."""
        return dict(sorted(self._children.items()))


class MetricsRegistry:
    """Create-or-get factory for metric families plus the exporters."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _register(self, family: MetricFamily) -> MetricFamily:
        existing = self._families.get(family.name)
        if existing is not None:
            if existing.kind != family.kind:
                raise ValueError(
                    f"metric {family.name!r} already registered as "
                    f"{existing.kind}, not {family.kind}"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(
        self, name: str, help_text: str = "",
        labelnames: tuple[str, ...] = (),
    ) -> MetricFamily:
        return self._register(
            MetricFamily(name, help_text, "counter", labelnames)
        )

    def gauge(
        self, name: str, help_text: str = "",
        labelnames: tuple[str, ...] = (),
    ) -> MetricFamily:
        return self._register(
            MetricFamily(name, help_text, "gauge", labelnames)
        )

    def histogram(
        self, name: str, help_text: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._register(
            MetricFamily(name, help_text, "histogram", labelnames,
                         buckets=buckets)
        )

    def sketch(
        self, name: str, help_text: str = "",
        labelnames: tuple[str, ...] = (),
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ) -> MetricFamily:
        """A mergeable quantile-sketch family (exported as a summary)."""
        return self._register(
            MetricFamily(name, help_text, "sketch", labelnames,
                         relative_accuracy=relative_accuracy)
        )

    def families(self) -> list[MetricFamily]:
        return [self._families[k] for k in sorted(self._families)]

    # --- exporters -------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (scrape-compatible)."""
        lines: list[str] = []
        for family in self.families():
            if family.help_text:
                lines.append(f"# HELP {family.name} {family.help_text}")
            # Sketches scrape as Prometheus summaries (quantile lines).
            kind = "summary" if family.kind == "sketch" else family.kind
            lines.append(f"# TYPE {family.name} {kind}")
            for labelvalues, child in family.series().items():
                labels = _format_labels(family.labelnames, labelvalues)
                if isinstance(child, _SketchChild):
                    for q in DEFAULT_SKETCH_QUANTILES:
                        q_labels = _format_labels(
                            family.labelnames + ("quantile",),
                            labelvalues + (format_value(q),),
                        )
                        lines.append(
                            f"{family.name}{q_labels} "
                            f"{format_value(child.quantile(q))}"
                        )
                    lines.append(
                        f"{family.name}_count{labels} {child.count}"
                    )
                elif isinstance(child, _HistogramChild):
                    for le, cum in child.cumulative():
                        le_labels = _merge_le(
                            family.labelnames, labelvalues, le
                        )
                        lines.append(
                            f"{family.name}_bucket{le_labels} {cum}"
                        )
                    lines.append(
                        f"{family.name}_sum{labels} "
                        f"{format_value(child.total)}"
                    )
                    lines.append(f"{family.name}_count{labels} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{labels} "
                        f"{format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """JSON-friendly dump of every series."""
        out: dict = {}
        for family in self.families():
            entry: dict = {
                "type": family.kind,
                "help": family.help_text,
                "series": [],
            }
            for labelvalues, child in family.series().items():
                labels = dict(zip(family.labelnames, labelvalues))
                if isinstance(child, _SketchChild):
                    entry["series"].append({
                        "labels": labels,
                        "quantiles": {
                            format_value(q): (
                                child.quantile(q) if child.count else None
                            )
                            for q in DEFAULT_SKETCH_QUANTILES
                        },
                        "count": child.count,
                        "sketch": child.sketch.to_dict(),
                    })
                elif isinstance(child, _HistogramChild):
                    entry["series"].append({
                        "labels": labels,
                        "buckets": {
                            ("+Inf" if math.isinf(le) else format_value(le)):
                                cum
                            for le, cum in child.cumulative()
                        },
                        "sum": child.total,
                        "count": child.count,
                    })
                else:
                    entry["series"].append({
                        "labels": labels,
                        "value": child.value,
                        "max": child.max_seen,
                    })
            out[family.name] = entry
        return out

    def write_prometheus(self, path: str | Path) -> None:
        Path(path).write_text(self.to_prometheus_text())

    def write_json(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))


def _merge_le(
    labelnames: tuple[str, ...],
    labelvalues: tuple[str, ...],
    le: float,
) -> str:
    le_str = "+Inf" if math.isinf(le) else format_value(le)
    return _format_labels(labelnames + ("le",), labelvalues + (le_str,))


def bucket_counts(
    values: Mapping[int, int] | Iterable[float],
    buckets: tuple[float, ...] = DEFAULT_CHUNK_BUCKETS,
) -> dict[str, int]:
    """Bucket raw observations into ``{"le_<bound>": count}`` form.

    Accepts either an iterable of samples or a ``{value: multiplicity}``
    mapping (the engine's always-on chunk counter).  Counts are
    non-cumulative — each key holds the samples that landed in that
    bucket — which is the shape the experiment tables consume.
    """
    if isinstance(values, Mapping):
        pairs = [(float(v), int(n)) for v, n in values.items()]
    else:
        pairs = [(float(v), 1) for v in values]
    bounds = tuple(sorted(float(b) for b in buckets))
    keys = [f"le_{format_value(b)}" for b in bounds] + ["le_inf"]
    out = {k: 0 for k in keys}
    for value, n in pairs:
        for bound, key in zip(bounds, keys):
            if value <= bound:
                out[key] += n
                break
        else:
            out["le_inf"] += n
    return out
