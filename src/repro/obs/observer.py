"""The observability seam between the engine and the recorders.

:class:`Observer` is the single protocol the engine, schedulers,
chunker and relegation policy call into.  The base class is a no-op on
every hook, so instrumentation costs one dynamic dispatch when
observability is off, and — critically — an observer can never change
scheduling behaviour: hooks receive read-only facts *after* each
decision and return nothing, keeping the simulation deterministic with
or without tracing.

:class:`TracingObserver` is the production implementation: it turns
hooks into typed :mod:`~repro.obs.events` pushed at a
:class:`~repro.obs.trace.TraceRecorder`, and into series in a
:class:`~repro.obs.metrics.MetricsRegistry`.

A process-wide default (see :func:`set_default_observer`) lets the
experiment CLI enable tracing for *every* engine built during a run
without threading an argument through each experiment driver.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.obs.events import (
    ChunkSized,
    DecodeEvicted,
    FaultSkipped,
    FleetResized,
    GatewayAdmitted,
    GatewayShed,
    IterationScheduled,
    KVCacheSnapshot,
    Preempted,
    PrefixHit,
    Relegated,
    RelegationServed,
    ReplicaCrashed,
    ReplicaRecovered,
    ReplicaSlowdown,
    RequestCancelled,
    RequestCompleted,
    RequestRetried,
    RequestShed,
    SpanEnd,
    SpanStart,
)
from repro.obs.metrics import (
    DEFAULT_CHUNK_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.obs.sketch import BurnRateTracker
from repro.obs.trace import RingSink, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.chunking import ChunkDecision
    from repro.core.relegation import RelegationPlan
    from repro.core.request import Request
    from repro.engine.batch import BatchPlan
    from repro.engine.kvcache import KVCacheManager


class Observer:
    """No-op observability hooks; subclass and override what you need.

    Hooks fire *after* the decision they describe.  Implementations
    must not mutate any argument: requests, plans and the KV manager
    are the engine's live state, shared for cheapness, and tracing is
    required to be side-effect-free (the determinism regression test
    pins this).
    """

    def on_iteration_start(
        self,
        replica_id: int,
        now: float,
        exec_time: float,
        plan: "BatchPlan",
        iteration: int,
        queue_depth: int = -1,
    ) -> None:
        """An iteration was planned; it will finish at ``now + exec_time``.

        ``queue_depth`` is the scheduler backlog at dispatch (-1 when
        the caller does not know it).
        """

    def on_iteration_end(
        self,
        replica_id: int,
        now: float,
        start_time: float,
        exec_time: float,
        plan: "BatchPlan",
        kv_cache: "KVCacheManager",
    ) -> None:
        """The iteration dispatched at ``start_time`` completed."""

    def on_chunk_sized(
        self, now: float, decision: "ChunkDecision", num_decodes: int
    ) -> None:
        """The dynamic chunker converted slack into a token budget."""

    def on_relegated(self, request: "Request", now: float) -> None:
        """Eager relegation demoted ``request``."""

    def on_relegation_scan(
        self, now: float, plan: "RelegationPlan"
    ) -> None:
        """A relegation feasibility scan finished (may be empty)."""

    def on_relegation_served(
        self,
        replica_id: int,
        request: "Request",
        now: float,
        tokens: int,
    ) -> None:
        """A relegated request received its first opportunistic chunk."""

    def on_preempted(
        self,
        replica_id: int,
        request: "Request",
        now: float,
        prefill_tokens_lost: int,
    ) -> None:
        """A partial prefill lost its KV to break a memory deadlock."""

    def on_decode_evicted(
        self,
        replica_id: int,
        request: "Request",
        now: float,
        context_tokens_lost: int,
    ) -> None:
        """A decode was evicted (recompute) under KV pressure."""

    def on_request_completed(
        self, replica_id: int, request: "Request", now: float
    ) -> None:
        """``request`` produced its final output token."""

    # --- prefix reuse hooks (repro.engine.prefix) -------------------------

    def on_prefix_lookup(
        self,
        replica_id: int,
        request: "Request",
        now: float,
        hit_tokens: int,
        cached_tokens: int,
    ) -> None:
        """The radix cache was consulted at admission; ``hit_tokens``
        prefill tokens were skipped (0 = miss).  ``cached_tokens`` is
        the tree's resident footprint after the lookup."""

    def on_prefix_insert(
        self,
        replica_id: int,
        now: float,
        new_blocks: int,
        deduped_blocks: int,
        cached_tokens: int,
    ) -> None:
        """A finished prefill published its prompt blocks into the
        radix tree: ``new_blocks`` transferred ownership,
        ``deduped_blocks`` freed duplicates of already-shared blocks."""

    def on_prefix_evicted(
        self,
        replica_id: int,
        now: float,
        blocks: int,
        cached_tokens: int,
    ) -> None:
        """Memory pressure reclaimed ``blocks`` unreferenced prefix
        blocks (LRU order)."""

    # --- fault hooks (repro.faults) --------------------------------------

    def on_replica_crashed(
        self,
        replica_id: int,
        now: float,
        lost_requests: int,
        kv_blocks_dropped: int,
    ) -> None:
        """A replica failed, losing its KV cache and in-flight batch."""

    def on_replica_recovered(
        self, replica_id: int, now: float, downtime: float
    ) -> None:
        """A crashed replica rejoined with a cold cache."""

    def on_replica_slowdown(
        self, replica_id: int, now: float, factor: float
    ) -> None:
        """A replica's straggler multiplier changed (1.0 = nominal)."""

    def on_request_retried(
        self,
        request: "Request",
        now: float,
        attempt: int,
        backoff: float,
        from_replica: int,
    ) -> None:
        """A crash-lost request was scheduled for re-dispatch."""

    def on_request_shed(
        self, request: "Request", now: float, alive_fraction: float
    ) -> None:
        """Admission control refused an arrival under degraded capacity."""

    def on_request_cancelled(
        self, replica_id: int, request: "Request", now: float, reason: str
    ) -> None:
        """An unfinished request was abandoned (timeout / retry budget).

        ``replica_id`` is -1 when the request was not resident on any
        replica (e.g. cancelled while awaiting re-dispatch).
        """

    def on_fault_skipped(
        self, replica_id: int, now: float, fault_kind: str, reason: str
    ) -> None:
        """A fault plan event targeting ``replica_id`` resolved to a
        no-op (the slot was drained, released or never provisioned)."""

    # --- fleet hooks (repro.cluster.fleet) --------------------------------

    def on_fleet_resized(
        self,
        now: float,
        action: str,
        replica_id: int,
        hardware: str,
        fleet_size: int,
        reason: str = "",
        by_hardware: "dict[str, int] | None" = None,
    ) -> None:
        """The elastic fleet changed size: ``action`` is ``provision``,
        ``ready``, ``drain`` or ``release``; ``fleet_size`` counts
        replicas provisioned and not yet released after the action.
        ``by_hardware`` is the full post-action per-class composition
        (for gauges; not part of the trace event)."""

    # --- gateway hooks (repro.serve) --------------------------------------

    def on_gateway_admitted(
        self, request: "Request", now: float, queue_depth: int
    ) -> None:
        """The online gateway accepted ``request`` into a replica."""

    def on_gateway_shed(
        self,
        request: "Request",
        now: float,
        reason: str,
        queue_depth: int,
    ) -> None:
        """The gateway refused or evicted ``request`` (``reason`` is
        ``"rate_limit"`` or ``"backpressure"``)."""

    def on_token_streamed(self, request: "Request", now: float) -> None:
        """One output token was delivered to a streaming consumer."""

    # --- span hooks (repro.obs.spans) -------------------------------------

    def on_span_start(
        self,
        name: str,
        request: "Request",
        now: float,
        replica_id: int = -1,
    ) -> None:
        """``request`` entered lifecycle stage ``name`` (``gateway``,
        ``admission``, ``dispatch``, ``queue``, ``prefill``,
        ``decode``).  ``replica_id`` is -1 outside any replica."""

    def on_span_end(
        self,
        name: str,
        request: "Request",
        now: float,
        replica_id: int = -1,
    ) -> None:
        """``request`` left the stage opened by :meth:`on_span_start`."""


#: Shared no-op instance — the default everywhere an observer plugs in.
NULL_OBSERVER = Observer()


class TracingObserver(Observer):
    """Records typed events and metric series from the hook stream.

    Args:
        recorder: Destination for trace events; a fresh recorder with
            no sinks is created when omitted (metrics-only mode).
        registry: Metrics registry; created when omitted.
        kv_snapshot_every: Emit a :class:`KVCacheSnapshot` event every
            Nth iteration per replica (1 = every iteration).  Metrics
            gauges update every iteration regardless.
    """

    def __init__(
        self,
        recorder: TraceRecorder | None = None,
        registry: MetricsRegistry | None = None,
        kv_snapshot_every: int = 1,
    ) -> None:
        if kv_snapshot_every < 1:
            raise ValueError("kv_snapshot_every must be >= 1")
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.kv_snapshot_every = int(kv_snapshot_every)
        self._iters_since_snapshot: dict[int, int] = {}

        reg = self.registry
        self._iterations = reg.counter(
            "repro_iterations_total",
            "Engine iterations executed", ("replica",),
        )
        self._prefill_tokens = reg.counter(
            "repro_prefill_tokens_total",
            "Prompt tokens processed", ("replica",),
        )
        self._decode_tokens = reg.counter(
            "repro_decode_tokens_total",
            "Output tokens produced by batched decodes", ("replica",),
        )
        self._exec_seconds = reg.histogram(
            "repro_iteration_exec_seconds",
            "Per-iteration batch execution time",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._chunk_hist = reg.histogram(
            "repro_chunk_size_tokens",
            "Prefill token budget chosen per iteration",
            buckets=DEFAULT_CHUNK_BUCKETS,
        )
        self._kv_utilization = reg.gauge(
            "repro_kv_utilization",
            "KV-cache block utilization (gauge; max tracked)",
            ("replica",),
        )
        self._relegations = reg.counter(
            "repro_relegations_total",
            "Requests demoted by eager relegation", ("tier",),
        )
        self._relegation_scans = reg.counter(
            "repro_relegation_scans_total",
            "Relegation feasibility scans run",
        )
        self._important_saved = reg.counter(
            "repro_relegation_important_saved_total",
            "Important requests saved by demoting free-tier work",
        )
        self._preemptions = reg.counter(
            "repro_preemptions_total",
            "Prefill preemptions (stall-recovery KV reclaims)",
            ("replica",),
        )
        self._decode_evictions = reg.counter(
            "repro_decode_evictions_total",
            "Decode evictions under KV pressure", ("replica",),
        )
        self._completed = reg.counter(
            "repro_requests_completed_total",
            "Requests that produced their final token",
            ("tier",),
        )
        self._violations = reg.counter(
            "repro_deadline_violations_total",
            "Completed requests that missed their governing SLO",
            ("tier",),
        )
        self._crashes = reg.counter(
            "repro_replica_crashes_total",
            "Replica failures injected", ("replica",),
        )
        self._recoveries = reg.counter(
            "repro_replica_recoveries_total",
            "Replica recoveries after a crash", ("replica",),
        )
        self._slowdowns = reg.counter(
            "repro_replica_slowdowns_total",
            "Straggler windows started on a replica", ("replica",),
        )
        self._retries = reg.counter(
            "repro_request_retries_total",
            "Crash-lost requests re-enqueued for dispatch", ("tier",),
        )
        self._shed = reg.counter(
            "repro_requests_shed_total",
            "Arrivals refused by degraded-capacity admission control",
            ("tier",),
        )
        self._cancellations = reg.counter(
            "repro_requests_cancelled_total",
            "Requests abandoned before completion", ("tier", "reason"),
        )
        self._relegations_served = reg.counter(
            "repro_relegations_served_total",
            "Relegated requests that received opportunistic service",
            ("tier",),
        )
        self._prefix_hits = reg.counter(
            "repro_kv_prefix_hits_total",
            "Arrivals whose prompt matched a radix-cached prefix",
            ("replica",),
        )
        self._prefix_misses = reg.counter(
            "repro_kv_prefix_misses_total",
            "Radix-cache lookups that matched no blocks", ("replica",),
        )
        self._prefix_evictions = reg.counter(
            "repro_kv_prefix_evictions_total",
            "Shared prefix blocks reclaimed under memory pressure",
            ("replica",),
        )
        self._prefix_hit_tokens = reg.counter(
            "repro_kv_prefix_hit_tokens_total",
            "Prefill tokens skipped via shared-prefix matches",
            ("replica",),
        )
        self._prefix_cached_tokens = reg.gauge(
            "repro_kv_prefix_cached_tokens",
            "Tokens resident in the shared radix prefix tree",
            ("replica",),
        )
        self._events_dropped = reg.counter(
            "repro_trace_events_dropped_total",
            "Trace events shed by bounded-memory ring sinks",
        )
        self._gateway_admitted = reg.counter(
            "repro_gateway_admitted_total",
            "Requests admitted by the serving gateway", ("tier",),
        )
        self._gateway_shed = reg.counter(
            "repro_gateway_shed_total",
            "Requests refused or evicted by the serving gateway",
            ("tier", "reason"),
        )
        self._gateway_tokens_streamed = reg.counter(
            "repro_gateway_tokens_streamed_total",
            "Output tokens delivered to streaming consumers", ("tier",),
        )
        self._faults_skipped = reg.counter(
            "repro_faults_skipped_total",
            "Fault plan events resolved to no-ops on absent replicas",
            ("fault_kind", "reason"),
        )
        self._fleet_resizes = reg.counter(
            "repro_fleet_resizes_total",
            "Fleet provisioning actions", ("action", "hardware"),
        )
        self._fleet_size_gauge = reg.gauge(
            "repro_fleet_size",
            "Replicas provisioned and not yet released",
        )
        self._fleet_hardware_gauge = reg.gauge(
            "repro_fleet_replicas",
            "Provisioned replicas by hardware class", ("hardware",),
        )
        # Per-tier latency sketches: mergeable percentiles replacing
        # fixed-bucket histograms for the three governing latencies.
        self._ttft_sketch = reg.sketch(
            "repro_request_ttft_seconds",
            "Time to first token per completed request", ("tier",),
        )
        self._tbt_sketch = reg.sketch(
            "repro_request_tbt_seconds",
            "Mean time between tokens per completed request", ("tier",),
        )
        self._ttlt_sketch = reg.sketch(
            "repro_request_ttlt_seconds",
            "Time to last token per completed request", ("tier",),
        )
        #: Windowed SLO burn rate over simulated time (one verdict per
        #: completion, at completion time).
        self.burn_rate = BurnRateTracker()
        # Bounded ring sinks silently shed their oldest events; surface
        # the loss as a counter so lossy traces are visible in scrapes.
        for sink in self.recorder.sinks:
            if isinstance(sink, RingSink) and sink.on_drop is None:
                sink.on_drop = self._events_dropped.inc

    # --- engine hooks ----------------------------------------------------

    def on_iteration_start(
        self, replica_id, now, exec_time, plan, iteration,
        queue_depth: int = -1,
    ) -> None:
        prefill_tokens = plan.prefill_tokens
        self.recorder.emit(IterationScheduled(
            ts=now,
            replica_id=replica_id,
            iteration=iteration,
            dur=exec_time,
            prefill_tokens=prefill_tokens,
            num_prefills=len(plan.prefill_assignments),
            num_decodes=len(plan.decode_requests),
            decode_context_tokens=sum(
                r.context_length for r in plan.decode_requests
            ),
            prefill_request_ids=tuple(
                a.request.request_id for a in plan.prefill_assignments
            ),
            queue_depth=queue_depth,
        ))
        replica = str(replica_id)
        self._iterations.labels(replica).inc()
        self._prefill_tokens.labels(replica).inc(prefill_tokens)
        self._decode_tokens.labels(replica).inc(len(plan.decode_requests))
        self._exec_seconds.observe(exec_time)
        self._chunk_hist.observe(prefill_tokens)

    def on_iteration_end(
        self, replica_id, now, start_time, exec_time, plan, kv_cache
    ) -> None:
        self._kv_utilization.labels(str(replica_id)).set(
            kv_cache.utilization
        )
        since = self._iters_since_snapshot.get(replica_id, 0) + 1
        if since >= self.kv_snapshot_every:
            self._iters_since_snapshot[replica_id] = 0
            self.recorder.emit(KVCacheSnapshot(
                ts=now,
                replica_id=replica_id,
                used_blocks=kv_cache.used_blocks,
                capacity_blocks=kv_cache.capacity_blocks,
                utilization=kv_cache.utilization,
            ))
        else:
            self._iters_since_snapshot[replica_id] = since

    # --- scheduler / core hooks ------------------------------------------

    def on_chunk_sized(self, now, decision, num_decodes) -> None:
        self.recorder.emit(ChunkSized(
            ts=now,
            chunk_budget=decision.prefill_budget,
            latency_budget=decision.latency_budget,
            predicted_latency=decision.predicted_latency,
            num_decodes=num_decodes,
        ))

    def on_relegated(self, request, now) -> None:
        self.recorder.emit(Relegated(
            ts=now,
            request_id=request.request_id,
            tier=request.qos.name,
            important=request.important,
            remaining_prefill=request.remaining_prefill,
        ))
        self._relegations.labels(request.qos.name).inc()

    def on_relegation_scan(self, now, plan) -> None:
        self._relegation_scans.inc()
        if plan.important_saved:
            self._important_saved.inc(plan.important_saved)

    def on_relegation_served(
        self, replica_id, request, now, tokens
    ) -> None:
        relegated_at = request.relegated_time
        self.recorder.emit(RelegationServed(
            ts=now,
            replica_id=replica_id,
            request_id=request.request_id,
            tier=request.qos.name,
            tokens=tokens,
            waited=(
                now - relegated_at if relegated_at is not None else 0.0
            ),
        ))
        self._relegations_served.labels(request.qos.name).inc()

    def on_preempted(
        self, replica_id, request, now, prefill_tokens_lost
    ) -> None:
        self.recorder.emit(Preempted(
            ts=now,
            replica_id=replica_id,
            request_id=request.request_id,
            prefill_tokens_lost=prefill_tokens_lost,
        ))
        self._preemptions.labels(str(replica_id)).inc()

    def on_decode_evicted(
        self, replica_id, request, now, context_tokens_lost
    ) -> None:
        self.recorder.emit(DecodeEvicted(
            ts=now,
            replica_id=replica_id,
            request_id=request.request_id,
            context_tokens_lost=context_tokens_lost,
        ))
        self._decode_evictions.labels(str(replica_id)).inc()

    def on_request_completed(self, replica_id, request, now) -> None:
        violated = request.violated_deadline
        self.recorder.emit(RequestCompleted(
            ts=now,
            replica_id=replica_id,
            request_id=request.request_id,
            tier=request.qos.name,
            arrival_time=request.arrival_time,
            scheduled_first_time=request.scheduled_first_time,
            first_token_time=request.first_token_time,
            completion_time=(
                request.completion_time
                if request.completion_time is not None
                else now
            ),
            relegated=request.relegated,
            violated=violated,
            evictions=request.evictions,
            qos_class=request.qos.qos_class.value,
        ))
        tier = request.qos.name
        self._completed.labels(tier).inc()
        if violated:
            self._violations.labels(tier).inc()
        ttft = request.ttft
        if ttft is not None:
            self._ttft_sketch.labels(tier).observe(ttft)
        ttlt = request.ttlt
        if ttlt is not None:
            self._ttlt_sketch.labels(tier).observe(ttlt)
        if (
            request.first_token_time is not None
            and request.completion_time is not None
            and request.decoded > 1
        ):
            self._tbt_sketch.labels(tier).observe(
                (request.completion_time - request.first_token_time)
                / (request.decoded - 1)
            )
        self.burn_rate.observe(now, violated)

    # --- prefix reuse hooks -----------------------------------------------

    def on_prefix_lookup(
        self, replica_id, request, now, hit_tokens, cached_tokens
    ) -> None:
        replica = str(replica_id)
        if hit_tokens > 0:
            self.recorder.emit(PrefixHit(
                ts=now,
                replica_id=replica_id,
                request_id=request.request_id,
                tier=request.qos.name,
                hit_tokens=hit_tokens,
                prompt_tokens=request.prompt_tokens,
                cached_tokens=cached_tokens,
            ))
            self._prefix_hits.labels(replica).inc()
            self._prefix_hit_tokens.labels(replica).inc(hit_tokens)
        else:
            self._prefix_misses.labels(replica).inc()
        self._prefix_cached_tokens.labels(replica).set(cached_tokens)

    def on_prefix_insert(
        self, replica_id, now, new_blocks, deduped_blocks, cached_tokens
    ) -> None:
        self._prefix_cached_tokens.labels(str(replica_id)).set(
            cached_tokens
        )

    def on_prefix_evicted(
        self, replica_id, now, blocks, cached_tokens
    ) -> None:
        replica = str(replica_id)
        self._prefix_evictions.labels(replica).inc(blocks)
        self._prefix_cached_tokens.labels(replica).set(cached_tokens)

    # --- fault hooks ------------------------------------------------------

    def on_replica_crashed(
        self, replica_id, now, lost_requests, kv_blocks_dropped
    ) -> None:
        self.recorder.emit(ReplicaCrashed(
            ts=now,
            replica_id=replica_id,
            lost_requests=lost_requests,
            kv_blocks_dropped=kv_blocks_dropped,
        ))
        self._crashes.labels(str(replica_id)).inc()

    def on_replica_recovered(self, replica_id, now, downtime) -> None:
        self.recorder.emit(ReplicaRecovered(
            ts=now, replica_id=replica_id, downtime=downtime,
        ))
        self._recoveries.labels(str(replica_id)).inc()

    def on_replica_slowdown(self, replica_id, now, factor) -> None:
        self.recorder.emit(ReplicaSlowdown(
            ts=now, replica_id=replica_id, factor=factor,
        ))
        if factor != 1.0:  # 1.0 closes a window, it does not open one
            self._slowdowns.labels(str(replica_id)).inc()

    def on_request_retried(
        self, request, now, attempt, backoff, from_replica
    ) -> None:
        self.recorder.emit(RequestRetried(
            ts=now,
            request_id=request.request_id,
            tier=request.qos.name,
            attempt=attempt,
            backoff=backoff,
            from_replica=from_replica,
        ))
        self._retries.labels(request.qos.name).inc()

    def on_request_shed(self, request, now, alive_fraction) -> None:
        self.recorder.emit(RequestShed(
            ts=now,
            request_id=request.request_id,
            tier=request.qos.name,
            important=request.important,
            alive_fraction=alive_fraction,
        ))
        self._shed.labels(request.qos.name).inc()

    def on_request_cancelled(self, replica_id, request, now, reason) -> None:
        self.recorder.emit(RequestCancelled(
            ts=now,
            replica_id=replica_id,
            request_id=request.request_id,
            tier=request.qos.name,
            reason=reason,
            waited=now - request.arrival_time,
        ))
        self._cancellations.labels(request.qos.name, reason).inc()

    def on_fault_skipped(self, replica_id, now, fault_kind, reason) -> None:
        self.recorder.emit(FaultSkipped(
            ts=now,
            replica_id=replica_id,
            fault_kind=fault_kind,
            reason=reason,
        ))
        self._faults_skipped.labels(fault_kind, reason).inc()

    # --- fleet hooks ------------------------------------------------------

    def on_fleet_resized(
        self, now, action, replica_id, hardware, fleet_size, reason="",
        by_hardware=None,
    ) -> None:
        self.recorder.emit(FleetResized(
            ts=now,
            action=action,
            replica_id=replica_id,
            hardware=hardware,
            fleet_size=fleet_size,
            reason=reason,
        ))
        self._fleet_resizes.labels(action, hardware).inc()
        self._fleet_size_gauge.set(fleet_size)
        for name, count in (by_hardware or {}).items():
            self._fleet_hardware_gauge.labels(hardware=name).set(count)

    # --- gateway hooks ----------------------------------------------------

    def on_gateway_admitted(self, request, now, queue_depth) -> None:
        self.recorder.emit(GatewayAdmitted(
            ts=now,
            request_id=request.request_id,
            tier=request.qos.name,
            important=request.important,
            queue_depth=queue_depth,
        ))
        self._gateway_admitted.labels(request.qos.name).inc()

    def on_gateway_shed(self, request, now, reason, queue_depth) -> None:
        self.recorder.emit(GatewayShed(
            ts=now,
            request_id=request.request_id,
            tier=request.qos.name,
            important=request.important,
            reason=reason,
            queue_depth=queue_depth,
        ))
        self._gateway_shed.labels(request.qos.name, reason).inc()

    def on_token_streamed(self, request, now) -> None:
        self._gateway_tokens_streamed.labels(request.qos.name).inc()

    # --- span hooks -------------------------------------------------------

    def on_span_start(self, name, request, now, replica_id=-1) -> None:
        self.recorder.emit(SpanStart(
            ts=now,
            name=name,
            request_id=request.request_id,
            replica_id=replica_id,
            tier=request.qos.name,
        ))

    def on_span_end(self, name, request, now, replica_id=-1) -> None:
        self.recorder.emit(SpanEnd(
            ts=now,
            name=name,
            request_id=request.request_id,
            replica_id=replica_id,
            tier=request.qos.name,
        ))

    def close(self) -> None:
        self.recorder.close()


class MultiObserver(Observer):
    """Fan every hook out to a list of observers, in order.

    Lets the experiment runner chain an in-memory audit collector with
    whatever observer is already installed (e.g. the CLI's tracing
    observer) without displacing either: both see the identical hook
    stream, and neither can perturb the simulation — the same
    read-only contract as any single observer.
    """

    def __init__(self, observers: "Iterable[Observer]") -> None:
        self.observers: tuple[Observer, ...] = tuple(observers)

    def __getattribute__(self, name: str):
        if name.startswith("on_"):
            observers = object.__getattribute__(self, "observers")

            def fan_out(*args, **kwargs) -> None:
                for observer in observers:
                    getattr(observer, name)(*args, **kwargs)

            return fan_out
        return object.__getattribute__(self, name)


# --- process-wide default observer ------------------------------------

_DEFAULT_OBSERVER: Observer = NULL_OBSERVER


def get_default_observer() -> Observer:
    """The observer engines adopt when none is passed explicitly."""
    return _DEFAULT_OBSERVER


def set_default_observer(observer: Observer | None) -> Observer:
    """Install a process-wide default observer; returns the previous one.

    Pass ``None`` to restore the no-op default.
    """
    global _DEFAULT_OBSERVER
    previous = _DEFAULT_OBSERVER
    _DEFAULT_OBSERVER = observer if observer is not None else NULL_OBSERVER
    return previous


@contextmanager
def default_observer(observer: Observer) -> Iterator[Observer]:
    """Scoped :func:`set_default_observer` (restores on exit)."""
    previous = set_default_observer(observer)
    try:
        yield observer
    finally:
        set_default_observer(previous)
