"""Mergeable quantile sketches and windowed SLO burn-rate counters.

Percentile machinery that *streams and merges* instead of buffering
every sample, so ``--jobs N`` experiment workers can ship a few hundred
integers back to the parent instead of raw latency lists, and a fleet
of replicas can be aggregated without ever holding the union of their
samples.

:class:`QuantileSketch` is a DDSketch-style log-bucketed sketch
(Masson et al., VLDB 2019): values map to geometric buckets
``gamma**i`` with ``gamma = (1 + a) / (1 - a)`` for a configured
relative accuracy ``a``, so any reported quantile is within relative
error ``a`` of the true order statistic.  Unlike fixed-bucket
histograms (``repro.obs.metrics``), accuracy holds uniformly from
microseconds to hours — exactly the spread between a Q1 TTFT and a Q3
TTLT.

Design constraints, pinned by tests:

* **deterministic** — bucket counts are exact integers; serialization
  sorts keys, so equal sketches are byte-identical;
* **merge-associative** — ``merge`` adds integer bucket counts, so any
  merge tree over the same sample multiset yields the same sketch;
* **zero-dependency** — plain dicts and math, JSON round-trip via
  :meth:`to_dict` / :meth:`from_dict` (this is also the pickle path
  across ``pmap`` process boundaries).

:class:`BurnRateTracker` is the alerting-style companion: it buckets
SLO verdicts into fixed windows of *simulated* time and reports the
violation rate of each window as a multiple of the SLO error budget
(the "burn rate" of Google's SRE workbook).  A burn rate of 1.0 spends
the budget exactly; sustained rates above it predict the overall SLO
miss long before the run ends.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

__all__ = ["QuantileSketch", "BurnRateTracker", "merge_sketches"]

#: Default relative-error bound: 1% of the value at any quantile.
DEFAULT_RELATIVE_ACCURACY = 0.01


class QuantileSketch:
    """Log-bucketed mergeable quantile sketch (DDSketch-style).

    Args:
        relative_accuracy: Bound ``a`` such that for any quantile ``q``
            the estimate ``x`` satisfies ``|x - x_true| <= a * x_true``
            where ``x_true`` is the exact lower order statistic
            (``numpy.quantile(..., method="lower")``).  Must be in
            (0, 1).

    Values of any sign are accepted: positives and negatives keep
    separate bucket stores (a negative value is sketched as its
    magnitude), zeros are counted exactly.  Non-finite values are
    rejected — a latency of NaN is a bug upstream, not a sample.
    """

    __slots__ = (
        "relative_accuracy",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_neg_buckets",
        "_zero_count",
        "_count",
        "_min",
        "_max",
    )

    def __init__(
        self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got "
                f"{relative_accuracy!r}"
            )
        self.relative_accuracy = float(relative_accuracy)
        self._gamma = (1.0 + self.relative_accuracy) / (
            1.0 - self.relative_accuracy
        )
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._neg_buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    # --- recording -----------------------------------------------------

    def _bucket_index(self, magnitude: float) -> int:
        """Index ``i`` with ``gamma**(i-1) < magnitude <= gamma**i``."""
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _bucket_value(self, index: int) -> float:
        """Representative value of bucket ``index`` (midpoint in the
        relative sense): within ``relative_accuracy`` of every value
        the bucket covers."""
        return (
            2.0
            * self._gamma**index
            / (self._gamma + 1.0)
        )

    def add(self, value: float, count: int = 1) -> None:
        """Record ``value`` with multiplicity ``count``."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"cannot sketch non-finite value {value!r}")
        if value == 0.0:
            self._zero_count += count
        elif value > 0.0:
            index = self._bucket_index(value)
            self._buckets[index] = self._buckets.get(index, 0) + count
        else:
            index = self._bucket_index(-value)
            self._neg_buckets[index] = (
                self._neg_buckets.get(index, 0) + count
            )
        self._count += count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # --- queries -------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def min(self) -> float:
        """Smallest recorded value (exact); ``inf`` when empty."""
        return self._min

    @property
    def max(self) -> float:
        """Largest recorded value (exact); ``-inf`` when empty."""
        return self._max

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (lower order statistic).

        Targets rank ``floor(q * (count - 1))`` — the convention of
        ``numpy.quantile(..., method="lower")`` — and returns a value
        within ``relative_accuracy`` (relative) of the exact sample at
        that rank.  Returns NaN on an empty sketch.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return float("nan")
        rank = int(q * (self._count - 1))  # 0-based target rank
        # Walk the value-ordered bucket sequence: negatives descending
        # by index (most negative first), zeros, positives ascending.
        running = 0
        for index in sorted(self._neg_buckets, reverse=True):
            running += self._neg_buckets[index]
            if running > rank:
                return self._clamp(-self._bucket_value(index))
        running += self._zero_count
        if running > rank:
            return 0.0
        for index in sorted(self._buckets):
            running += self._buckets[index]
            if running > rank:
                return self._clamp(self._bucket_value(index))
        return self._max  # numerically unreachable; guards float slop

    def _clamp(self, value: float) -> float:
        """Exact extremes beat bucket estimates at the edges."""
        return min(self._max, max(self._min, value))

    def quantiles(
        self, qs: Iterable[float] = (0.50, 0.95, 0.99)
    ) -> dict[float, float]:
        return {q: self.quantile(q) for q in qs}

    # --- merging -------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place); returns self.

        Merging is exact: bucket counts add, so the merged sketch is
        identical to one built from the union of both sample streams,
        regardless of how samples were partitioned or merge order.
        """
        if not isinstance(other, QuantileSketch):
            raise TypeError(f"cannot merge {type(other).__name__}")
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different accuracies: "
                f"{self.relative_accuracy} vs {other.relative_accuracy}"
            )
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        for index, n in other._neg_buckets.items():
            self._neg_buckets[index] = (
                self._neg_buckets.get(index, 0) + n
            )
        self._zero_count += other._zero_count
        self._count += other._count
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        return self

    # --- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot; keys sorted so equal sketches are
        byte-identical after ``json.dumps(..., sort_keys=True)``."""
        return {
            "kind": "ddsketch",
            "relative_accuracy": self.relative_accuracy,
            "count": self._count,
            "zero_count": self._zero_count,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": {
                str(i): self._buckets[i] for i in sorted(self._buckets)
            },
            "neg_buckets": {
                str(i): self._neg_buckets[i]
                for i in sorted(self._neg_buckets)
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QuantileSketch":
        if payload.get("kind") != "ddsketch":
            raise ValueError(
                f"not a serialized sketch: {payload.get('kind')!r}"
            )
        sketch = cls(relative_accuracy=payload["relative_accuracy"])
        sketch._buckets = {
            int(i): int(n) for i, n in payload["buckets"].items()
        }
        sketch._neg_buckets = {
            int(i): int(n) for i, n in payload["neg_buckets"].items()
        }
        sketch._zero_count = int(payload["zero_count"])
        sketch._count = int(payload["count"])
        sketch._min = (
            float(payload["min"]) if payload["min"] is not None
            else math.inf
        )
        sketch._max = (
            float(payload["max"]) if payload["max"] is not None
            else -math.inf
        )
        return sketch

    # Pickling (pmap workers) goes through the dict form so the wire
    # format and the disk format can never diverge.
    def __reduce__(self):
        return (QuantileSketch.from_dict, (self.to_dict(),))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(n={self._count}, "
            f"a={self.relative_accuracy}, "
            f"buckets={len(self._buckets) + len(self._neg_buckets)})"
        )


def merge_sketches(
    sketches: Iterable[QuantileSketch | Mapping[str, Any] | None],
    relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
) -> QuantileSketch:
    """Merge a stream of sketches (or their serialized dicts).

    ``None`` entries are skipped so callers can feed partially failed
    worker outputs directly.  An all-empty input yields an empty sketch
    with ``relative_accuracy``.
    """
    merged: QuantileSketch | None = None
    for sketch in sketches:
        if sketch is None:
            continue
        if isinstance(sketch, Mapping):
            sketch = QuantileSketch.from_dict(sketch)
        if merged is None:
            merged = QuantileSketch(sketch.relative_accuracy)
        merged.merge(sketch)
    return merged if merged is not None else QuantileSketch(
        relative_accuracy
    )


class BurnRateTracker:
    """Windowed SLO burn rate over simulated time.

    Args:
        window: Width of each window in simulated seconds.
        slo_budget: Allowed violation fraction (the paper's goodput
            bar is 1%, i.e. ``0.01``).  Burn rate = window violation
            rate / budget: 1.0 spends the budget exactly, >1.0 burns
            it faster than allowed.

    Observations are ``(ts, violated)`` verdicts — typically one per
    ``request_completed`` event, stamped at completion time.  Windows
    are half-open ``[k * window, (k + 1) * window)``; merging trackers
    adds per-window counts, with the same associativity guarantee as
    :class:`QuantileSketch`.
    """

    __slots__ = ("window", "slo_budget", "_totals", "_violations")

    def __init__(self, window: float = 60.0, slo_budget: float = 0.01):
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        if not 0.0 < slo_budget <= 1.0:
            raise ValueError(
                f"slo_budget must be in (0, 1], got {slo_budget}"
            )
        self.window = float(window)
        self.slo_budget = float(slo_budget)
        self._totals: dict[int, int] = {}
        self._violations: dict[int, int] = {}

    def observe(self, ts: float, violated: bool) -> None:
        """Record one SLO verdict at simulated time ``ts``."""
        if not math.isfinite(ts):
            raise ValueError(f"non-finite timestamp {ts!r}")
        index = math.floor(ts / self.window)
        self._totals[index] = self._totals.get(index, 0) + 1
        if violated:
            self._violations[index] = self._violations.get(index, 0) + 1

    def merge(self, other: "BurnRateTracker") -> "BurnRateTracker":
        if (
            other.window != self.window
            or other.slo_budget != self.slo_budget
        ):
            raise ValueError(
                "cannot merge burn-rate trackers with different "
                "window/budget"
            )
        for index, n in other._totals.items():
            self._totals[index] = self._totals.get(index, 0) + n
        for index, n in other._violations.items():
            self._violations[index] = self._violations.get(index, 0) + n
        return self

    @property
    def total(self) -> int:
        return sum(self._totals.values())

    @property
    def violated(self) -> int:
        return sum(self._violations.values())

    def series(self) -> list[dict[str, float]]:
        """Per-window burn rates, gap windows included (rate 0).

        Returns rows ``{start, end, total, violated, burn_rate}``
        covering the contiguous span from the first to the last
        observed window, so timelines render without holes.
        """
        if not self._totals:
            return []
        first = min(self._totals)
        last = max(self._totals)
        rows: list[dict[str, float]] = []
        for index in range(first, last + 1):
            total = self._totals.get(index, 0)
            violated = self._violations.get(index, 0)
            rate = (violated / total) if total else 0.0
            rows.append({
                "start": index * self.window,
                "end": (index + 1) * self.window,
                "total": total,
                "violated": violated,
                "burn_rate": rate / self.slo_budget,
            })
        return rows

    def max_burn_rate(self) -> float:
        """Peak window burn rate (0.0 when nothing observed)."""
        rows = self.series()
        return max((r["burn_rate"] for r in rows), default=0.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "burn_rate",
            "window": self.window,
            "slo_budget": self.slo_budget,
            "totals": {str(i): self._totals[i]
                       for i in sorted(self._totals)},
            "violations": {str(i): self._violations[i]
                           for i in sorted(self._violations)},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BurnRateTracker":
        if payload.get("kind") != "burn_rate":
            raise ValueError(
                f"not a serialized burn-rate tracker: "
                f"{payload.get('kind')!r}"
            )
        tracker = cls(
            window=payload["window"], slo_budget=payload["slo_budget"]
        )
        tracker._totals = {
            int(i): int(n) for i, n in payload["totals"].items()
        }
        tracker._violations = {
            int(i): int(n) for i, n in payload["violations"].items()
        }
        return tracker

    def __reduce__(self):
        return (BurnRateTracker.from_dict, (self.to_dict(),))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BurnRateTracker):
            return NotImplemented
        return self.to_dict() == other.to_dict()
