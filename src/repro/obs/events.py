"""Typed trace events: the vocabulary of iteration-level telemetry.

Every scheduling-relevant occurrence in a simulated run maps to one of
the dataclasses below.  Events serialize to flat JSON objects via
:meth:`TraceEvent.to_dict` (one object per JSONL line) and the same
schema drives :func:`validate_event`, which the CI smoke test and the
``repro trace --validate`` command use to keep recorded traces honest.

Design constraints:

* events are immutable and carry only plain scalars / tuples, so
  recording can never alias mutable engine state;
* non-finite floats are serialized as ``null`` (JSON has no ``NaN``);
* the ``kind`` discriminator is stable across versions — downstream
  tooling switches on it.
"""

from __future__ import annotations

import dataclasses
import math
import types
import typing
from dataclasses import dataclass
from typing import Any, ClassVar


#: Trace format version, written by tooling that needs to gate on
#: capabilities rather than sniff fields.  History:
#:
#: * **1** — initial event vocabulary (13 kinds).
#: * **2** — ``IterationScheduled.queue_depth`` (scheduler backlog at
#:   dispatch), ``RequestCompleted.qos_class`` (governing-SLO class for
#:   latency attribution) and the ``relegation_served`` kind.  All
#:   additions are defaulted, and :func:`validate_event` only requires
#:   fields without defaults, so v1 traces remain valid.
#: * **3** — the ``gateway_admitted`` and ``gateway_shed`` kinds
#:   (online serving gateway admission decisions).  New kinds only;
#:   every v1/v2 trace remains valid.
#: * **4** — the ``span_start`` and ``span_end`` kinds (request-scoped
#:   lifecycle spans emitted by the gateway, router and engine; see
#:   :mod:`repro.obs.spans`).  New kinds only; every v1/v2/v3 trace
#:   remains valid.
#: * **5** — the ``fault_skipped`` kind (a fault plan event targeting a
#:   replica that no longer exists or has been drained from an elastic
#:   fleet resolved to a well-defined no-op) and the ``fleet_resized``
#:   kind (the heterogeneous fleet provisioned, drained or released a
#:   replica; see :mod:`repro.cluster.fleet`).  New kinds only; every
#:   v1–v4 trace remains valid.
#: * **6** — the ``prefix_hit`` kind (a new request's prompt matched a
#:   shared radix-cached prefix and skipped that prefill work; see
#:   :mod:`repro.engine.prefix`).  New kinds only; every v1–v5 trace
#:   remains valid.
TRACE_SCHEMA_VERSION = 6


class TraceSchemaError(ValueError):
    """A serialized event does not match the declared schema."""


@dataclass(frozen=True)
class TraceEvent:
    """Base class: every event has a simulated timestamp ``ts``."""

    kind: ClassVar[str] = "event"

    ts: float

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-safe payload with the ``kind`` discriminator."""
        payload: dict[str, Any] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, float) and not math.isfinite(value):
                value = None
            elif isinstance(value, tuple):
                value = list(value)
            payload[field.name] = value
        return payload


@dataclass(frozen=True)
class IterationScheduled(TraceEvent):
    """One engine iteration was planned and dispatched.

    ``dur`` is the execution model's batch time, known at dispatch
    (the simulator advances by exactly this much), so the event doubles
    as a complete span for the Chrome-trace exporter.
    """

    kind: ClassVar[str] = "iteration_scheduled"

    replica_id: int
    iteration: int
    dur: float
    prefill_tokens: int
    num_prefills: int
    num_decodes: int
    decode_context_tokens: int
    prefill_request_ids: tuple[int, ...] = ()
    #: Scheduler backlog (pending requests) when the iteration was
    #: planned; -1 in schema-v1 traces recorded before the field existed.
    queue_depth: int = -1


@dataclass(frozen=True)
class ChunkSized(TraceEvent):
    """The dynamic chunker converted decode slack into a token budget."""

    kind: ClassVar[str] = "chunk_sized"

    chunk_budget: int
    latency_budget: float | None
    predicted_latency: float
    num_decodes: int


@dataclass(frozen=True)
class Relegated(TraceEvent):
    """Eager relegation demoted a request behind all regular work."""

    kind: ClassVar[str] = "relegated"

    request_id: int
    tier: str
    important: bool
    remaining_prefill: int


@dataclass(frozen=True)
class RelegationServed(TraceEvent):
    """A relegated request finally received opportunistic service.

    Emitted at the first prefill assignment after demotion; ``waited``
    is the time spent parked behind regular work (now minus relegation
    time).  Together with :class:`Relegated` this brackets the
    relegation stall that latency attribution charges to the eager
    relegation mechanism.
    """

    kind: ClassVar[str] = "relegation_served"

    replica_id: int
    request_id: int
    tier: str
    tokens: int
    waited: float


@dataclass(frozen=True)
class Preempted(TraceEvent):
    """A partial prefill lost its KV to break a memory deadlock."""

    kind: ClassVar[str] = "preempted"

    replica_id: int
    request_id: int
    prefill_tokens_lost: int


@dataclass(frozen=True)
class DecodeEvicted(TraceEvent):
    """A decoding request was evicted under KV pressure (recompute)."""

    kind: ClassVar[str] = "decode_evicted"

    replica_id: int
    request_id: int
    context_tokens_lost: int


@dataclass(frozen=True)
class RequestCompleted(TraceEvent):
    """A request produced its final token.

    Carries the full latency anchor set so the Chrome exporter can
    render the request's lifetime span without joining other events.
    """

    kind: ClassVar[str] = "request_completed"

    replica_id: int
    request_id: int
    tier: str
    arrival_time: float
    scheduled_first_time: float | None
    first_token_time: float | None
    completion_time: float
    relegated: bool
    violated: bool
    evictions: int
    #: "interactive" (TTFT/TBT-governed) or "non-interactive"
    #: (TTLT-governed); "" in schema-v1 traces, where consumers fall
    #: back to tier-name conventions.
    qos_class: str = ""


@dataclass(frozen=True)
class KVCacheSnapshot(TraceEvent):
    """Point-in-time KV occupancy of one replica."""

    kind: ClassVar[str] = "kv_cache_snapshot"

    replica_id: int
    used_blocks: int
    capacity_blocks: int
    utilization: float


@dataclass(frozen=True)
class ReplicaCrashed(TraceEvent):
    """A replica failed: KV cache and in-flight batch lost."""

    kind: ClassVar[str] = "replica_crashed"

    replica_id: int
    lost_requests: int
    kv_blocks_dropped: int


@dataclass(frozen=True)
class ReplicaRecovered(TraceEvent):
    """A crashed replica came back with a cold cache."""

    kind: ClassVar[str] = "replica_recovered"

    replica_id: int
    downtime: float


@dataclass(frozen=True)
class ReplicaSlowdown(TraceEvent):
    """A replica's iteration time changed by a straggler multiplier.

    ``factor`` 1.0 marks the end of a slowdown window.
    """

    kind: ClassVar[str] = "replica_slowdown"

    replica_id: int
    factor: float


@dataclass(frozen=True)
class RequestRetried(TraceEvent):
    """A request lost to a crash was re-enqueued after backoff."""

    kind: ClassVar[str] = "request_retried"

    request_id: int
    tier: str
    attempt: int
    backoff: float
    from_replica: int


@dataclass(frozen=True)
class RequestShed(TraceEvent):
    """Admission control refused an arrival under degraded capacity."""

    kind: ClassVar[str] = "request_shed"

    request_id: int
    tier: str
    important: bool
    alive_fraction: float


@dataclass(frozen=True)
class RequestCancelled(TraceEvent):
    """A request was abandoned (deadline timeout or retry budget)."""

    kind: ClassVar[str] = "request_cancelled"

    replica_id: int
    request_id: int
    tier: str
    reason: str
    waited: float


@dataclass(frozen=True)
class FaultSkipped(TraceEvent):
    """A fault plan event resolved to a no-op instead of firing.

    Elastic fleets resize while a fault plan (armed against the
    maximum pool size) keeps firing; a crash or slowdown aimed at a
    replica slot that has since been drained, released, or never
    provisioned is recorded here instead of raising mid-run.
    ``fault_kind`` mirrors :class:`repro.faults.plan.FaultEvent.kind`
    (``"crash"`` / ``"recover"`` / ``"slowdown"``); ``reason`` says why
    the target was invalid (``"drained"``, ``"released"``,
    ``"not_provisioned"``).
    """

    kind: ClassVar[str] = "fault_skipped"

    replica_id: int
    fault_kind: str
    reason: str


@dataclass(frozen=True)
class FleetResized(TraceEvent):
    """The heterogeneous fleet changed size or composition.

    ``action`` is ``"provision"`` (cold-start begun), ``"ready"`` (a
    provisioned replica came online), ``"drain"`` (a replica stopped
    accepting work) or ``"release"`` (a drained replica finished its
    backlog and left the pool).  ``fleet_size`` counts replicas that
    are provisioned and not yet released after the action.
    """

    kind: ClassVar[str] = "fleet_resized"

    action: str
    replica_id: int
    hardware: str
    fleet_size: int
    reason: str = ""


@dataclass(frozen=True)
class PrefixHit(TraceEvent):
    """An arrival's prompt matched a shared radix-cached prefix.

    ``hit_tokens`` prefill tokens were skipped (the scheduler only
    ever plans the uncached suffix); ``cached_tokens`` is the tree's
    resident footprint after locking the matched path.  Misses emit no
    event — they only bump the ``repro_kv_prefix_misses_total``
    counter.
    """

    kind: ClassVar[str] = "prefix_hit"

    replica_id: int
    request_id: int
    tier: str
    hit_tokens: int
    prompt_tokens: int
    cached_tokens: int


@dataclass(frozen=True)
class GatewayAdmitted(TraceEvent):
    """The online gateway accepted an arrival into a replica."""

    kind: ClassVar[str] = "gateway_admitted"

    request_id: int
    tier: str
    important: bool
    queue_depth: int


@dataclass(frozen=True)
class GatewayShed(TraceEvent):
    """The online gateway refused or evicted a request.

    ``reason`` is ``"rate_limit"`` (per-tier token bucket empty) or
    ``"backpressure"`` (queue depth cap; the victim follows the
    relegation demotable ordering).
    """

    kind: ClassVar[str] = "gateway_shed"

    request_id: int
    tier: str
    important: bool
    reason: str
    queue_depth: int


@dataclass(frozen=True)
class SpanStart(TraceEvent):
    """A request entered a lifecycle stage (see :mod:`repro.obs.spans`).

    ``name`` is the stage: ``gateway`` (offered to the serving front
    door), ``admission`` (admission decision), ``dispatch`` (router
    chose a replica), ``queue`` (enqueued on a scheduler), ``prefill``
    (first chunk scheduled) or ``decode`` (first output token).
    ``replica_id`` is -1 for stages outside any replica.
    """

    kind: ClassVar[str] = "span_start"

    name: str
    request_id: int
    replica_id: int = -1
    tier: str = ""

    def to_dict(self) -> dict[str, Any]:
        # Span markers fire several times per request on the engine's
        # hot path; an unrolled payload (same key order as the generic
        # reflective one) keeps the spans-on overhead within the bound
        # documented in docs/OBSERVABILITY.md.
        ts = self.ts
        return {
            "kind": self.kind,
            "ts": ts if math.isfinite(ts) else None,
            "name": self.name,
            "request_id": self.request_id,
            "replica_id": self.replica_id,
            "tier": self.tier,
        }


@dataclass(frozen=True)
class SpanEnd(TraceEvent):
    """A request left a lifecycle stage opened by :class:`SpanStart`."""

    kind: ClassVar[str] = "span_end"

    name: str
    request_id: int
    replica_id: int = -1
    tier: str = ""

    to_dict = SpanStart.to_dict


#: kind -> event class, the closed registry of trace event types.
EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        IterationScheduled,
        ChunkSized,
        Relegated,
        RelegationServed,
        Preempted,
        DecodeEvicted,
        RequestCompleted,
        KVCacheSnapshot,
        ReplicaCrashed,
        ReplicaRecovered,
        ReplicaSlowdown,
        RequestRetried,
        RequestShed,
        RequestCancelled,
        FaultSkipped,
        FleetResized,
        PrefixHit,
        GatewayAdmitted,
        GatewayShed,
        SpanStart,
        SpanEnd,
    )
}


def _checkers(cls: type[TraceEvent]) -> dict[str, tuple[type, ...]]:
    """Per-field accepted runtime types, derived from annotations."""
    out: dict[str, tuple[type, ...]] = {}
    hints = typing.get_type_hints(cls)
    for field in dataclasses.fields(cls):
        hint = hints[field.name]
        origin = typing.get_origin(hint)
        accepted: tuple[type, ...]
        if origin is typing.Union or origin is types.UnionType:
            members = [a for a in typing.get_args(hint)
                       if a is not type(None)]
            accepted = tuple(
                t for m in members for t in _scalar_types(m)
            ) + (type(None),)
        else:
            accepted = _scalar_types(hint)
        out[field.name] = accepted
    return out


def _scalar_types(hint: Any) -> tuple[type, ...]:
    origin = typing.get_origin(hint)
    if hint is float:
        return (int, float)
    if hint is int:
        return (int,)
    if hint is bool:
        return (bool,)
    if hint is str:
        return (str,)
    if origin in (tuple, list) or hint in (tuple, list):
        return (list, tuple)
    return (object,)


_SCHEMA: dict[str, dict[str, tuple[type, ...]]] = {
    kind: _checkers(cls) for kind, cls in EVENT_TYPES.items()
}


def _required_fields(cls: type[TraceEvent]) -> frozenset[str]:
    """Fields without a dataclass default.

    Defaulted fields are the schema-evolution seam: new fields must
    ship with defaults, so older traces (which lack them) still
    validate, and the reader reconstructs the default.
    """
    return frozenset(
        field.name
        for field in dataclasses.fields(cls)
        if field.default is dataclasses.MISSING
        and field.default_factory is dataclasses.MISSING
    )


_REQUIRED: dict[str, frozenset[str]] = {
    kind: _required_fields(cls) for kind, cls in EVENT_TYPES.items()
}


def validate_event(payload: dict[str, Any]) -> None:
    """Raise :class:`TraceSchemaError` unless ``payload`` is a valid
    serialized event.

    Fields without dataclass defaults are required; defaulted fields
    may be absent (older schema versions), but when present must
    type-check.  Unknown fields are always rejected.
    """
    if not isinstance(payload, dict):
        raise TraceSchemaError(f"event must be an object, got {payload!r}")
    kind = payload.get("kind")
    if kind not in _SCHEMA:
        raise TraceSchemaError(f"unknown event kind {kind!r}")
    schema = _SCHEMA[kind]
    missing = _REQUIRED[kind] - set(payload)
    if missing:
        raise TraceSchemaError(f"{kind}: missing fields {sorted(missing)}")
    extra = set(payload) - set(schema) - {"kind"}
    if extra:
        raise TraceSchemaError(f"{kind}: unexpected fields {sorted(extra)}")
    for name, accepted in schema.items():
        if name not in payload:
            continue
        value = payload[name]
        # bool passes isinstance(..., int); keep them distinct except
        # where bool is the declared type.
        if isinstance(value, bool) and bool not in accepted:
            raise TraceSchemaError(
                f"{kind}.{name}: bool not accepted, got {value!r}"
            )
        if not isinstance(value, accepted):
            raise TraceSchemaError(
                f"{kind}.{name}: expected {accepted}, got {value!r}"
            )
        if (
            isinstance(value, float)
            and not isinstance(value, bool)
            and not math.isfinite(value)
        ):
            raise TraceSchemaError(
                f"{kind}.{name}: non-finite float {value!r}"
            )
