"""SLO flight recorder: always-on incident capture around violations.

A million-request run cannot retain its full trace, but the moments
that matter — a request missing its deadline, a burn-rate window
spending the error budget too fast — are rare and local.
:class:`FlightRecorder` is a :class:`~repro.obs.trace.TraceSink` that
keeps only a bounded ring of recent events; when a trigger fires it
freezes the ring (pre-context), keeps collecting for a fixed number of
further events (post-context), and dumps the full-fidelity window as
one JSONL *incident* with the dominant cause from
:mod:`repro.obs.audit`.  Steady-state cost is one deque append per
event; the incident file only ever holds windows around anomalies.

Triggers:

* **deadline_violation** — a ``request_completed`` event with
  ``violated=True``;
* **burn_rate** — the completed request's burn-rate window (a
  :class:`~repro.obs.sketch.BurnRateTracker` bucket) crosses
  ``burn_threshold`` with at least ``min_window_total`` verdicts; each
  window trips at most once.

All timing is virtual (event timestamps), so incident capture is
deterministic: replaying the same trace produces byte-identical
incident files.
"""

from __future__ import annotations

import json
import math
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.audit import audit_events
from repro.obs.sketch import BurnRateTracker

__all__ = ["FlightRecorder", "record_incidents", "read_incidents"]


class FlightRecorder:
    """Bounded ring of recent events + triggered incident dumps.

    Args:
        path: JSONL incident file (one incident object per line).
            Created lazily on the first incident, so an uneventful run
            leaves no file behind.
        capacity: Ring size — the maximum pre-context per incident.
        post_context: Events collected *after* the trigger before the
            incident is sealed (the recorder's ``close`` seals any
            still-open incident early).
        burn_window: Burn-rate window width in virtual seconds.
        slo_budget: Allowed violation fraction (paper bar: 1%).
        burn_threshold: Window burn rate at or above which the
            burn-rate trigger fires (1.0 = spending the budget
            exactly; the SRE-workbook fast-burn page is 14.4).
        min_window_total: Verdicts a window needs before its rate is
            trusted — stops a single early violation from reading as
            an infinite burn.
        max_incidents: Stop opening new incidents after this many
            (``None`` = unbounded); the counter still advances so the
            truncation is visible.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        capacity: int = 2048,
        post_context: int = 256,
        burn_window: float = 60.0,
        slo_budget: float = 0.01,
        burn_threshold: float = 2.0,
        min_window_total: int = 10,
        max_incidents: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if post_context < 0:
            raise ValueError("post_context must be >= 0")
        if not math.isfinite(burn_threshold) or burn_threshold <= 0:
            raise ValueError("burn_threshold must be finite and > 0")
        self.path = Path(path)
        self.capacity = int(capacity)
        self.post_context = int(post_context)
        self.burn_threshold = float(burn_threshold)
        self.min_window_total = int(min_window_total)
        self.max_incidents = max_incidents
        self._ring: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._burn = BurnRateTracker(
            window=burn_window, slo_budget=slo_budget
        )
        self._tripped_windows: set[int] = set()
        self._open: list[dict[str, Any]] = []
        self._file = None
        #: Incidents triggered (including any suppressed past
        #: ``max_incidents``).
        self.triggered = 0
        #: Incidents actually written to ``path``.
        self.incidents_written = 0

    # --- TraceSink protocol --------------------------------------------

    def append(self, payload: dict[str, Any]) -> None:
        self._ring.append(payload)
        for incident in self._open:
            incident["events"].append(payload)
            incident["remaining"] -= 1
        sealed = [i for i in self._open if i["remaining"] <= 0]
        if sealed:
            self._open = [i for i in self._open if i["remaining"] > 0]
            for incident in sealed:
                self._write(incident)

        if payload.get("kind") != "request_completed":
            return
        ts = payload["ts"]
        violated = bool(payload.get("violated"))
        self._burn.observe(ts, violated)
        if violated:
            self._trigger({
                "trigger": "deadline_violation",
                "ts": ts,
                "request_id": payload.get("request_id"),
                "tier": payload.get("tier", ""),
            })
        window = math.floor(ts / self._burn.window)
        total = self._burn._totals.get(window, 0)
        bad = self._burn._violations.get(window, 0)
        if (
            total >= self.min_window_total
            and window not in self._tripped_windows
        ):
            rate = (bad / total) / self._burn.slo_budget
            if rate >= self.burn_threshold:
                self._tripped_windows.add(window)
                self._trigger({
                    "trigger": "burn_rate",
                    "ts": ts,
                    "window_start": window * self._burn.window,
                    "window_end": (window + 1) * self._burn.window,
                    "burn_rate": rate,
                })

    def close(self) -> None:
        """Seal any open incidents with the context collected so far."""
        for incident in self._open:
            self._write(incident)
        self._open = []
        if self._file is not None and not self._file.closed:
            self._file.close()

    # --- internals ------------------------------------------------------

    def _trigger(self, meta: dict[str, Any]) -> None:
        self.triggered += 1
        if (
            self.max_incidents is not None
            and self.triggered > self.max_incidents
        ):
            return
        # Pre-context is the ring as of the trigger (which has already
        # absorbed the triggering event itself).
        self._open.append({
            "meta": meta,
            "events": list(self._ring),
            "remaining": self.post_context,
        })

    def _write(self, incident: dict[str, Any]) -> None:
        meta = incident["meta"]
        events = incident["events"]
        report = audit_events(events)
        if meta["trigger"] == "deadline_violation":
            cause = next(
                (
                    audit.dominant_cause for audit in report.requests
                    if audit.request_id == meta.get("request_id")
                ),
                None,
            )
        else:
            causes = report.dominant_causes()
            cause = (
                max(sorted(causes), key=lambda c: causes[c])
                if causes else None
            )
        line = {
            **meta,
            "dominant_cause": cause,
            "num_events": len(events),
            "events": events,
        }
        if self._file is None:
            self._file = self.path.open("w")
        self._file.write(json.dumps(line, separators=(",", ":")))
        self._file.write("\n")
        self._file.flush()
        self.incidents_written += 1


def record_incidents(
    events: Iterable[Mapping[str, Any]],
    path: str | Path,
    **kwargs: Any,
) -> int:
    """Replay a recorded trace through a fresh flight recorder.

    Returns the number of incidents written — the offline counterpart
    of attaching the recorder to a live gateway.
    """
    recorder = FlightRecorder(path, **kwargs)
    for event in events:
        recorder.append(dict(event))
    recorder.close()
    return recorder.incidents_written


def read_incidents(path: str | Path) -> list[dict[str, Any]]:
    """Load an incident JSONL file back into incident dicts."""
    incidents: list[dict[str, Any]] = []
    with Path(path).open() as source:
        for lineno, line in enumerate(source, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                incidents.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {error}"
                ) from error
    return incidents
