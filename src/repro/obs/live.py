"""Live telemetry snapshots and the ``repro top`` dashboard.

:func:`build_live_snapshot` freezes one JSON-safe frame of a running
gateway's state — virtual time, queue depth, admission bucket fill,
per-tier goodput, windowed sketch quantiles and burn rates — the frame
``GET /v1/live`` streams as server-sent events.  Everything is read
from the gateway's always-on state plus (when a
:class:`~repro.obs.observer.TracingObserver` is attached) its metrics
registry, so a snapshot never perturbs the simulation: admission
bucket fill uses the non-mutating peek, and no event is consumed.

:func:`render_top` turns a frame into the fixed-width terminal
dashboard (``repro top``); :func:`render_incidents` does the same for
a flight-recorder incident file (``repro top --incidents``).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

#: Quantiles shown per latency sketch in live frames.
LIVE_QUANTILES: tuple[float, ...] = (0.50, 0.95, 0.99)

#: Latency sketch families surfaced in live frames, keyed by the label
#: used in the frame.
_LATENCY_FAMILIES = {
    "ttft": "repro_request_ttft_seconds",
    "ttlt": "repro_request_ttlt_seconds",
    "tbt": "repro_request_tbt_seconds",
}

#: Burn-rate windows kept per frame (the most recent ones).
_BURN_WINDOWS = 8


def _jsonsafe(value: float | None) -> float | None:
    """None for non-finite floats so frames stay strict JSON."""
    if value is None or not math.isfinite(value):
        return None
    return value


def _tier_goodput(offered: Iterable[Any]) -> dict[str, dict[str, Any]]:
    """Per-tier goodput from the gateway's offered-request ledger."""
    out: dict[str, dict[str, Any]] = {}
    for request in offered:
        tier = request.qos.name
        row = out.setdefault(tier, {
            "offered": 0, "completed": 0, "violated": 0, "shed": 0,
        })
        row["offered"] += 1
        if getattr(request, "shed", False):
            row["shed"] += 1
        elif request.completion_time is not None:
            row["completed"] += 1
            if request.violated_deadline:
                row["violated"] += 1
    for row in out.values():
        row["goodput"] = (
            (row["completed"] - row["violated"]) / row["offered"]
            if row["offered"] else 0.0
        )
    return dict(sorted(out.items()))


def _sketch_quantiles(registry: Any) -> dict[str, dict[str, dict[str, Any]]]:
    """Per-tier quantiles for every live latency family."""
    by_name = {family.name: family for family in registry.families()}
    out: dict[str, dict[str, dict[str, Any]]] = {}
    for label, name in _LATENCY_FAMILIES.items():
        family = by_name.get(name)
        if family is None or family.kind != "sketch":
            continue
        tiers: dict[str, dict[str, Any]] = {}
        for labelvalues, child in sorted(family.series().items()):
            tier = labelvalues[0] if labelvalues else ""
            tiers[tier] = {
                "count": child.count,
                **{
                    f"p{int(q * 100)}": _jsonsafe(
                        child.quantile(q) if child.count else None
                    )
                    for q in LIVE_QUANTILES
                },
            }
        if tiers:
            out[label] = tiers
    return out


def build_live_snapshot(gateway: Any) -> dict[str, Any]:
    """One JSON-safe telemetry frame from a :class:`ServeGateway`.

    Works with any observer: the always-on gateway state is always
    present; sketch quantiles, burn rates and incident counts appear
    when the attached observer (or its flight recorder) provides them.
    """
    now = gateway.session.now
    snapshot: dict[str, Any] = {
        "virtual_now": now,
        "speed": _jsonsafe(gateway.clock.speed),
        "queue_depth": gateway.session.queue_depth(),
        "gateway": gateway.stats.to_dict(),
        "token_bucket_fill": gateway.admission.fill_levels(now),
        "goodput": _tier_goodput(gateway.offered),
    }
    fleet_snapshot = getattr(gateway, "_fleet_snapshot", None)
    fleet = fleet_snapshot() if fleet_snapshot is not None else None
    if fleet is not None:
        snapshot["fleet"] = fleet
    observer = gateway._observer
    registry = getattr(observer, "registry", None)
    if registry is not None:
        snapshot["latency_quantiles"] = _sketch_quantiles(registry)
    burn = getattr(observer, "burn_rate", None)
    if burn is not None:
        snapshot["burn_rate"] = {
            "max": burn.max_burn_rate(),
            "windows": burn.series()[-_BURN_WINDOWS:],
        }
    recorder = getattr(observer, "flight_recorder", None)
    if recorder is not None:
        snapshot["incidents"] = {
            "triggered": recorder.triggered,
            "written": recorder.incidents_written,
            "path": str(recorder.path),
        }
    return snapshot


# --- terminal rendering ---------------------------------------------------


def _fmt(value: Any, places: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{places}f}"
    return str(value)


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rows
    )
    return lines


def render_top(snapshot: Mapping[str, Any]) -> str:
    """Fixed-width dashboard for one live frame (``repro top``)."""
    speed = snapshot.get("speed")
    lines = [
        "repro top — "
        f"virtual t={_fmt(snapshot.get('virtual_now'))}s  "
        f"speed={'inf' if speed is None else _fmt(speed, 1)}  "
        f"queue_depth={snapshot.get('queue_depth', 0)}",
        "",
    ]

    goodput = snapshot.get("goodput", {})
    rows = [
        [
            tier,
            str(row["offered"]), str(row["completed"]),
            str(row["violated"]), str(row["shed"]),
            f"{row['goodput'] * 100:.1f}%",
            _fmt(snapshot.get("token_bucket_fill", {}).get(tier), 1),
        ]
        for tier, row in goodput.items()
    ]
    lines += _table(
        ["tier", "offered", "done", "violated", "shed", "goodput",
         "bucket"],
        rows,
    )

    quantiles = snapshot.get("latency_quantiles") or {}
    for label in ("ttft", "ttlt", "tbt"):
        tiers = quantiles.get(label)
        if not tiers:
            continue
        lines.append("")
        lines += _table(
            [label, "count"] + [
                f"p{int(q * 100)}" for q in LIVE_QUANTILES
            ],
            [
                [tier, str(row.get("count", 0))] + [
                    _fmt(row.get(f"p{int(q * 100)}"))
                    for q in LIVE_QUANTILES
                ]
                for tier, row in tiers.items()
            ],
        )

    fleet = snapshot.get("fleet")
    if fleet is not None:
        by_hw = " ".join(
            f"{name}={count}"
            for name, count in sorted(fleet["by_hardware"].items())
        )
        lines.append("")
        lines.append(
            f"fleet: {fleet['size']} provisioned "
            f"({fleet['active']} active)  {by_hw}  "
            f"alive={_fmt(fleet['alive_fraction'], 2)}  "
            f"burn={_fmt(fleet['burn_rate'], 2)}x  "
            f"gpu_hours={_fmt(fleet['gpu_hours'], 3)}  "
            f"faults_skipped={fleet['faults_skipped']}"
        )

    burn = snapshot.get("burn_rate")
    if burn is not None:
        lines.append("")
        lines.append(f"burn rate: max {_fmt(burn.get('max'), 2)}x budget")
        for window in burn.get("windows", []):
            bar = "#" * min(40, int(round(window["burn_rate"])))
            lines.append(
                f"  [{_fmt(window['start'], 0)}s-"
                f"{_fmt(window['end'], 0)}s) "
                f"{window['violated']}/{window['total']} "
                f"burn={_fmt(window['burn_rate'], 2)} {bar}"
            )

    incidents = snapshot.get("incidents")
    if incidents is not None:
        lines.append("")
        lines.append(
            f"incidents: {incidents['written']} written "
            f"({incidents['triggered']} triggered) -> "
            f"{incidents['path']}"
        )
    return "\n".join(lines)


def render_incidents(incidents: list[Mapping[str, Any]]) -> str:
    """Tabular rendering of a flight-recorder incident file."""
    if not incidents:
        return "(no incidents recorded)"
    rows = []
    for incident in incidents:
        rows.append([
            incident.get("trigger", "?"),
            _fmt(incident.get("ts")),
            _fmt(incident.get("request_id")),
            str(incident.get("tier") or "-"),
            str(incident.get("dominant_cause") or "-"),
            (
                _fmt(incident.get("burn_rate"), 2)
                if incident.get("burn_rate") is not None else "-"
            ),
            str(incident.get("num_events", 0)),
        ])
    lines = _table(
        ["trigger", "ts", "request", "tier", "dominant_cause",
         "burn", "events"],
        rows,
    )
    lines.append("")
    lines.append(f"{len(incidents)} incident(s)")
    return "\n".join(lines)
