"""Request-scoped causal span trees from recorded trace events.

Every completed request becomes one span tree:

* the **root** span covers arrival to completion;
* its **phase** children are the ordered attribution segments from
  :mod:`repro.obs.audit` (``admission_queue``, ``prefill_compute``,
  stalls, ``decode``) — the *same* ``(phase, start, end)`` tuples the
  auditor sums into its phase totals, so span durations reconcile with
  the attribution by construction, not by re-derivation;
* each ``prefill_compute`` phase carries **chunk** children, one per
  engine iteration that served a slice of this request's prefill
  (clipped to the phase), with the iteration number and replica;
* **lifecycle** children overlay the schema-v4 ``span_start`` /
  ``span_end`` markers emitted live by the gateway, router and engine
  (``gateway``, ``admission``, ``dispatch``, ``queue``, ``prefill``,
  ``decode``).  They are an independent, live-recorded view — the
  conservation invariant applies to the phase children only.

Trees export as OTLP-compatible JSON (:func:`spans_to_otlp`) for any
OpenTelemetry backend and as Chrome trace events with flow arrows
(:func:`spans_to_chrome`) for Perfetto.  Both exports are fully
deterministic: trace and span ids derive from the request id and the
span's position in the tree, never from randomness or wall time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.audit import RequestAudit, audit_events

_US = 1e6   # seconds -> Chrome trace microseconds
_NS = 1e9   # seconds -> OTLP nanoseconds

#: Lifecycle stages in causal order (the ``name`` field of
#: ``span_start`` / ``span_end`` events).
LIFECYCLE_STAGES: tuple[str, ...] = (
    "gateway",
    "admission",
    "dispatch",
    "queue",
    "prefill",
    "decode",
)


@dataclass
class Span:
    """One node of a request's span tree.

    ``category`` is ``request`` (root), ``phase`` (attribution
    segment), ``chunk`` (engine iteration slice) or ``lifecycle``
    (live ``span_start``/``span_end`` marker).
    """

    name: str
    category: str
    start: float
    end: float
    request_id: int
    tier: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self) -> Iterable["Span"]:
        """Depth-first traversal, self first (deterministic order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "request_id": self.request_id,
            "tier": self.tier,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }


def phase_durations(root: Span) -> dict[str, float]:
    """Per-phase seconds summed from the tree's phase children.

    The additions happen in tree order — the same order the auditor
    used — so the result is bit-identical to
    :attr:`~repro.obs.audit.RequestAudit.phases` for nonzero phases.
    """
    totals: dict[str, float] = {}
    for child in root.children:
        if child.category == "phase":
            totals[child.name] = totals.get(child.name, 0.0) + child.duration
    return totals


def reconciliation_error(root: Span, audit: RequestAudit) -> float:
    """Largest per-phase disagreement between tree and attribution."""
    durations = phase_durations(root)
    return max(
        (
            abs(durations.get(name, 0.0) - seconds)
            for name, seconds in audit.phases.items()
        ),
        default=0.0,
    )


def conservation_error(root: Span) -> float:
    """|sum(phase children) - root duration| — the tiling invariant."""
    total = sum(
        child.duration for child in root.children
        if child.category == "phase"
    )
    return abs(total - root.duration)


def build_span_trees(
    events: Iterable[Mapping[str, Any]],
) -> list[Span]:
    """Reconstruct one span tree per completed request.

    Args:
        events: Serialized trace events in any order (the output of
            :func:`repro.obs.trace.read_jsonl_trace`, a sink buffer, or
            a flight-recorder incident window).  Works on any schema
            version — v1–v3 traces simply have no lifecycle overlay.
    """
    events = list(events)
    report = audit_events(events)

    # Per-request engine iterations that carried a prefill slice.
    chunks: dict[int, list[tuple[float, float, int, int]]] = {}
    # Live lifecycle markers: request -> stage -> [start ts] / [(ts, rid)].
    starts: dict[int, dict[str, list[tuple[float, int]]]] = {}
    ends: dict[int, dict[str, list[tuple[float, int]]]] = {}
    for ev in events:
        kind = ev.get("kind")
        if kind == "iteration_scheduled":
            ts = ev["ts"]
            for request_id in ev.get("prefill_request_ids", ()):
                chunks.setdefault(request_id, []).append(
                    (ts, ts + ev["dur"], int(ev["replica_id"]),
                     int(ev["iteration"]))
                )
        elif kind == "span_start":
            starts.setdefault(ev["request_id"], {}).setdefault(
                ev["name"], []
            ).append((ev["ts"], int(ev.get("replica_id", -1))))
        elif kind == "span_end":
            ends.setdefault(ev["request_id"], {}).setdefault(
                ev["name"], []
            ).append((ev["ts"], int(ev.get("replica_id", -1))))

    trees: list[Span] = []
    for audit in report.requests:
        root = Span(
            name=f"request {audit.request_id}",
            category="request",
            start=audit.arrival_time,
            end=audit.completion_time,
            request_id=audit.request_id,
            tier=audit.tier,
            attrs={
                "tier": audit.tier,
                "qos_class": audit.qos_class,
                "violated": audit.violated,
                "relegated": audit.relegated,
                "evictions": audit.evictions,
                "dominant_cause": audit.dominant_cause,
            },
        )

        chunk_index = 0
        intervals = sorted(chunks.get(audit.request_id, []))
        for phase, seg_start, seg_end in audit.segments:
            child = Span(
                name=phase,
                category="phase",
                start=seg_start,
                end=seg_end,
                request_id=audit.request_id,
                tier=audit.tier,
            )
            if phase == "prefill_compute":
                # Engine iterations clipped to this phase segment.
                for ts, te, replica_id, iteration in intervals:
                    lo, hi = max(ts, seg_start), min(te, seg_end)
                    if hi <= lo:
                        continue
                    child.children.append(Span(
                        name=f"chunk {chunk_index}",
                        category="chunk",
                        start=lo,
                        end=hi,
                        request_id=audit.request_id,
                        tier=audit.tier,
                        attrs={
                            "replica_id": replica_id,
                            "iteration": iteration,
                        },
                    ))
                    chunk_index += 1
            root.children.append(child)

        # Lifecycle overlay: pair live markers FIFO per stage; an
        # unmatched start closes at completion (the request finished
        # inside the stage — e.g. "gateway" ends when the ticket does).
        req_starts = starts.get(audit.request_id, {})
        req_ends = ends.get(audit.request_id, {})
        overlay: list[Span] = []
        for stage, opened in req_starts.items():
            closed = list(req_ends.get(stage, []))
            for i, (ts, replica_id) in enumerate(sorted(opened)):
                end_ts = (
                    sorted(closed)[i][0] if i < len(closed)
                    else audit.completion_time
                )
                overlay.append(Span(
                    name=stage,
                    category="lifecycle",
                    start=ts,
                    end=max(end_ts, ts),
                    request_id=audit.request_id,
                    tier=audit.tier,
                    attrs={"replica_id": replica_id},
                ))
        overlay.sort(key=lambda s: (
            s.start,
            LIFECYCLE_STAGES.index(s.name)
            if s.name in LIFECYCLE_STAGES else len(LIFECYCLE_STAGES),
        ))
        root.children.extend(overlay)
        trees.append(root)

    trees.sort(key=lambda s: (s.start, s.request_id))
    return trees


# --- OTLP export ----------------------------------------------------------


def _otlp_value(value: Any) -> dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    if value is None:
        return {"stringValue": ""}
    return {"stringValue": str(value)}


def _otlp_attrs(attrs: Mapping[str, Any]) -> list[dict[str, Any]]:
    return [
        {"key": key, "value": _otlp_value(value)}
        for key, value in attrs.items()
    ]


def spans_to_otlp(
    trees: Iterable[Span],
    service_name: str = "repro.serve",
) -> dict[str, Any]:
    """OTLP/JSON (``ExportTraceServiceRequest``) for the span trees.

    Ids are deterministic: the 128-bit trace id is the request id, the
    64-bit span id is the request id combined with the span's
    depth-first position — re-exporting the same trace yields the same
    bytes.  Virtual-time seconds map to Unix nanoseconds directly
    (epoch = simulation start).
    """
    spans: list[dict[str, Any]] = []
    for root in trees:
        trace_id = f"{root.request_id & (2 ** 128 - 1):032x}"

        def span_id(seq: int) -> str:
            raw = ((root.request_id & 0xFFFFFFFFFFFF) << 16) | (seq & 0xFFFF)
            return f"{raw:016x}"

        flat = list(root.walk())
        parent_of: dict[int, int] = {}
        for idx, span in enumerate(flat):
            for child in span.children:
                parent_of[id(child)] = idx
        for idx, span in enumerate(flat):
            attrs = {"category": span.category, "tier": span.tier}
            attrs.update(span.attrs)
            spans.append({
                "traceId": trace_id,
                "spanId": span_id(idx),
                "parentSpanId": (
                    span_id(parent_of[id(span)])
                    if id(span) in parent_of else ""
                ),
                "name": span.name,
                "kind": "SPAN_KIND_INTERNAL",
                "startTimeUnixNano": str(int(round(span.start * _NS))),
                "endTimeUnixNano": str(int(round(span.end * _NS))),
                "attributes": _otlp_attrs(attrs),
            })
    return {
        "resourceSpans": [{
            "resource": {
                "attributes": _otlp_attrs({"service.name": service_name}),
            },
            "scopeSpans": [{
                "scope": {"name": "repro.obs.spans"},
                "spans": spans,
            }],
        }],
    }


# --- Chrome trace export --------------------------------------------------

#: Track ids inside each request's process: one row per category so
#: phases, chunks and the live overlay never visually overlap.
_CHROME_TRACKS = {"request": 0, "phase": 1, "chunk": 2, "lifecycle": 3}


def spans_to_chrome(trees: Iterable[Span]) -> dict[str, Any]:
    """Chrome trace JSON: one process per request, flow arrows chaining
    the phase segments so the causal path reads left to right."""
    trace_events: list[dict[str, Any]] = []
    for root in trees:
        pid = root.request_id
        trace_events.append({
            "ph": "M", "pid": pid, "name": "process_name",
            "args": {"name": f"request {root.request_id} [{root.tier}]"},
        })
        for track, tid in sorted(_CHROME_TRACKS.items(), key=lambda i: i[1]):
            trace_events.append({
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": track},
            })
        for span in root.walk():
            trace_events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": pid,
                "tid": _CHROME_TRACKS.get(span.category, 0),
                "ts": span.start * _US,
                "dur": max(0.0, span.duration) * _US,
                "args": {"tier": span.tier, **span.attrs},
            })
        # Flow arrows: each phase hands off to the next.
        phases = [c for c in root.children if c.category == "phase"]
        for i, (prev, nxt) in enumerate(zip(phases, phases[1:])):
            flow_id = pid * 1000 + i
            common = {
                "cat": "phase_flow", "name": "handoff",
                "id": flow_id, "pid": pid,
                "tid": _CHROME_TRACKS["phase"],
            }
            trace_events.append({
                **common, "ph": "s", "ts": prev.end * _US,
            })
            trace_events.append({
                **common, "ph": "f", "bp": "e", "ts": nxt.start * _US,
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs.spans", "time_unit": "us"},
    }


def write_spans(
    events: Iterable[Mapping[str, Any]],
    path: str | Path,
    fmt: str = "otlp",
) -> int:
    """Build span trees from ``events`` and write them to ``path``.

    Args:
        fmt: ``otlp`` (OTLP/JSON) or ``chrome`` (trace-event JSON).

    Returns:
        Number of span trees (completed requests) exported.
    """
    trees = build_span_trees(events)
    if fmt == "otlp":
        doc: dict[str, Any] = spans_to_otlp(trees)
    elif fmt == "chrome":
        doc = spans_to_chrome(trees)
    else:
        raise ValueError(f"unknown span export format: {fmt!r}")
    Path(path).write_text(json.dumps(doc))
    return len(trees)
