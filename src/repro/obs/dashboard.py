"""`repro dashboard`: a self-contained SLO-forensics report.

Turns a recorded JSONL trace (:class:`repro.obs.trace.JSONLSink`
output) into two renderings of the same analysis:

* a terminal summary (:func:`render_terminal`) — goodput per tier,
  peak burn rate, the violation-attribution table;
* a single-file HTML report (:func:`render_html`) with inline SVG
  charts — no JavaScript, no external assets, so the file can be
  attached to a CI run or an incident ticket and opened anywhere.

All analysis is derived from the event stream alone (no access to live
``Request`` objects), exercising exactly the reconstruction path that
:mod:`repro.obs.audit` pins with conservation tests.
"""

from __future__ import annotations

import html
from typing import Any, Iterable, Mapping

from repro.obs.audit import PHASES, AttributionReport, audit_events
from repro.obs.sketch import BurnRateTracker, QuantileSketch

#: Colors for the attribution waterfall, keyed by phase (SVG fills).
_PHASE_COLORS: dict[str, str] = {
    "admission_queue": "#4e79a7",
    "prefill_compute": "#59a14f",
    "chunk_stall": "#f28e2b",
    "preempt_stall": "#e15759",
    "relegation_stall": "#b07aa1",
    "retry_stall": "#9c755f",
    "decode": "#76b7b2",
}

_QUANTILES = (0.50, 0.90, 0.99)


def build_dashboard_data(
    events: Iterable[Mapping[str, Any]],
    burn_window: float = 60.0,
    slo_budget: float = 0.01,
    incidents: Iterable[Mapping[str, Any]] | None = None,
) -> dict[str, Any]:
    """Reduce a trace to everything the renderers need.

    Returns a plain dict: ``tiers`` (per-tier goodput + TTFT/TTLT
    percentile rows), ``burn`` (windowed burn-rate series),
    ``attribution`` (:class:`~repro.obs.audit.AttributionReport`),
    and run-level counts.  Pass flight-recorder incidents (the output
    of :func:`repro.obs.recorder.read_incidents`) to cross-link them
    into both renderings — ``repro dashboard --incidents``.
    """
    events = list(events)
    burn = BurnRateTracker(window=burn_window, slo_budget=slo_budget)
    ttft: dict[str, QuantileSketch] = {}
    ttlt: dict[str, QuantileSketch] = {}
    completed: dict[str, int] = {}
    violated: dict[str, int] = {}
    span_start = float("inf")
    span_end = float("-inf")
    kinds: dict[str, int] = {}
    for event in events:
        kind = event.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            span_start = min(span_start, ts)
            span_end = max(span_end, ts)
        if kind != "request_completed":
            continue
        tier = event["tier"]
        completed[tier] = completed.get(tier, 0) + 1
        if event["violated"]:
            violated[tier] = violated.get(tier, 0) + 1
        burn.observe(event["completion_time"], bool(event["violated"]))
        if event["first_token_time"] is not None:
            ttft.setdefault(tier, QuantileSketch()).add(
                event["first_token_time"] - event["arrival_time"]
            )
        ttlt.setdefault(tier, QuantileSketch()).add(
            event["completion_time"] - event["arrival_time"]
        )

    tiers = []
    for tier in sorted(completed):
        done = completed[tier]
        bad = violated.get(tier, 0)
        tiers.append({
            "tier": tier,
            "completed": done,
            "violated": bad,
            "goodput_pct": 100.0 * (done - bad) / done if done else 0.0,
            "ttft": {
                q: ttft[tier].quantile(q) for q in _QUANTILES
            } if tier in ttft else {},
            "ttlt": {
                q: ttlt[tier].quantile(q) for q in _QUANTILES
            } if tier in ttlt else {},
        })

    total = sum(completed.values())
    bad = sum(violated.values())
    return {
        "num_events": len(events),
        "event_kinds": dict(sorted(kinds.items())),
        "span": (
            (span_start, span_end) if span_start <= span_end else (0.0, 0.0)
        ),
        "completed": total,
        "violated": bad,
        "goodput_pct": 100.0 * (total - bad) / total if total else 0.0,
        "tiers": tiers,
        "burn": burn,
        "attribution": audit_events(events),
        "incidents": list(incidents) if incidents is not None else [],
    }


# --- terminal rendering ------------------------------------------------


def _fmt_s(value: float) -> str:
    """Humanize a duration in seconds."""
    if value != value:  # NaN
        return "-"
    if value < 1.0:
        return f"{value * 1e3:.0f}ms"
    if value < 120.0:
        return f"{value:.2f}s"
    return f"{value / 60.0:.1f}min"


def _describe_incident(incident: Mapping[str, Any]) -> str:
    """One-line summary of a flight-recorder incident record."""
    trigger = incident.get("trigger", "?")
    ts = incident.get("ts")
    when = f"t={ts:.1f}s" if isinstance(ts, (int, float)) else "t=?"
    cause = incident.get("dominant_cause") or "unattributed"
    if trigger == "deadline_violation":
        what = (
            f"request {incident.get('request_id')} "
            f"({incident.get('tier', '?')}) missed deadline"
        )
    elif trigger == "burn_rate":
        what = f"burn rate {incident.get('burn_rate', 0.0):.1f}x budget"
    else:
        what = str(trigger)
    return (
        f"{when}  {what}  cause: {cause}  "
        f"[{incident.get('num_events', 0)} ring events]"
    )


def render_terminal(data: Mapping[str, Any]) -> str:
    """Plain-text dashboard summary (the CLI's stdout report)."""
    burn: BurnRateTracker = data["burn"]
    attribution: AttributionReport = data["attribution"]
    span = data["span"]
    lines = [
        "== SLO forensics dashboard ==",
        f"events: {data['num_events']}  "
        f"span: {_fmt_s(span[1] - span[0])}  "
        f"completed: {data['completed']}  "
        f"violated: {data['violated']}  "
        f"goodput: {data['goodput_pct']:.2f}%",
        "",
        "per-tier latency (p50 / p90 / p99):",
        f"  {'tier':<6}{'done':>6}{'miss':>6}{'goodput':>9}"
        f"{'TTFT':>22}{'TTLT':>24}",
    ]
    for row in data["tiers"]:
        ttft = row["ttft"]
        ttlt = row["ttlt"]
        fmt3 = lambda table: (  # noqa: E731 - tiny local formatter
            " / ".join(_fmt_s(table[q]) for q in _QUANTILES)
            if table else "-"
        )
        lines.append(
            f"  {row['tier']:<6}{row['completed']:>6}{row['violated']:>6}"
            f"{row['goodput_pct']:>8.2f}%"
            f"{fmt3(ttft):>22}{fmt3(ttlt):>24}"
        )
    lines += [
        "",
        f"burn rate (window {burn.window:.0f}s, "
        f"budget {burn.slo_budget:.1%}): "
        f"peak {burn.max_burn_rate():.2f}x",
    ]
    series = burn.series()
    if series:
        peak = max(r["burn_rate"] for r in series)
        scale = peak if peak > 0 else 1.0
        bars = "".join(
            " ▁▂▃▄▅▆▇█"[min(8, int(8 * r["burn_rate"] / scale))]
            for r in series
        )
        lines.append(f"  [{bars}]")
    lines += ["", "violation attribution (dominant cause):"]
    causes = attribution.dominant_causes()
    if causes:
        for cause, count in sorted(
            causes.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {cause:<18}{count:>6}")
    else:
        lines.append("  no violations")
    share = attribution.phase_share()
    lines += ["", "where the time went (all completed requests):"]
    for name in PHASES:
        lines.append(f"  {name:<18}{share[name]:>7.1%}")
    incidents = data.get("incidents") or []
    if incidents:
        lines += ["", f"flight-recorder incidents ({len(incidents)}):"]
        for incident in incidents:
            lines.append(f"  {_describe_incident(incident)}")
    return "\n".join(lines) + "\n"


# --- HTML rendering ----------------------------------------------------


def _svg_burn_timeline(burn: BurnRateTracker, width: int = 640,
                       height: int = 120) -> str:
    """Burn-rate bars over simulated time; the budget line is 1.0x."""
    series = burn.series()
    if not series:
        return "<p>no completions recorded</p>"
    peak = max(1.0, max(r["burn_rate"] for r in series))
    pad = 24
    plot_w = width - 2 * pad
    plot_h = height - 2 * pad
    bar_w = plot_w / len(series)
    parts = [
        f'<svg viewBox="0 0 {width} {height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img" '
        f'aria-label="SLO burn rate over simulated time">'
    ]
    for i, row in enumerate(series):
        h = plot_h * row["burn_rate"] / peak
        x = pad + i * bar_w
        y = pad + plot_h - h
        color = "#e15759" if row["burn_rate"] > 1.0 else "#4e79a7"
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{max(1.0, bar_w - 1):.1f}" '
            f'height="{h:.1f}" fill="{color}">'
            f"<title>[{row['start']:.0f}s, {row['end']:.0f}s) "
            f"burn {row['burn_rate']:.2f}x "
            f"({row['violated']}/{row['total']})</title></rect>"
        )
    budget_y = pad + plot_h - plot_h / peak
    parts.append(
        f'<line x1="{pad}" y1="{budget_y:.1f}" x2="{width - pad}" '
        f'y2="{budget_y:.1f}" stroke="#333" stroke-dasharray="4 3"/>'
        f'<text x="{width - pad}" y="{budget_y - 4:.1f}" '
        f'text-anchor="end" font-size="10">1.0x budget</text>'
        "</svg>"
    )
    return "".join(parts)


def _svg_waterfall(attribution: AttributionReport, width: int = 640,
                   row_h: int = 26) -> str:
    """Per-tier stacked bars of phase shares (the latency waterfall)."""
    tiers = sorted(attribution.phase_totals)
    if not tiers:
        return "<p>no completed requests</p>"
    pad = 56
    plot_w = width - pad - 12
    height = row_h * len(tiers) + 40
    parts = [
        f'<svg viewBox="0 0 {width} {height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img" '
        f'aria-label="Latency attribution by tier">'
    ]
    for i, tier in enumerate(tiers):
        share = attribution.phase_share(tier)
        y = 8 + i * row_h
        parts.append(
            f'<text x="{pad - 8}" y="{y + row_h / 2:.1f}" '
            f'text-anchor="end" font-size="12">{html.escape(tier)}</text>'
        )
        x = float(pad)
        for name in PHASES:
            w = plot_w * share[name]
            if w <= 0.0:
                continue
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                f'height="{row_h - 6}" fill="{_PHASE_COLORS[name]}">'
                f"<title>{name}: {share[name]:.1%}</title></rect>"
            )
            x += w
    legend_y = 8 + len(tiers) * row_h + 12
    x = float(pad)
    for name in PHASES:
        parts.append(
            f'<rect x="{x:.1f}" y="{legend_y - 9}" width="10" height="10" '
            f'fill="{_PHASE_COLORS[name]}"/>'
            f'<text x="{x + 13:.1f}" y="{legend_y}" font-size="9">'
            f"{name.split('_')[0]}</text>"
        )
        x += 82
    parts.append("</svg>")
    return "".join(parts)


def render_html(data: Mapping[str, Any], title: str = "repro dashboard",
                ) -> str:
    """Single-file HTML report (inline SVG, no scripts, no assets)."""
    burn: BurnRateTracker = data["burn"]
    attribution: AttributionReport = data["attribution"]
    causes = attribution.dominant_causes()

    tier_rows = "".join(
        "<tr><td>{tier}</td><td>{completed}</td><td>{violated}</td>"
        "<td>{goodput_pct:.2f}%</td><td>{ttft}</td><td>{ttlt}</td></tr>"
        .format(
            tier=html.escape(row["tier"]),
            completed=row["completed"],
            violated=row["violated"],
            goodput_pct=row["goodput_pct"],
            ttft=" / ".join(
                _fmt_s(row["ttft"][q]) for q in _QUANTILES
            ) if row["ttft"] else "-",
            ttlt=" / ".join(
                _fmt_s(row["ttlt"][q]) for q in _QUANTILES
            ) if row["ttlt"] else "-",
        )
        for row in data["tiers"]
    )
    cause_rows = "".join(
        f"<tr><td>{html.escape(cause)}</td><td>{count}</td></tr>"
        for cause, count in sorted(
            causes.items(), key=lambda kv: (-kv[1], kv[0])
        )
    ) or '<tr><td colspan="2">no violations</td></tr>'

    incidents = data.get("incidents") or []
    incident_rows = "".join(
        "<tr><td>{ts}</td><td>{trigger}</td><td>{what}</td>"
        "<td>{cause}</td><td>{ring}</td></tr>".format(
            ts=(
                f"{incident['ts']:.1f}s"
                if isinstance(incident.get("ts"), (int, float)) else "-"
            ),
            trigger=html.escape(str(incident.get("trigger", "?"))),
            what=html.escape(
                f"request {incident.get('request_id')} "
                f"({incident.get('tier', '?')})"
                if incident.get("trigger") == "deadline_violation"
                else f"{incident.get('burn_rate', 0.0):.1f}x budget"
                if incident.get("trigger") == "burn_rate"
                else "-"
            ),
            cause=html.escape(
                str(incident.get("dominant_cause") or "unattributed")
            ),
            ring=incident.get("num_events", 0),
        )
        for incident in incidents
    )
    incidents_html = (
        "<h2>Flight-recorder incidents</h2>"
        "<table><tr><th>when</th><th>trigger</th><th>what</th>"
        f"<th>dominant cause</th><th>ring events</th></tr>{incident_rows}"
        "</table>"
    ) if incidents else ""

    span = data["span"]
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>
body {{ font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 720px; color: #222; }}
h1 {{ font-size: 1.3em; }} h2 {{ font-size: 1.05em; margin-top: 1.6em; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{ text-align: left; padding: 4px 10px;
          border-bottom: 1px solid #ddd; }}
.kpi {{ display: inline-block; margin-right: 2.5em; }}
.kpi b {{ font-size: 1.5em; display: block; }}
</style></head><body>
<h1>{html.escape(title)}</h1>
<p>
<span class="kpi"><b>{data['goodput_pct']:.2f}%</b>goodput</span>
<span class="kpi"><b>{data['completed']}</b>completed</span>
<span class="kpi"><b>{data['violated']}</b>violated</span>
<span class="kpi"><b>{burn.max_burn_rate():.2f}x</b>peak burn</span>
<span class="kpi"><b>{_fmt_s(span[1] - span[0])}</b>trace span</span>
</p>
<h2>SLO burn rate (window {burn.window:.0f}s,
budget {burn.slo_budget:.1%})</h2>
{_svg_burn_timeline(burn)}
<h2>Latency attribution waterfall</h2>
{_svg_waterfall(attribution)}
{incidents_html}
<h2>Violations by dominant cause</h2>
<table><tr><th>cause</th><th>requests</th></tr>{cause_rows}</table>
<h2>Per-tier percentiles (p50 / p90 / p99)</h2>
<table><tr><th>tier</th><th>completed</th><th>violated</th>
<th>goodput</th><th>TTFT</th><th>TTLT</th></tr>{tier_rows}</table>
<p>max attribution conservation error:
{attribution.max_conservation_error():.2e}&nbsp;s
over {len(attribution.requests)} requests.</p>
</body></html>
"""
