"""Differential run forensics: request-aligned diffing of two runs.

The paper's central claim is comparative — QoServe beats siloed
baselines on deadline attainment — but every tool in :mod:`repro.obs`
so far looks at one run in isolation.  This module closes that gap:
given two recorded traces over the *same workload* (different
scheduler, engine core, fleet config or seed), it aligns requests by
id and answers three questions a single-run dashboard cannot:

* **Where did the runs first disagree?**  The earliest trace event at
  which the two streams diverge, with the shared pre-context ring
  (the flight-recorder pattern from :mod:`repro.obs.recorder`) and a
  few following events from each side.  For the arrays/objects
  engine-parity path this pinpoints the first diverging decision when
  byte-identity breaks; for two schedulers it shows the first choice
  they made differently.
* **Who got better, who got worse, and why?**  Per aligned request:
  deltas over the auditor's attribution phases
  (:data:`repro.obs.audit.PHASES`), TTFT/TTLT deltas, governing
  deadline-slack deltas, and violation *flips* (ok → violated =
  regressed, violated → ok = fixed) with the dominant cause charged
  on the violating side.
* **Does the explanation add up?**  Every change in goodput is
  attributed to exactly one cause (the dominant cause of the flip, or
  a ``missing_in_*`` bucket for requests only one run completed), so
  the per-cause deltas sum to the observed goodput gap *exactly* —
  the same conservation discipline :mod:`repro.obs.audit` applies
  within one run, lifted to the difference between two.

Aggregates reuse :mod:`repro.obs.sketch`: per-tier, per-phase delta
distributions are :class:`~repro.obs.sketch.QuantileSketch`\\ es, so
arena drivers can merge diffs across a load sweep without holding raw
samples, byte-identically at any ``--jobs`` count.

Everything here is a pure function of serialized event lists — no
imports from the engine or API layers — so it works on live
``ListSink`` buffers, ``--trace-out`` JSONL files and flight-recorder
incident windows alike.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.core.qos import DEFAULT_TIERS
from repro.obs.audit import (
    PHASES,
    AttributionReport,
    RequestAudit,
    audit_events,
    is_interactive,
)
from repro.obs.sketch import QuantileSketch

__all__ = [
    "ATTRIBUTION_TOL",
    "Divergence",
    "RequestDelta",
    "RunDiff",
    "diff_runs",
    "find_first_divergence",
    "render_diff_html",
    "render_diff_terminal",
]

#: Tolerance on the cause-delta/goodput-gap conservation identity.
#: The sum is integer arithmetic, so any residual at all is a bug;
#: the tolerance exists only to state the invariant in the same
#: 1e-9 currency as the audit's conservation bound.
ATTRIBUTION_TOL = 1e-9

#: Cause buckets for requests that only one run completed.
MISSING_IN_OTHER = "missing_in_other"
MISSING_IN_BASE = "missing_in_base"

#: Latency deltas sketched alongside the attribution phases.
_LATENCY_KEYS = ("ttft", "ttlt")

_TIER_SPECS = {spec.name: spec for spec in DEFAULT_TIERS}


def _canonical(event: Mapping[str, Any]) -> str:
    """Byte-stable identity of one serialized event."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def governing_slack(audit: RequestAudit) -> float | None:
    """Seconds of headroom against the request's governing SLO.

    Interactive tiers are governed by TTFT, non-interactive by TTLT
    (the same rule :func:`repro.obs.audit.is_interactive` applies to
    dominant-cause candidates).  Positive = met with room to spare,
    negative = missed by that much.  ``None`` when the tier is not one
    of the Table 3 presets (the trace does not record SLO targets).
    """
    spec = _TIER_SPECS.get(audit.tier)
    if spec is None:
        return None
    if is_interactive(audit.tier, audit.qos_class):
        if spec.ttft_slo is None:
            return None
        return spec.ttft_slo - (audit.first_token_time - audit.arrival_time)
    if spec.ttlt_slo is None:
        return None
    return spec.ttlt_slo - (audit.completion_time - audit.arrival_time)


@dataclass(frozen=True)
class Divergence:
    """The earliest event at which two runs disagree.

    ``index`` is the position in both streams (they are identical
    before it).  ``base_event`` / ``other_event`` is ``None`` when
    that stream simply ended — a length divergence.  ``context``
    holds the last few *shared* events before the split (the
    flight-recorder ring frozen at the trigger), and
    ``base_after`` / ``other_after`` the first few events each run
    emitted instead of the other's.
    """

    index: int
    base_event: Mapping[str, Any] | None
    other_event: Mapping[str, Any] | None
    context: tuple[Mapping[str, Any], ...] = ()
    base_after: tuple[Mapping[str, Any], ...] = ()
    other_after: tuple[Mapping[str, Any], ...] = ()

    @property
    def ts(self) -> float | None:
        """Timestamp of the divergence (base side, else other)."""
        for event in (self.base_event, self.other_event):
            if event is not None and isinstance(
                event.get("ts"), (int, float)
            ):
                return float(event["ts"])
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "ts": self.ts,
            "base_event": (
                dict(self.base_event)
                if self.base_event is not None else None
            ),
            "other_event": (
                dict(self.other_event)
                if self.other_event is not None else None
            ),
            "context": [dict(e) for e in self.context],
            "base_after": [dict(e) for e in self.base_after],
            "other_after": [dict(e) for e in self.other_after],
        }


def find_first_divergence(
    base_events: Iterable[Mapping[str, Any]],
    other_events: Iterable[Mapping[str, Any]],
    context: int = 8,
) -> Divergence | None:
    """First position where the two event streams disagree.

    Events compare by canonical JSON (sorted keys), so agreement means
    byte-identity after normalization — the same bar the engine-parity
    CI job holds the arrays engine to.  Returns ``None`` for fully
    identical streams.  A bounded ring (the flight-recorder pattern)
    keeps the shared pre-context without buffering either stream.
    """
    base_events = list(base_events)
    other_events = list(other_events)
    ring: deque[Mapping[str, Any]] = deque(maxlen=max(0, context))
    for index in range(max(len(base_events), len(other_events))):
        base = base_events[index] if index < len(base_events) else None
        other = other_events[index] if index < len(other_events) else None
        if (
            base is None
            or other is None
            or _canonical(base) != _canonical(other)
        ):
            after = max(0, context) // 2 + 1
            return Divergence(
                index=index,
                base_event=base,
                other_event=other,
                context=tuple(ring),
                base_after=tuple(
                    base_events[index + 1:index + 1 + after]
                ),
                other_after=tuple(
                    other_events[index + 1:index + 1 + after]
                ),
            )
        ring.append(base)
    return None


@dataclass
class RequestDelta:
    """One request's change between the two runs (other - base).

    ``status`` is ``"aligned"`` when both runs completed the request,
    else ``"only_base"`` / ``"only_other"``.  Delta fields are only
    populated for aligned requests.  ``goodput_delta`` is this
    request's contribution to the good-request count change (+1 the
    other run turned it good, -1 it lost a good request, 0 no change)
    and ``cause`` the single attribution bucket charged for it.
    """

    request_id: int
    tier: str
    status: str
    violated_base: bool | None = None
    violated_other: bool | None = None
    cause_base: str | None = None
    cause_other: str | None = None
    flip: str = ""
    phase_deltas: dict[str, float] = field(default_factory=dict)
    ttft_delta: float | None = None
    ttlt_delta: float | None = None
    slack_base: float | None = None
    slack_other: float | None = None
    goodput_delta: int = 0
    cause: str | None = None

    @property
    def slack_delta(self) -> float | None:
        if self.slack_base is None or self.slack_other is None:
            return None
        return self.slack_other - self.slack_base

    def to_dict(self) -> dict[str, Any]:
        return {
            "request_id": self.request_id,
            "tier": self.tier,
            "status": self.status,
            "violated_base": self.violated_base,
            "violated_other": self.violated_other,
            "cause_base": self.cause_base,
            "cause_other": self.cause_other,
            "flip": self.flip,
            "phase_deltas": {
                name: self.phase_deltas[name]
                for name in PHASES if name in self.phase_deltas
            },
            "ttft_delta": self.ttft_delta,
            "ttlt_delta": self.ttlt_delta,
            "slack_base": self.slack_base,
            "slack_other": self.slack_other,
            "slack_delta": self.slack_delta,
            "goodput_delta": self.goodput_delta,
            "cause": self.cause,
        }


def _run_goodput(report: AttributionReport) -> dict[str, Any]:
    completed = sum(report.completed.values())
    violated = sum(report.violated.values())
    good = completed - violated
    return {
        "completed": completed,
        "violated": violated,
        "good": good,
        "goodput_pct": 100.0 * good / completed if completed else 0.0,
    }


@dataclass
class RunDiff:
    """The full differential picture of two runs over one workload.

    Attributes:
        base_label / other_label: Names shown in every rendering.
        num_events: ``(base, other)`` event counts.
        first_divergence: Earliest disagreeing event, ``None`` when
            the streams are byte-identical.
        requests: Per-request deltas ordered by request id.
        cause_goodput_delta: Attribution bucket -> signed good-request
            delta (other - base); sums to ``goodput["good_delta"]``
            exactly (:data:`ATTRIBUTION_TOL` states the invariant).
        tier_cause_goodput_delta: The same, split per tier.
        phase_total_deltas: Tier -> phase -> summed seconds delta over
            aligned requests.
        phase_delta_sketches: Tier -> phase (plus ``ttft``/``ttlt``)
            -> :class:`~repro.obs.sketch.QuantileSketch` of the
            per-request deltas — mergeable across a sweep.
        goodput: Per-run goodput counts plus ``good_delta`` and
            ``goodput_gap_pct`` (other - base, percentage points).
        flips: Counts of ``regressed`` / ``fixed`` / ``cause_changed``.
    """

    base_label: str
    other_label: str
    num_events: tuple[int, int]
    first_divergence: Divergence | None
    requests: list[RequestDelta]
    cause_goodput_delta: dict[str, int]
    tier_cause_goodput_delta: dict[str, dict[str, int]]
    phase_total_deltas: dict[str, dict[str, float]]
    phase_delta_sketches: dict[str, dict[str, QuantileSketch]]
    goodput: dict[str, Any]
    flips: dict[str, int]
    aligned: int
    only_base: list[int]
    only_other: list[int]

    @property
    def identical(self) -> bool:
        """True iff the two event streams are byte-identical."""
        return (
            self.first_divergence is None
            and self.num_events[0] == self.num_events[1]
        )

    @property
    def attribution_residual(self) -> float:
        """|sum of cause deltas - observed good-request delta|.

        Zero by construction; exported so reports (and the acceptance
        test) can show the conservation identity holding.
        """
        return abs(
            sum(self.cause_goodput_delta.values())
            - self.goodput["good_delta"]
        )

    def top_cause(self) -> tuple[str, float] | None:
        """The bucket explaining most of the goodput gap.

        Returns ``(cause, share)`` where ``share`` is the fraction of
        the summed |cause deltas| carried by that bucket, or ``None``
        when nothing changed.  Ties break on bucket name so reruns
        agree byte-for-byte.
        """
        weights = {
            cause: abs(delta)
            for cause, delta in self.cause_goodput_delta.items()
            if delta != 0
        }
        total = sum(weights.values())
        if not total:
            return None
        cause = max(sorted(weights), key=lambda c: weights[c])
        return cause, weights[cause] / total

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-safe form (keys sorted, stable order)."""
        return {
            "base_label": self.base_label,
            "other_label": self.other_label,
            "identical": self.identical,
            "events": {
                "base": self.num_events[0],
                "other": self.num_events[1],
            },
            "first_divergence": (
                self.first_divergence.to_dict()
                if self.first_divergence is not None else None
            ),
            "requests": {
                "aligned": self.aligned,
                "only_base": list(self.only_base),
                "only_other": list(self.only_other),
            },
            "goodput": dict(self.goodput),
            "cause_goodput_delta": {
                cause: self.cause_goodput_delta[cause]
                for cause in sorted(self.cause_goodput_delta)
            },
            "attribution_residual": self.attribution_residual,
            "tier_cause_goodput_delta": {
                tier: {
                    cause: deltas[cause] for cause in sorted(deltas)
                }
                for tier, deltas in sorted(
                    self.tier_cause_goodput_delta.items()
                )
            },
            "flips": {
                name: self.flips.get(name, 0)
                for name in ("regressed", "fixed", "cause_changed")
            },
            "phase_total_deltas": {
                tier: {name: totals.get(name, 0.0) for name in PHASES}
                for tier, totals in sorted(
                    self.phase_total_deltas.items()
                )
            },
            "phase_delta_sketches": {
                tier: {
                    name: sketches[name].to_dict()
                    for name in sorted(sketches)
                }
                for tier, sketches in sorted(
                    self.phase_delta_sketches.items()
                )
            },
            "request_deltas": [
                delta.to_dict() for delta in self.requests
            ],
        }


def diff_runs(
    base_events: Iterable[Mapping[str, Any]],
    other_events: Iterable[Mapping[str, Any]],
    *,
    base_label: str = "base",
    other_label: str = "other",
    context: int = 8,
) -> RunDiff:
    """Diff two recorded runs of the same workload.

    Args:
        base_events / other_events: Serialized trace events (the
            output of :func:`repro.obs.trace.read_jsonl_trace`, a
            ``ListSink`` buffer, or a flight-recorder incident's
            ``events``), in recorded order.
        base_label / other_label: Display names for the two runs.
        context: Shared pre-context events kept around the first
            divergence (flight-recorder ring size).

    The result is a pure deterministic function of the inputs:
    serializing ``diff_runs(a, b).to_dict()`` with sorted keys is
    byte-identical across reruns and process counts.
    """
    base_events = list(base_events)
    other_events = list(other_events)
    divergence = find_first_divergence(
        base_events, other_events, context=context
    )
    base_report = audit_events(base_events)
    other_report = audit_events(other_events)
    base_by_id = {a.request_id: a for a in base_report.requests}
    other_by_id = {a.request_id: a for a in other_report.requests}

    only_base = sorted(set(base_by_id) - set(other_by_id))
    only_other = sorted(set(other_by_id) - set(base_by_id))
    aligned_ids = sorted(set(base_by_id) & set(other_by_id))

    requests: list[RequestDelta] = []
    cause_deltas: dict[str, int] = {}
    tier_cause_deltas: dict[str, dict[str, int]] = {}
    phase_totals: dict[str, dict[str, float]] = {}
    sketches: dict[str, dict[str, QuantileSketch]] = {}
    flips = {"regressed": 0, "fixed": 0, "cause_changed": 0}

    def charge(tier: str, cause: str, delta: int) -> None:
        cause_deltas[cause] = cause_deltas.get(cause, 0) + delta
        per_tier = tier_cause_deltas.setdefault(tier, {})
        per_tier[cause] = per_tier.get(cause, 0) + delta

    def sketch(tier: str, name: str, value: float) -> None:
        sketches.setdefault(tier, {}).setdefault(
            name, QuantileSketch()
        ).add(value)

    for request_id in aligned_ids:
        base = base_by_id[request_id]
        other = other_by_id[request_id]
        delta = RequestDelta(
            request_id=request_id,
            tier=base.tier,
            status="aligned",
            violated_base=base.violated,
            violated_other=other.violated,
            cause_base=base.dominant_cause,
            cause_other=other.dominant_cause,
            slack_base=governing_slack(base),
            slack_other=governing_slack(other),
        )
        delta.phase_deltas = {
            name: other.phases[name] - base.phases[name]
            for name in PHASES
        }
        delta.ttft_delta = (
            (other.first_token_time - other.arrival_time)
            - (base.first_token_time - base.arrival_time)
        )
        delta.ttlt_delta = (
            (other.completion_time - other.arrival_time)
            - (base.completion_time - base.arrival_time)
        )
        if base.violated and not other.violated:
            delta.flip = "fixed"
            delta.goodput_delta = 1
            delta.cause = base.dominant_cause
            flips["fixed"] += 1
        elif other.violated and not base.violated:
            delta.flip = "regressed"
            delta.goodput_delta = -1
            delta.cause = other.dominant_cause
            flips["regressed"] += 1
        elif (
            base.violated
            and other.violated
            and base.dominant_cause != other.dominant_cause
        ):
            delta.flip = "cause_changed"
            flips["cause_changed"] += 1
        if delta.cause is not None:
            charge(base.tier, delta.cause, delta.goodput_delta)
        totals = phase_totals.setdefault(
            base.tier, {name: 0.0 for name in PHASES}
        )
        for name in PHASES:
            totals[name] += delta.phase_deltas[name]
            sketch(base.tier, name, delta.phase_deltas[name])
        sketch(base.tier, "ttft", delta.ttft_delta)
        sketch(base.tier, "ttlt", delta.ttlt_delta)
        requests.append(delta)

    for request_id in only_base:
        base = base_by_id[request_id]
        delta = RequestDelta(
            request_id=request_id,
            tier=base.tier,
            status="only_base",
            violated_base=base.violated,
            cause_base=base.dominant_cause,
        )
        if not base.violated:
            delta.goodput_delta = -1
            delta.cause = MISSING_IN_OTHER
            charge(base.tier, MISSING_IN_OTHER, -1)
        requests.append(delta)

    for request_id in only_other:
        other = other_by_id[request_id]
        delta = RequestDelta(
            request_id=request_id,
            tier=other.tier,
            status="only_other",
            violated_other=other.violated,
            cause_other=other.dominant_cause,
        )
        if not other.violated:
            delta.goodput_delta = 1
            delta.cause = MISSING_IN_BASE
            charge(other.tier, MISSING_IN_BASE, 1)
        requests.append(delta)

    requests.sort(key=lambda d: d.request_id)

    base_goodput = _run_goodput(base_report)
    other_goodput = _run_goodput(other_report)
    goodput = {
        "base": base_goodput,
        "other": other_goodput,
        "good_delta": other_goodput["good"] - base_goodput["good"],
        "goodput_gap_pct": (
            other_goodput["goodput_pct"] - base_goodput["goodput_pct"]
        ),
    }
    return RunDiff(
        base_label=base_label,
        other_label=other_label,
        num_events=(len(base_events), len(other_events)),
        first_divergence=divergence,
        requests=requests,
        cause_goodput_delta=cause_deltas,
        tier_cause_goodput_delta=tier_cause_deltas,
        phase_total_deltas=phase_totals,
        phase_delta_sketches=sketches,
        goodput=goodput,
        flips=flips,
        aligned=len(aligned_ids),
        only_base=only_base,
        only_other=only_other,
    )


# --- terminal rendering ------------------------------------------------


def _fmt_delta_s(value: float | None) -> str:
    """Signed humanized seconds ('-' for unknown)."""
    if value is None or value != value:
        return "-"
    sign = "+" if value >= 0 else "-"
    magnitude = abs(value)
    if magnitude < 1.0:
        return f"{sign}{magnitude * 1e3:.0f}ms"
    if magnitude < 120.0:
        return f"{sign}{magnitude:.2f}s"
    return f"{sign}{magnitude / 60.0:.1f}min"


def _summarize_event(event: Mapping[str, Any] | None) -> str:
    if event is None:
        return "(stream ended)"
    parts = [f"{event.get('kind', '?')} ts={event.get('ts')}"]
    for key in ("request_id", "replica_id", "iteration", "tier"):
        if key in event:
            parts.append(f"{key}={event[key]}")
    return " ".join(parts)


def render_diff_terminal(diff: RunDiff, top: int = 5) -> str:
    """Plain-text differential report (the ``repro diff`` stdout)."""
    base, other = diff.base_label, diff.other_label
    goodput = diff.goodput
    lines = [
        f"== run diff: {base} vs {other} ==",
        f"events: {diff.num_events[0]} vs {diff.num_events[1]}  "
        f"aligned requests: {diff.aligned}  "
        f"only-{base}: {len(diff.only_base)}  "
        f"only-{other}: {len(diff.only_other)}",
        f"goodput: {goodput['base']['goodput_pct']:.2f}% -> "
        f"{goodput['other']['goodput_pct']:.2f}% "
        f"({goodput['goodput_gap_pct']:+.2f} pp, "
        f"{goodput['good_delta']:+d} good requests)",
        f"flips: {diff.flips.get('regressed', 0)} regressed, "
        f"{diff.flips.get('fixed', 0)} fixed, "
        f"{diff.flips.get('cause_changed', 0)} cause-changed",
    ]
    if diff.identical:
        lines += ["", "runs are byte-identical: empty delta"]
        return "\n".join(lines) + "\n"

    divergence = diff.first_divergence
    if divergence is not None:
        lines += ["", f"first divergence at event #{divergence.index}"
                      + (f" (t={divergence.ts:.3f}s)"
                         if divergence.ts is not None else "")]
        for event in divergence.context:
            lines.append(f"    = {_summarize_event(event)}")
        lines.append(f"  {base:>6}> {_summarize_event(divergence.base_event)}")
        lines.append(
            f"  {other:>6}> {_summarize_event(divergence.other_event)}"
        )

    lines += ["", f"goodput change by cause ({other} - {base}):"]
    if any(diff.cause_goodput_delta.values()):
        for cause in sorted(
            diff.cause_goodput_delta,
            key=lambda c: (-abs(diff.cause_goodput_delta[c]), c),
        ):
            delta = diff.cause_goodput_delta[cause]
            if delta == 0:
                continue
            lines.append(f"  {cause:<20}{delta:>+6d}")
        lines.append(
            f"  {'total':<20}{goodput['good_delta']:>+6d}  "
            f"(residual {diff.attribution_residual:.1e})"
        )
    else:
        lines.append("  no goodput change")

    lines += ["", f"where the time moved ({other} - {base}, summed):"]
    for tier in sorted(diff.phase_total_deltas):
        totals = diff.phase_total_deltas[tier]
        moved = ", ".join(
            f"{name} {_fmt_delta_s(totals[name])}"
            for name in PHASES if abs(totals[name]) > 1e-12
        )
        lines.append(f"  {tier:<6}{moved or 'unchanged'}")

    movers = [
        d for d in diff.requests
        if d.status == "aligned" and d.ttlt_delta is not None
    ]
    movers.sort(key=lambda d: (-abs(d.ttlt_delta), d.request_id))
    if movers and top > 0:
        lines += ["", f"biggest per-request TTLT moves (top {top}):"]
        lines.append(
            f"  {'id':>6} {'tier':<5} {'ttlt':>9} {'ttft':>9} "
            f"{'slack':>9}  flip"
        )
        for delta in movers[:top]:
            lines.append(
                f"  {delta.request_id:>6} {delta.tier:<5} "
                f"{_fmt_delta_s(delta.ttlt_delta):>9} "
                f"{_fmt_delta_s(delta.ttft_delta):>9} "
                f"{_fmt_delta_s(delta.slack_delta):>9}  "
                f"{delta.flip or '-'}"
            )
    return "\n".join(lines) + "\n"


# --- HTML rendering ----------------------------------------------------


def _svg_phase_deltas(diff: RunDiff, width: int = 640,
                      row_h: int = 26) -> str:
    """Signed per-tier phase-delta bars (time moved, not time spent)."""
    import html as _html

    tiers = sorted(diff.phase_total_deltas)
    if not tiers:
        return "<p>no aligned requests</p>"
    from repro.obs.dashboard import _PHASE_COLORS

    peak = max(
        (
            abs(value)
            for totals in diff.phase_total_deltas.values()
            for value in totals.values()
        ),
        default=0.0,
    )
    if peak <= 0.0:
        return "<p>no phase movement</p>"
    pad = 56
    plot_w = width - pad - 12
    half = plot_w / 2.0
    rows = [
        (tier, name)
        for tier in tiers
        for name in PHASES
        if abs(diff.phase_total_deltas[tier].get(name, 0.0)) > 1e-12
    ]
    height = row_h * len(rows) + 16
    mid = pad + half
    parts = [
        f'<svg viewBox="0 0 {width} {height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img" '
        f'aria-label="Phase-delta bars by tier">',
        f'<line x1="{mid:.1f}" y1="0" x2="{mid:.1f}" '
        f'y2="{height}" stroke="#999"/>',
    ]
    for i, (tier, name) in enumerate(rows):
        value = diff.phase_total_deltas[tier][name]
        y = 4 + i * row_h
        w = half * abs(value) / peak
        x = mid if value >= 0 else mid - w
        parts.append(
            f'<text x="{pad - 8}" y="{y + row_h / 2:.1f}" '
            f'text-anchor="end" font-size="11">'
            f"{_html.escape(tier)}·{_html.escape(name.split('_')[0])}"
            "</text>"
            f'<rect x="{x:.1f}" y="{y}" width="{max(w, 1.0):.1f}" '
            f'height="{row_h - 8}" fill="{_PHASE_COLORS[name]}">'
            f"<title>{tier} {name}: {value:+.3f}s</title></rect>"
        )
    parts.append("</svg>")
    return "".join(parts)


def render_diff_html(
    diff: RunDiff, title: str = "repro diff"
) -> str:
    """Single-file HTML diff report (inline SVG, no scripts)."""
    import html as _html

    goodput = diff.goodput
    cause_rows = "".join(
        f"<tr><td>{_html.escape(cause)}</td>"
        f"<td>{diff.cause_goodput_delta[cause]:+d}</td></tr>"
        for cause in sorted(
            diff.cause_goodput_delta,
            key=lambda c: (-abs(diff.cause_goodput_delta[c]), c),
        )
        if diff.cause_goodput_delta[cause] != 0
    ) or '<tr><td colspan="2">no goodput change</td></tr>'

    divergence = diff.first_divergence
    if divergence is None:
        divergence_html = (
            "<p>the two event streams are <b>byte-identical</b>.</p>"
        )
    else:
        context_rows = "".join(
            f"<tr><td>=</td><td><code>"
            f"{_html.escape(_summarize_event(event))}</code></td></tr>"
            for event in divergence.context
        )
        divergence_html = (
            f"<p>first divergence at event <b>#{divergence.index}</b>"
            + (f" (t={divergence.ts:.3f}s)"
               if divergence.ts is not None else "")
            + ":</p><table>"
            + context_rows
            + f"<tr><td>{_html.escape(diff.base_label)}</td><td><code>"
            + _html.escape(_summarize_event(divergence.base_event))
            + f"</code></td></tr>"
            + f"<tr><td>{_html.escape(diff.other_label)}</td><td><code>"
            + _html.escape(_summarize_event(divergence.other_event))
            + "</code></td></tr></table>"
        )

    flip_rows = "".join(
        f"<tr><td>{delta.request_id}</td>"
        f"<td>{_html.escape(delta.tier)}</td>"
        f"<td>{_html.escape(delta.flip)}</td>"
        f"<td>{_html.escape(delta.cause or '-')}</td>"
        f"<td>{_fmt_delta_s(delta.ttlt_delta)}</td>"
        f"<td>{_fmt_delta_s(delta.slack_delta)}</td></tr>"
        for delta in diff.requests if delta.flip
    ) or '<tr><td colspan="6">no violation flips</td></tr>'

    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{_html.escape(title)}</title>
<style>
body {{ font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 720px; color: #222; }}
h1 {{ font-size: 1.3em; }} h2 {{ font-size: 1.05em; margin-top: 1.6em; }}
table {{ border-collapse: collapse; width: 100%; }}
th, td {{ text-align: left; padding: 4px 10px;
          border-bottom: 1px solid #ddd; }}
code {{ font-size: 12px; }}
.kpi {{ display: inline-block; margin-right: 2.5em; }}
.kpi b {{ font-size: 1.5em; display: block; }}
</style></head><body>
<h1>{_html.escape(title)}</h1>
<p>{_html.escape(diff.base_label)} &rarr;
{_html.escape(diff.other_label)}</p>
<p>
<span class="kpi"><b>{goodput['goodput_gap_pct']:+.2f}pp</b>goodput gap</span>
<span class="kpi"><b>{goodput['good_delta']:+d}</b>good requests</span>
<span class="kpi"><b>{diff.flips.get('regressed', 0)}</b>regressed</span>
<span class="kpi"><b>{diff.flips.get('fixed', 0)}</b>fixed</span>
<span class="kpi"><b>{diff.aligned}</b>aligned</span>
</p>
<h2>First divergence</h2>
{divergence_html}
<h2>Goodput change by cause
({_html.escape(diff.other_label)} - {_html.escape(diff.base_label)})</h2>
<table><tr><th>cause</th><th>&Delta; good requests</th></tr>
{cause_rows}</table>
<p>cause deltas sum to the observed gap exactly
(residual {diff.attribution_residual:.1e} &le; {ATTRIBUTION_TOL:.0e}).</p>
<h2>Where the time moved</h2>
{_svg_phase_deltas(diff)}
<h2>Violation flips</h2>
<table><tr><th>request</th><th>tier</th><th>flip</th><th>cause</th>
<th>&Delta;TTLT</th><th>&Delta;slack</th></tr>{flip_rows}</table>
</body></html>
"""
