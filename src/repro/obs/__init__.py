"""Iteration-level observability: tracing, metrics and profiling.

The subsystem has four legs (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — a zero-dependency metrics registry
  (counters / gauges / histograms, labeled series) with Prometheus-text
  and JSON exporters;
* :mod:`repro.obs.events` / :mod:`repro.obs.trace` — typed trace
  events with schema validation, recorded through bounded-memory ring
  or streaming-JSONL sinks;
* :mod:`repro.obs.chrome` — a Chrome trace-event exporter
  (``chrome://tracing`` / Perfetto): replicas as processes, batch
  slots as tracks;
* :mod:`repro.obs.timing` — the ``obs.timed`` wall-clock profiler for
  scheduler hot paths.

Everything hangs off the :class:`Observer` protocol, whose no-op
default (:data:`NULL_OBSERVER`) keeps instrumentation free when
disabled and guarantees tracing never perturbs scheduling.
"""

from repro.obs.chrome import (
    per_request_timeline,
    render_timeline,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.events import (
    EVENT_TYPES,
    ChunkSized,
    DecodeEvicted,
    IterationScheduled,
    KVCacheSnapshot,
    Preempted,
    Relegated,
    ReplicaCrashed,
    ReplicaRecovered,
    ReplicaSlowdown,
    RequestCancelled,
    RequestCompleted,
    RequestRetried,
    RequestShed,
    TraceEvent,
    TraceSchemaError,
    validate_event,
)
from repro.obs.metrics import (
    DEFAULT_CHUNK_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    bucket_counts,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    Observer,
    TracingObserver,
    default_observer,
    get_default_observer,
    set_default_observer,
)
from repro.obs.timing import PROFILER, WallClockProfiler, timed
from repro.obs.trace import (
    JSONLSink,
    ListSink,
    RingSink,
    TraceRecorder,
    read_jsonl_trace,
)

__all__ = [
    "EVENT_TYPES",
    "ChunkSized",
    "DecodeEvicted",
    "IterationScheduled",
    "KVCacheSnapshot",
    "Preempted",
    "Relegated",
    "ReplicaCrashed",
    "ReplicaRecovered",
    "ReplicaSlowdown",
    "RequestCancelled",
    "RequestCompleted",
    "RequestRetried",
    "RequestShed",
    "TraceEvent",
    "TraceSchemaError",
    "validate_event",
    "DEFAULT_CHUNK_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "bucket_counts",
    "NULL_OBSERVER",
    "Observer",
    "TracingObserver",
    "default_observer",
    "get_default_observer",
    "set_default_observer",
    "PROFILER",
    "WallClockProfiler",
    "timed",
    "JSONLSink",
    "ListSink",
    "RingSink",
    "TraceRecorder",
    "read_jsonl_trace",
    "per_request_timeline",
    "render_timeline",
    "to_chrome_trace",
    "write_chrome_trace",
]
