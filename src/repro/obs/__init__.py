"""Iteration-level observability: tracing, metrics and forensics.

The subsystem's legs (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — a zero-dependency metrics registry
  (counters / gauges / histograms / quantile sketches, labeled series)
  with Prometheus-text and JSON exporters;
* :mod:`repro.obs.events` / :mod:`repro.obs.trace` — typed trace
  events with schema validation, recorded through bounded-memory ring
  or streaming-JSONL sinks;
* :mod:`repro.obs.sketch` — mergeable DDSketch-style quantile sketches
  and windowed SLO burn-rate counters;
* :mod:`repro.obs.audit` — per-request latency attribution (phase
  decomposition + dominant-cause classification of SLO violations);
* :mod:`repro.obs.spans` — request-scoped causal span trees over the
  attribution segments, exported as OTLP/JSON and Chrome-trace flows;
* :mod:`repro.obs.live` — live telemetry frames for ``/v1/live`` and
  the ``repro top`` dashboard;
* :mod:`repro.obs.recorder` — the SLO flight recorder (always-on
  bounded ring that dumps incident windows around violations);
* :mod:`repro.obs.dashboard` — the ``repro dashboard`` report
  (terminal summary + single-file HTML with inline SVG);
* :mod:`repro.obs.diff` — differential run forensics (``repro diff``):
  request-aligned deltas over the attribution phases, cause-delta
  goodput accounting that sums exactly to the observed gap, and
  first-divergence detection with flight-recorder-style context;
* :mod:`repro.obs.chrome` — a Chrome trace-event exporter
  (``chrome://tracing`` / Perfetto): replicas as processes, batch
  slots as tracks;
* :mod:`repro.obs.timing` — the ``obs.timed`` wall-clock profiler for
  scheduler hot paths.

Everything hangs off the :class:`Observer` protocol, whose no-op
default (:data:`NULL_OBSERVER`) keeps instrumentation free when
disabled and guarantees tracing never perturbs scheduling.
"""

from repro.obs.audit import (
    PHASES,
    AttributionReport,
    RequestAudit,
    audit_events,
    audit_requests,
)
from repro.obs.chrome import (
    per_request_timeline,
    render_timeline,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.dashboard import (
    build_dashboard_data,
    render_html,
    render_terminal,
)
from repro.obs.diff import (
    Divergence,
    RequestDelta,
    RunDiff,
    diff_runs,
    find_first_divergence,
    render_diff_html,
    render_diff_terminal,
)
from repro.obs.events import (
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    ChunkSized,
    DecodeEvicted,
    FaultSkipped,
    FleetResized,
    GatewayAdmitted,
    GatewayShed,
    IterationScheduled,
    KVCacheSnapshot,
    Preempted,
    Relegated,
    RelegationServed,
    ReplicaCrashed,
    ReplicaRecovered,
    ReplicaSlowdown,
    RequestCancelled,
    RequestCompleted,
    RequestRetried,
    RequestShed,
    SpanEnd,
    SpanStart,
    TraceEvent,
    TraceSchemaError,
    validate_event,
)
from repro.obs.live import (
    build_live_snapshot,
    render_incidents,
    render_top,
)
from repro.obs.metrics import (
    DEFAULT_CHUNK_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    bucket_counts,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    MultiObserver,
    Observer,
    TracingObserver,
    default_observer,
    get_default_observer,
    set_default_observer,
)
from repro.obs.recorder import (
    FlightRecorder,
    read_incidents,
    record_incidents,
)
from repro.obs.sketch import (
    BurnRateTracker,
    QuantileSketch,
    merge_sketches,
)
from repro.obs.spans import (
    LIFECYCLE_STAGES,
    Span,
    build_span_trees,
    conservation_error,
    phase_durations,
    reconciliation_error,
    spans_to_chrome,
    spans_to_otlp,
    write_spans,
)
from repro.obs.timing import PROFILER, WallClockProfiler, timed
from repro.obs.trace import (
    JSONLSink,
    ListSink,
    RingSink,
    TraceRecorder,
    read_jsonl_trace,
)

__all__ = [
    "EVENT_TYPES",
    "TRACE_SCHEMA_VERSION",
    "PHASES",
    "AttributionReport",
    "RequestAudit",
    "audit_events",
    "audit_requests",
    "BurnRateTracker",
    "QuantileSketch",
    "merge_sketches",
    "build_dashboard_data",
    "render_html",
    "render_terminal",
    "Divergence",
    "RequestDelta",
    "RunDiff",
    "diff_runs",
    "find_first_divergence",
    "render_diff_html",
    "render_diff_terminal",
    "MultiObserver",
    "RelegationServed",
    "ChunkSized",
    "DecodeEvicted",
    "FaultSkipped",
    "FleetResized",
    "GatewayAdmitted",
    "GatewayShed",
    "IterationScheduled",
    "KVCacheSnapshot",
    "Preempted",
    "Relegated",
    "ReplicaCrashed",
    "ReplicaRecovered",
    "ReplicaSlowdown",
    "RequestCancelled",
    "RequestCompleted",
    "RequestRetried",
    "RequestShed",
    "SpanEnd",
    "SpanStart",
    "TraceEvent",
    "TraceSchemaError",
    "validate_event",
    "LIFECYCLE_STAGES",
    "Span",
    "build_span_trees",
    "conservation_error",
    "phase_durations",
    "reconciliation_error",
    "spans_to_chrome",
    "spans_to_otlp",
    "write_spans",
    "build_live_snapshot",
    "render_incidents",
    "render_top",
    "FlightRecorder",
    "read_incidents",
    "record_incidents",
    "DEFAULT_CHUNK_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "bucket_counts",
    "NULL_OBSERVER",
    "Observer",
    "TracingObserver",
    "default_observer",
    "get_default_observer",
    "set_default_observer",
    "PROFILER",
    "WallClockProfiler",
    "timed",
    "JSONLSink",
    "ListSink",
    "RingSink",
    "TraceRecorder",
    "read_jsonl_trace",
    "per_request_timeline",
    "render_timeline",
    "to_chrome_trace",
    "write_chrome_trace",
]
