"""Trace recording: bounded-memory and streaming-JSONL sinks.

A :class:`TraceRecorder` fans serialized events out to any number of
sinks.  The two built-ins cover the common deployments:

* :class:`RingSink` keeps the last N events in memory (flight-recorder
  mode — always on, negligible cost, inspect after an anomaly);
* :class:`JSONLSink` streams every event to disk as one JSON object
  per line, the format ``repro trace`` converts to Chrome trace JSON.

Sinks receive plain dicts (the output of
:meth:`~repro.obs.events.TraceEvent.to_dict`), never live event or
request objects, so a slow sink can never alias mutable engine state.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from pathlib import Path
from typing import Any, Callable, Iterable, Protocol

from repro.obs.events import TraceEvent, validate_event


class TraceSink(Protocol):
    """Anything that can accept serialized trace events."""

    def append(self, payload: dict[str, Any]) -> None: ...

    def close(self) -> None: ...


class RingSink:
    """Keep the most recent ``capacity`` events; count what was shed.

    ``on_drop`` (if given) fires once per event shed from the front of
    the ring — :class:`~repro.obs.observer.TracingObserver` wires it to
    the ``repro_trace_events_dropped_total`` counter so bounded-memory
    tracing is never *silently* lossy.
    """

    def __init__(
        self,
        capacity: int = 4096,
        on_drop: Callable[[], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self.appended = 0
        self.on_drop = on_drop

    def append(self, payload: dict[str, Any]) -> None:
        shedding = len(self._ring) == self.capacity
        self._ring.append(payload)
        self.appended += 1
        if shedding and self.on_drop is not None:
            self.on_drop()

    @property
    def dropped(self) -> int:
        """Events shed from the front of the ring."""
        return self.appended - len(self._ring)

    @property
    def events(self) -> list[dict[str, Any]]:
        return list(self._ring)

    def close(self) -> None:  # nothing buffered outside the ring
        pass


class ListSink:
    """Unbounded in-memory sink (tests and short runs)."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def append(self, payload: dict[str, Any]) -> None:
        self.events.append(payload)

    def close(self) -> None:
        pass


class JSONLSink:
    """Stream events to ``path``, one compact JSON object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = self.path.open("w")
        self.written = 0

    def append(self, payload: dict[str, Any]) -> None:
        self._file.write(json.dumps(payload, separators=(",", ":")))
        self._file.write("\n")
        self.written += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceRecorder:
    """Serializes events once and fans them out to every sink."""

    def __init__(self, sinks: Iterable[TraceSink] = ()) -> None:
        self.sinks: list[TraceSink] = list(sinks)
        self.counts: Counter[str] = Counter()

    def add_sink(self, sink: TraceSink) -> None:
        self.sinks.append(sink)

    def emit(self, event: TraceEvent) -> None:
        payload = event.to_dict()
        self.counts[payload["kind"]] += 1
        for sink in self.sinks:
            sink.append(payload)

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_jsonl_trace(
    path: str | Path, validate: bool = False
) -> list[dict[str, Any]]:
    """Load a JSONL trace back into event dicts.

    Args:
        path: File written by :class:`JSONLSink`.
        validate: Check every event against the schema
            (:func:`~repro.obs.events.validate_event`); raises
            :class:`~repro.obs.events.TraceSchemaError` with the
            offending line number on mismatch.
    """
    events: list[dict[str, Any]] = []
    with Path(path).open() as source:
        for lineno, line in enumerate(source, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {error}"
                ) from error
            if validate:
                try:
                    validate_event(payload)
                except Exception as error:
                    raise type(error)(
                        f"{path}:{lineno}: {error}"
                    ) from error
            events.append(payload)
    return events
