"""Chrome trace-event (``chrome://tracing`` / Perfetto) export.

Converts a recorded event stream into the Trace Event Format that
Perfetto and ``chrome://tracing`` load directly:

* each **replica** becomes a process (``pid``), named via metadata;
* track 0 of every replica holds the **iteration spans** — one
  complete (``ph: "X"``) event per engine batch, with the batch shape
  in ``args``;
* every **request lifetime** (first scheduling to completion) becomes
  a span on a **batch-slot track**: slots are allocated greedily and
  reused once free, so the track count equals the peak concurrency —
  visually, the replica's occupancy;
* relegations, preemptions, decode evictions and every fault-layer
  event (crashes, recoveries, slowdowns, retries, sheds,
  cancellations) render as instant (``ph: "i"``) markers;
* KV-cache occupancy renders as a counter (``ph: "C"``) series.

Timestamps are simulated seconds scaled to microseconds, the unit the
Trace Event Format mandates.
"""

from __future__ import annotations

import heapq
import json
from pathlib import Path
from typing import Any, Iterable

_US = 1e6  # seconds -> trace-format microseconds

#: Event kinds rendered as instant (``ph: "i"``) markers -> category.
#: Fault-layer events (crash/recover/slowdown/retry/shed/cancel) get
#: their own category so Perfetto can filter the chaos timeline; a
#: request_shed event carries no replica and lands on pid 0.
_INSTANT_KINDS = {
    "preempted": "scheduler",
    "decode_evicted": "scheduler",
    "relegated": "scheduler",
    "relegation_served": "scheduler",
    "replica_crashed": "fault",
    "replica_recovered": "fault",
    "replica_slowdown": "fault",
    "request_retried": "fault",
    "request_shed": "fault",
    "request_cancelled": "fault",
}


def _meta(pid: int, tid: int | None, name: str, what: str) -> dict:
    event: dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "name": what,
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def to_chrome_trace(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Build a Chrome trace JSON object from serialized events."""
    events = list(events)
    trace_events: list[dict[str, Any]] = []
    replicas: set[int] = set()

    # --- iteration spans and instants ---------------------------------
    for ev in events:
        kind = ev.get("kind")
        if kind == "iteration_scheduled":
            pid = int(ev["replica_id"])
            replicas.add(pid)
            trace_events.append({
                "name": "iteration",
                "cat": "engine",
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "ts": ev["ts"] * _US,
                "dur": max(0.0, (ev["dur"] or 0.0)) * _US,
                "args": {
                    "iteration": ev["iteration"],
                    "prefill_tokens": ev["prefill_tokens"],
                    "num_prefills": ev["num_prefills"],
                    "num_decodes": ev["num_decodes"],
                    "decode_context_tokens": ev["decode_context_tokens"],
                },
            })
        elif kind == "kv_cache_snapshot":
            pid = int(ev["replica_id"])
            replicas.add(pid)
            trace_events.append({
                "name": "kv_used_blocks",
                "cat": "kv",
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": ev["ts"] * _US,
                "args": {"used_blocks": ev["used_blocks"]},
            })
        elif kind in _INSTANT_KINDS:
            pid = int(ev.get("replica_id", 0))
            replicas.add(pid)
            trace_events.append({
                "name": kind,
                "cat": _INSTANT_KINDS[kind],
                "ph": "i",
                "s": "p",  # process-scoped instant
                "pid": pid,
                "tid": 0,
                "ts": ev["ts"] * _US,
                "args": {
                    k: v for k, v in ev.items()
                    if k not in ("kind", "ts", "replica_id")
                },
            })

    # --- request lifetimes on batch-slot tracks ------------------------
    slot_count: dict[int, int] = {}
    spans = sorted(
        (ev for ev in events if ev.get("kind") == "request_completed"),
        key=lambda ev: (
            ev["scheduled_first_time"]
            if ev["scheduled_first_time"] is not None
            else ev["arrival_time"],
            ev["request_id"],
        ),
    )
    # Greedy slot allocation per replica: reuse the slot that frees
    # earliest; open a new one only when every slot is still busy.
    free_slots: dict[int, list[tuple[float, int]]] = {}
    for ev in spans:
        pid = int(ev["replica_id"])
        replicas.add(pid)
        start = (
            ev["scheduled_first_time"]
            if ev["scheduled_first_time"] is not None
            else ev["arrival_time"]
        )
        end = ev["completion_time"]
        heap = free_slots.setdefault(pid, [])
        if heap and heap[0][0] <= start:
            _, slot = heapq.heappop(heap)
        else:
            slot = slot_count.get(pid, 0) + 1  # tid 0 = iterations
            slot_count[pid] = slot
        heapq.heappush(heap, (end, slot))
        trace_events.append({
            "name": f"req {ev['request_id']} [{ev['tier']}]",
            "cat": "request",
            "ph": "X",
            "pid": pid,
            "tid": slot,
            "ts": start * _US,
            "dur": max(0.0, end - start) * _US,
            "args": {
                "request_id": ev["request_id"],
                "tier": ev["tier"],
                "arrival_time": ev["arrival_time"],
                "first_token_time": ev["first_token_time"],
                "relegated": ev["relegated"],
                "violated": ev["violated"],
                "evictions": ev["evictions"],
            },
        })

    # --- metadata ------------------------------------------------------
    for pid in sorted(replicas):
        trace_events.append(
            _meta(pid, None, f"replica {pid}", "process_name")
        )
        trace_events.append(
            _meta(pid, 0, "iterations", "thread_name")
        )
        for slot in range(1, slot_count.get(pid, 0) + 1):
            trace_events.append(
                _meta(pid, slot, f"batch slot {slot}", "thread_name")
            )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "time_unit": "us"},
    }


def write_chrome_trace(
    events: Iterable[dict[str, Any]], path: str | Path
) -> None:
    Path(path).write_text(json.dumps(to_chrome_trace(events)))


def per_request_timeline(
    events: Iterable[dict[str, Any]]
) -> list[dict[str, Any]]:
    """Tabular per-request view of a trace (``repro trace`` output).

    One row per completed request with its latency anchors; flags for
    relegation / violation / evictions so anomalies stand out.
    """
    rows: list[dict[str, Any]] = []
    for ev in events:
        if ev.get("kind") != "request_completed":
            continue
        arrival = ev["arrival_time"]
        sched = ev["scheduled_first_time"]
        first = ev["first_token_time"]
        done = ev["completion_time"]
        rows.append({
            "request_id": ev["request_id"],
            "tier": ev["tier"],
            "replica": ev["replica_id"],
            "arrival_s": arrival,
            "queue_s": (sched - arrival) if sched is not None else None,
            "ttft_s": (first - arrival) if first is not None else None,
            "ttlt_s": done - arrival,
            "relegated": ev["relegated"],
            "violated": ev["violated"],
            "evictions": ev["evictions"],
        })
    rows.sort(key=lambda r: (r["arrival_s"], r["request_id"]))
    return rows


def render_timeline(events: Iterable[dict[str, Any]]) -> str:
    """Fixed-width rendering of :func:`per_request_timeline`."""
    rows = per_request_timeline(events)
    if not rows:
        return "(no request_completed events in trace)"
    headers = list(rows[0].keys())

    def fmt(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    table = [[fmt(row[h]) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(line[i]) for line in table))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths))
        for line in table
    )
    return "\n".join(lines)
