"""Wall-clock profiling of scheduler hot paths (``obs.timed``).

The simulator's virtual clock says where *simulated* time goes; this
module says where *wall-clock* time goes — which scheduler routine is
actually burning CPU when a sweep is slow.  ``timed`` works both ways:

    @timed("qoserve.plan_prefill")
    def plan_prefill(self, view): ...

    with timed("replan"):
        self._replan(now)

Profiling is off by default and gated on one attribute read, so the
decorated hot paths cost a single flag check per call when disabled —
the instrumentation stays effectively free.  Enable around a region::

    from repro.obs import PROFILER
    PROFILER.enable()
    ...
    print(PROFILER.report_text())
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Any, Callable


class WallClockProfiler:
    """Accumulates wall-clock totals per named section."""

    __slots__ = ("enabled", "totals", "counts")

    def __init__(self) -> None:
        self.enabled = False
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def record(self, name: str, seconds: float) -> None:
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def report(self) -> dict[str, dict[str, float]]:
        """``{section: {total_s, calls, mean_us}}`` sorted by total."""
        out: dict[str, dict[str, float]] = {}
        for name in sorted(
            self.totals, key=self.totals.__getitem__, reverse=True
        ):
            calls = self.counts[name]
            total = self.totals[name]
            out[name] = {
                "total_s": total,
                "calls": calls,
                "mean_us": (total / calls) * 1e6 if calls else 0.0,
            }
        return out

    def report_text(self) -> str:
        report = self.report()
        if not report:
            return "(no timed sections recorded)"
        lines = [f"{'section':<40} {'total_s':>10} {'calls':>10} "
                 f"{'mean_us':>10}"]
        for name, stats in report.items():
            lines.append(
                f"{name:<40} {stats['total_s']:>10.4f} "
                f"{stats['calls']:>10d} {stats['mean_us']:>10.1f}"
            )
        return "\n".join(lines)


#: Process-wide profiler every ``timed`` section reports into.
PROFILER = WallClockProfiler()


class timed:
    """Decorator *and* context manager timing a named section."""

    __slots__ = ("name", "profiler", "_t0")

    def __init__(
        self, name: str, profiler: WallClockProfiler | None = None
    ) -> None:
        self.name = name
        self.profiler = profiler if profiler is not None else PROFILER
        self._t0 = 0.0

    # --- decorator form ------------------------------------------------

    def __call__(self, fn: Callable) -> Callable:
        name = self.name
        profiler = self.profiler

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not profiler.enabled:
                return fn(*args, **kwargs)
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                profiler.record(name, perf_counter() - t0)

        wrapper.__wrapped__ = fn
        return wrapper

    # --- context-manager form ------------------------------------------

    def __enter__(self) -> "timed":
        if self.profiler.enabled:
            self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        if self.profiler.enabled:
            self.profiler.record(self.name, perf_counter() - self._t0)
