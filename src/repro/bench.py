"""Perf-trajectory harness: pinned workloads timed release over release.

``repro bench`` times a fixed set of hot paths — the ones the fast-path
engine work optimizes — plus one end-to-end replica trace and a tiny
figure-10/11 sweep, and writes the measurements to ``BENCH_<n>.json``
at the repository root.  Committing one report per perf-focused change
turns the repo history into a performance trajectory: any regression
shows up as two adjacent files disagreeing on the same pinned workload.

The pinned micro workloads:

* ``forest_predict_pertree``  — reference per-tree scalar prediction
* ``forest_predict_fused``    — fused flat-array scalar prediction
* ``forest_predict_batch``    — vectorized batch prediction (per row)
* ``predictor_memo_hit``      — :class:`ForestBatchPredictor` memo path
* ``chunker_prefill_budget``  — dynamic chunking incl. warm-started
  budget inversion
* ``execution_batch_time``    — analytical batch latency
* ``execution_prefill_time``  — memoized prefill-time lookup

plus the ``engine_soa`` kernel pairs (struct-of-arrays decode advance,
bulk KV growth and eviction-victim selection vs their per-object
reference loops) and the ``engine_e2e`` section driving the pinned
trace through both engine cores (see ``docs/PERFORMANCE.md``).

All workloads are deterministic; wall-clock numbers obviously vary by
host, which is why each report embeds the host fingerprint (CPU count,
Python/NumPy versions).  Compare reports only within one host class.
"""

from __future__ import annotations

import json
import math
import os
import platform
import re
import sys
import time
from pathlib import Path
from typing import Any, Callable

#: History: 2 — ``end_to_end`` grew a ``profile`` section (wall-clock
#: totals per ``obs.timed`` hot path during the replica trace).
#: 3 — new ``span_overhead`` section: the pinned end-to-end trace
#: re-run with the no-op observer and with full span tracing, and the
#: overhead ratios vs the unobserved run (the tentpole bound is <= 5%
#: with spans on and ~0% with the no-op observer).
#: 4 — new ``engine_soa`` micro section (struct-of-arrays kernels vs
#: their per-object reference loops) and ``engine_e2e`` section (the
#: same pinned trace driven end to end through both engine cores,
#: interleaved best-of-N; ``speedup`` is the array engine's headline).
#: 5 — optional ``behavioral_diff`` section (``--diff-baseline``): the
#: pinned end-to-end trace's recorded events diffed against a stored
#: baseline via :mod:`repro.obs.diff`, so perf runs assert behavioral
#: identity, not just speed.
#: 6 — new ``prefix_reuse`` section: a pinned decode-heavy multi-turn
#: session trace served with the radix KV prefix cache off and on;
#: ``goodput_x`` is the *simulated* goodput ratio (deterministic — the
#: CI gate asserts >= 1.2), wall times ride along for the trajectory.
SCHEMA_VERSION = 6

#: Repo root (``src/repro/bench.py`` -> two levels up from ``repro``).
REPO_ROOT = Path(__file__).resolve().parents[2]

#: Pinned sweep grid for the end-to-end benchmark (a miniature of the
#: Figure 10/11 load sweep; small enough for CI, big enough to touch
#: every layer: trace build, scheduling, chunking, forest inference).
SWEEP_SCHEMES = ("fcfs", "qoserve")
SWEEP_LOADS = (2.0, 3.0)


def _timeit(
    fn: Callable[[], Any], *, reps: int, loops: int
) -> dict[str, float]:
    """Best-of-``reps`` mean time per call over ``loops`` calls.

    Best-of (not mean-of-reps) is the standard noise filter for micro
    benchmarks: scheduling hiccups only ever make a rep slower.
    """
    fn()  # warm caches, JIT-free but memo-ful paths stabilize
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        for _ in range(loops):
            fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed / loops)
    return {"best_us": best * 1e6, "reps": reps, "loops": loops}


def _micro_benchmarks(quick: bool) -> dict[str, dict[str, float]]:
    import numpy as np

    from repro.core.predictor import cached_forest_predictor
    from repro.core.chunking import DynamicChunker
    from repro.experiments.configs import get_execution_model
    from repro.perfmodel.execution import BatchShape, PrefillChunk
    from repro.perfmodel.profiler import batch_features
    from repro.workload.datasets import AZURE_CODE
    from repro.experiments.runner import build_trace

    execution_model = get_execution_model("llama3-8b")
    predictor = cached_forest_predictor(execution_model)
    forest = predictor.forest
    quantile = predictor.quantile

    reps = 3 if quick else 5
    loops = 200 if quick else 1000

    # A representative mixed batch: one mid-size chunk + a decode pool.
    shape = BatchShape(
        prefill_chunks=[PrefillChunk(512, 1024)],
        num_decodes=24,
        decode_context_total=24 * 900,
    )
    features = batch_features(shape)
    rows = np.asarray([features] * 256, dtype=np.float64)

    results: dict[str, dict[str, float]] = {}
    results["forest_predict_pertree"] = _timeit(
        lambda: forest.predict_one_pertree(features, quantile=quantile),
        reps=reps, loops=loops,
    )
    results["forest_predict_fused"] = _timeit(
        lambda: forest.predict_one(features, quantile=quantile),
        reps=reps, loops=loops,
    )
    batch = _timeit(
        lambda: forest.predict_batch(rows, quantile=quantile),
        reps=reps, loops=max(1, loops // 50),
    )
    batch["best_us_per_row"] = batch["best_us"] / len(rows)
    results["forest_predict_batch"] = batch
    results["predictor_memo_hit"] = _timeit(
        lambda: predictor.predict(shape), reps=reps, loops=loops,
    )

    # The chunker exercised the way the engine does: same decode pool,
    # advancing clock, so the warm-started inversion path is active.
    trace = build_trace(AZURE_CODE, qps=1.0, num_requests=40, seed=7)
    decodes = []
    for request in trace.requests[:16]:
        request.prefill_done = request.prompt_tokens
        request.first_token_time = request.arrival_time
        decodes.append(request)
    chunker = DynamicChunker(predictor)
    clock = {"now": 0.0}

    def chunk_once() -> None:
        clock["now"] += 0.001
        chunker.prefill_budget(
            clock["now"], decodes, prefill_context_before=256,
            decode_context_total=sum(r.context_length for r in decodes),
        )

    results["chunker_prefill_budget"] = _timeit(
        chunk_once, reps=reps, loops=max(1, loops // 5),
    )
    results["execution_batch_time"] = _timeit(
        lambda: execution_model.batch_time(shape), reps=reps, loops=loops,
    )
    results["execution_prefill_time"] = _timeit(
        lambda: execution_model.prefill_time(2048, 512),
        reps=reps, loops=loops,
    )
    return results


def _engine_soa_micro_benchmarks(quick: bool) -> dict[str, dict[str, float]]:
    """SoA engine kernels vs the per-object loops they replace.

    Three pinned 48-row workloads, each timed both ways with the same
    semantics so the ratio is a pure dispatch/layout comparison:

    * ``advance`` — one level-synchronous decode advance
      (:meth:`ArrayReplicaEngine._advance_vector_all` vs 48
      :meth:`Request.record_output_token` calls);
    * ``kv_grow`` — the whole batch grows one token
      (:meth:`ArrayKVLedger.bulk_decode_grow` vs 48
      :meth:`KVCacheManager.grow` calls);
    * ``victim_select`` — stall-recovery victim choice
      (``np.argmax`` over the deadline column vs ``max()`` over the
      decode queue).

    Targets and capacity are set far out of reach so the timed loops
    never complete a request or exhaust KV — every call exercises the
    steady-state path.
    """
    import numpy as np

    from repro.core.qos import Q1_INTERACTIVE
    from repro.core.request import Request
    from repro.engine.arrays import ArrayKVLedger, ArrayReplicaEngine, _RowStore
    from repro.engine.kvcache import KVCacheManager

    reps = 3 if quick else 5
    loops = 200 if quick else 1000
    num_rows = 48
    block_size = 16

    def make_requests() -> list[Request]:
        requests = []
        for i in range(num_rows):
            request = Request(
                request_id=i,
                arrival_time=0.001 * i,
                prompt_tokens=700 + 13 * i,
                decode_tokens=1 << 40,  # unreachable: no completions
                qos=Q1_INTERACTIVE,
            )
            request.prefill_done = request.prompt_tokens
            request.record_output_token(0.02)
            requests.append(request)
        return requests

    def make_soa_state():
        """A populated row store + ledger, detached from any engine."""
        rows = _RowStore()
        ledger = ArrayKVLedger(10**8, block_size, rows)
        for request in make_requests():
            ledger.grow(request.request_id, request.context_length)
            rows.add(request, *ledger.attach_row(request.request_id))
        return rows, ledger

    results: dict[str, dict[str, float]] = {}

    # --- advance: one decode token for every row --------------------
    class _AdvanceHarness:
        """Just enough engine state for the advance kernel."""

        _advance_vector_all = ArrayReplicaEngine._advance_vector_all

        def __init__(self) -> None:
            self._rows, _ = make_soa_state()
            self._rows_dirty = False
            self._decode_context_total = 0

    harness = _AdvanceHarness()
    clock = {"now": 0.02}

    def soa_advance() -> None:
        clock["now"] += 0.01
        harness._advance_vector_all(clock["now"])

    results["soa_advance"] = _timeit(soa_advance, reps=reps, loops=loops)

    object_requests = make_requests()
    obj_clock = {"now": 0.02}

    def object_advance() -> None:
        obj_clock["now"] += 0.01
        now = obj_clock["now"]
        for request in object_requests:
            request.record_output_token(now)

    results["object_advance"] = _timeit(
        object_advance, reps=reps, loops=loops
    )

    # --- kv_grow: the whole batch grows one token -------------------
    _, ledger = make_soa_state()
    results["soa_kv_grow"] = _timeit(
        lambda: ledger.bulk_decode_grow(num_rows), reps=reps, loops=loops
    )

    kv = KVCacheManager(10**8, block_size=block_size)
    for request in make_requests():
        kv.grow(request.request_id, request.context_length)

    def object_kv_grow() -> None:
        for request_id in range(num_rows):
            kv.grow(request_id, 1)

    results["object_kv_grow"] = _timeit(
        object_kv_grow, reps=reps, loops=loops
    )

    # --- victim_select: stall-recovery eviction choice --------------
    class _VictimHarness:
        _pick_eviction_victim = ArrayReplicaEngine._pick_eviction_victim

        def __init__(self) -> None:
            self._rows, _ = make_soa_state()

    victim_harness = _VictimHarness()
    exclude = victim_harness._rows.req[0]
    results["soa_victim_select"] = _timeit(
        lambda: victim_harness._pick_eviction_victim(exclude),
        reps=reps, loops=loops,
    )

    decode_queue = make_requests()
    obj_exclude = decode_queue[0]

    def object_victim_select() -> Request | None:
        candidates = [r for r in decode_queue if r is not obj_exclude]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.next_token_deadline)

    results["object_victim_select"] = _timeit(
        object_victim_select, reps=reps, loops=loops
    )
    return results


def _engine_e2e_benchmark(quick: bool) -> dict[str, Any]:
    """The pinned trace through both engine cores, interleaved.

    Two workloads: the decode-heavy conversational trace (where the
    level-synchronous loop and decode-stretch fast-forward dominate —
    the headline number) and the prefill-heavy code trace (where
    shared planning cost bounds the ratio — the honest lower bound).
    Repetitions alternate engines so transient host load penalizes
    both equally; each engine reports its best rep, and the engines
    are constructed outside the timed region so the ratio measures the
    iteration loop, not model-table setup.
    """
    from repro.engine import ArrayReplicaEngine, ReplicaConfig, ReplicaEngine
    from repro.experiments.configs import get_execution_model
    from repro.experiments.runner import build_trace, make_scheduler
    from repro.simcore import Simulator
    from repro.workload.datasets import AZURE_CODE, AZURE_CONV

    execution_model = get_execution_model("llama3-8b")
    num_requests = 60 if quick else 150
    reps = 3 if quick else 5
    workloads = {
        "conv": (AZURE_CONV, 5.0),
        "code": (AZURE_CODE, 3.0),
    }
    engines = {"objects": ReplicaEngine, "arrays": ArrayReplicaEngine}

    report: dict[str, Any] = {"num_requests": num_requests, "reps": reps}
    for name, (dataset, scale) in workloads.items():
        base = build_trace(
            dataset, qps=1.0, num_requests=num_requests, seed=42
        )
        best = {key: math.inf for key in engines}
        completed = {}
        for _ in range(reps + 1):  # first interleaved pass is warm-up
            for key, engine_cls in engines.items():
                simulator = Simulator()
                engine = engine_cls(
                    simulator,
                    execution_model,
                    make_scheduler("qoserve", execution_model),
                    ReplicaConfig(),
                )
                for request in base.fresh_copy().scaled_arrivals(scale):
                    engine.submit(request)
                started = time.perf_counter()
                simulator.run(max_events=50_000_000)
                elapsed = time.perf_counter() - started
                if completed.setdefault(key, len(engine.completed)) != len(
                    engine.completed
                ):
                    raise RuntimeError(f"{name}/{key}: nondeterministic run")
                best[key] = min(best[key], elapsed)
        if completed["objects"] != completed["arrays"]:
            raise RuntimeError(f"{name}: engines disagree on completions")
        report[name] = {
            "workload": f"{dataset.name} qps=1.0 x{scale} qoserve",
            "objects_s": best["objects"],
            "arrays_s": best["arrays"],
            "speedup": best["objects"] / best["arrays"],
            "completed": completed["objects"],
        }
    return report


def _end_to_end_benchmark(quick: bool) -> dict[str, Any]:
    """One full replica trace under the QoServe scheduler.

    The run executes with the :data:`repro.obs.PROFILER` enabled, so
    the report breaks ``wall_s`` down into the ``obs.timed`` hot-path
    sections (chunker, relegation planner, iteration loop) — the same
    sections the fast-path engine work optimizes.
    """
    from repro.experiments.configs import get_execution_model
    from repro.experiments.runner import (
        build_trace,
        make_scheduler,
        run_replica_trace,
    )
    from repro.obs import PROFILER
    from repro.workload.datasets import AZURE_CODE

    execution_model = get_execution_model("llama3-8b")
    num_requests = 60 if quick else 150
    base = build_trace(
        AZURE_CODE, qps=1.0, num_requests=num_requests, seed=42
    )
    trace = base.scaled_arrivals(3.0)

    PROFILER.reset()
    PROFILER.enable()
    try:
        started = time.perf_counter()
        scheduler = make_scheduler("qoserve", execution_model)
        summary, _ = run_replica_trace(execution_model, scheduler, trace)
        elapsed = time.perf_counter() - started
    finally:
        PROFILER.disable()
    return {
        "workload": "AzCode qps=3.0 qoserve",
        "num_requests": num_requests,
        "wall_s": elapsed,
        "completed": summary.finished,
        "profile": PROFILER.report(),
    }


def _capture_pinned_trace(quick: bool) -> list[dict[str, Any]]:
    """Record the end-to-end benchmark's pinned workload as events.

    Exactly the workload of :func:`_end_to_end_benchmark` (AzCode,
    qps=3.0, qoserve), run once with full tracing — the event stream
    is deterministic, so any change between two captures is a real
    behavior change, not noise.
    """
    from repro.experiments.configs import get_execution_model
    from repro.experiments.runner import (
        build_trace,
        make_scheduler,
        run_replica_trace,
    )
    from repro.obs import ListSink, TraceRecorder, TracingObserver
    from repro.workload.datasets import AZURE_CODE

    execution_model = get_execution_model("llama3-8b")
    num_requests = 60 if quick else 150
    base = build_trace(
        AZURE_CODE, qps=1.0, num_requests=num_requests, seed=42
    )
    trace = base.scaled_arrivals(3.0)
    sink = ListSink()
    observer = TracingObserver(recorder=TraceRecorder([sink]))
    scheduler = make_scheduler("qoserve", execution_model)
    run_replica_trace(
        execution_model, scheduler, trace, observer=observer
    )
    return sink.events


def diff_baseline_check(
    baseline: Path, quick: bool = False
) -> dict[str, Any]:
    """``--diff-baseline``: behavioral identity against a stored trace.

    First use (no file at ``baseline``): records the pinned end-to-end
    trace there and reports ``recorded``.  Later runs re-capture the
    same workload and diff it against the stored events with
    :func:`repro.obs.diff.diff_runs`; the returned section carries
    ``identical`` plus the first-divergence index and goodput delta
    when behavior changed, and the CLI turns that into a non-zero
    exit.
    """
    import json as _json

    from repro.obs import read_jsonl_trace
    from repro.obs.diff import diff_runs

    events = _capture_pinned_trace(quick)
    workload = f"AzCode qps=3.0 qoserve ({'quick' if quick else 'full'})"
    if not baseline.exists():
        with baseline.open("w") as sink:
            for event in events:
                sink.write(_json.dumps(
                    event, sort_keys=True, separators=(",", ":")
                ) + "\n")
        return {
            "workload": workload,
            "baseline": str(baseline),
            "recorded": True,
            "num_events": len(events),
        }
    base_events = read_jsonl_trace(baseline, validate=False)
    diff = diff_runs(
        base_events, events,
        base_label="baseline", other_label="current",
    )
    section: dict[str, Any] = {
        "workload": workload,
        "baseline": str(baseline),
        "recorded": False,
        "identical": diff.identical,
        "events": {"baseline": diff.num_events[0],
                   "current": diff.num_events[1]},
    }
    if not diff.identical:
        section["good_delta"] = diff.goodput["good_delta"]
        section["cause_goodput_delta"] = {
            cause: diff.cause_goodput_delta[cause]
            for cause in sorted(diff.cause_goodput_delta)
        }
        if diff.first_divergence is not None:
            section["first_divergence_index"] = (
                diff.first_divergence.index
            )
            section["first_divergence_kind"] = (
                (diff.first_divergence.other_event or
                 diff.first_divergence.base_event or {}).get("kind")
            )
    return section


def _span_overhead_benchmark(quick: bool) -> dict[str, Any]:
    """Marginal cost of span tracing on the pinned end-to-end trace.

    Four identical runs after a warm-up: the no-op
    :data:`~repro.obs.NULL_OBSERVER` twice (baseline + noise floor; span
    hooks on the no-op path must be free), a
    :class:`~repro.obs.TracingObserver` with span emission suppressed
    (the pre-span tracing cost), and the full observer.
    ``spans_overhead`` is the span hooks' marginal cost over the
    otherwise-identical tracing run — the quantity the "<= 5%" bound in
    ``docs/OBSERVABILITY.md`` refers to; ``tracing_overhead`` is the
    long-standing cost of full event tracing vs no observer at all.
    Repetitions are interleaved across configurations (so transient
    host load penalizes them equally) and each reports its best run,
    the micro-benchmark noise filter.
    """
    from repro.experiments.configs import get_execution_model
    from repro.experiments.runner import (
        build_trace,
        make_scheduler,
        run_replica_trace,
    )
    from repro.obs import RingSink, TraceRecorder, TracingObserver
    from repro.workload.datasets import AZURE_CODE

    class _NoSpanObserver(TracingObserver):
        def on_span_start(self, name, request, now, replica_id=-1):
            pass

        def on_span_end(self, name, request, now, replica_id=-1):
            pass

    execution_model = get_execution_model("llama3-8b")
    num_requests = 150 if quick else 400
    base = build_trace(
        AZURE_CODE, qps=1.0, num_requests=num_requests, seed=42
    )
    reps = 7 if quick else 11

    def run_once(observer) -> float:
        trace = base.fresh_copy()
        scheduler = make_scheduler("qoserve", execution_model)
        started = time.perf_counter()
        run_replica_trace(
            execution_model, scheduler, trace, observer=observer
        )
        return time.perf_counter() - started

    def tracing(cls) -> Any:
        return cls(recorder=TraceRecorder([RingSink(capacity=4096)]))

    # None adopts the engine's no-op default observer.
    configs: list[Any] = [
        lambda: None,
        lambda: None,
        lambda: tracing(_NoSpanObserver),
        lambda: tracing(TracingObserver),
    ]
    run_once(None)  # warm-up: model tables and allocator caches
    best = [math.inf] * len(configs)
    for _ in range(reps):
        for i, make_observer in enumerate(configs):
            best[i] = min(best[i], run_once(make_observer()))
    baseline_s, null_s, no_span_s, spans_s = best
    return {
        "workload": "AzCode qps=1.0 qoserve",
        "num_requests": num_requests,
        "reps": reps,
        "baseline_s": baseline_s,
        "null_observer_s": null_s,
        "tracing_no_spans_s": no_span_s,
        "spans_on_s": spans_s,
        "null_observer_overhead": null_s / baseline_s - 1.0,
        "tracing_overhead": no_span_s / baseline_s - 1.0,
        "spans_overhead": spans_s / no_span_s - 1.0,
    }


def _prefix_reuse_benchmark(quick: bool) -> dict[str, Any]:
    """Radix prefix reuse vs off on a pinned decode-heavy session trace.

    Multi-turn agent sessions (shared 1024-token system prompt, long
    completions) at a load where prefilling every turn's full history
    from scratch overloads the replica.  Both runs replay identical
    arrivals; ``goodput_x`` compares *simulated* goodput (requests
    finished within SLO per second of arrival span), which is
    deterministic for the pinned seed — the ``prefix-smoke`` CI job
    gates on it staying >= 1.2.  Wall-clock times ride along like
    every other section but carry no gate.
    """
    from dataclasses import replace

    from repro.api import ServeConfig, Session
    from repro.workload.distributions import LognormalLengths
    from repro.workload.sessions import AGENT_PROFILE, SessionWorkload

    profile = replace(
        AGENT_PROFILE,
        completion=LognormalLengths(p50=500, p90=1200, max_tokens=2048),
    )
    num_sessions = 30 if quick else 60
    load = 0.8
    base = list(
        SessionWorkload(profile, session_qps=load, seed=42).build(
            num_sessions
        )
    )

    def run_once(kv_reuse: str) -> dict[str, Any]:
        session = Session(ServeConfig(
            scheduler="qoserve", kv_reuse=kv_reuse,
        ))
        requests = [r.clone_fresh() for r in base]
        started = time.perf_counter()
        for request in requests:
            session.submit(request)
        session.drain()
        elapsed = time.perf_counter() - started
        good = sum(
            1 for r in requests
            if r.is_finished and not r.violated_deadline
        )
        span = max(
            1e-9,
            max(r.arrival_time for r in requests)
            - min(r.arrival_time for r in requests),
        )
        out: dict[str, Any] = {
            "goodput_rps": good / span,
            "wall_s": elapsed,
        }
        cache = session.engines[0].prefix_cache
        if cache is not None:
            assert cache.total_refs() == 0, "prefix refcounts leaked"
            lookups = cache.hits + cache.misses
            out["hit_rate"] = cache.hits / lookups if lookups else 0.0
            out["prefill_saved_tokens"] = cache.hit_tokens
            out["evictions"] = cache.evictions
        return out

    off = run_once("off")
    radix = run_once("radix")
    return {
        "workload": (
            f"agent sessions x{num_sessions} qps={load} qoserve "
            "(decode-heavy completions)"
        ),
        "num_requests": len(base),
        "off": off,
        "radix": radix,
        "goodput_x": (
            radix["goodput_rps"] / off["goodput_rps"]
            if off["goodput_rps"] else float("inf")
        ),
    }


def _sweep_benchmark(quick: bool, jobs: int | None) -> dict[str, Any]:
    """The pinned mini fig10/11 sweep: serial vs ``jobs`` workers.

    Rows must be identical at any job count; the report records the
    comparison so CI can assert determinism alongside the timings.
    """
    from repro.experiments import fig10_11_load_sweep as sweep
    from repro.experiments.configs import Scale

    scale = Scale(
        num_requests=40 if quick else 120,
        min_duration_s=0.0,
        seed=42,
        label="bench-pinned",
    )
    if jobs is None:
        jobs = min(4, os.cpu_count() or 1)
    jobs = max(1, jobs)

    started = time.perf_counter()
    serial = sweep.run(
        scale, schemes=SWEEP_SCHEMES, loads=SWEEP_LOADS, jobs=1
    )
    serial_s = time.perf_counter() - started

    report: dict[str, Any] = {
        "grid": f"{len(SWEEP_SCHEMES)} schemes x {len(SWEEP_LOADS)} loads",
        "num_requests": scale.num_requests,
        "serial_s": serial_s,
        "jobs": jobs,
    }
    if jobs > 1:
        started = time.perf_counter()
        parallel = sweep.run(
            scale, schemes=SWEEP_SCHEMES, loads=SWEEP_LOADS, jobs=jobs
        )
        report["parallel_s"] = time.perf_counter() - started
        report["rows_identical"] = parallel.rows == serial.rows
        if (os.cpu_count() or 1) < 2:
            report["note"] = (
                "single-CPU host: worker processes timeshare one "
                "core, so parallel_s measures pool overhead, not "
                "speedup; rows_identical is the meaningful signal"
            )
    return report


def run_bench(quick: bool = False, jobs: int | None = None) -> dict:
    """Run the full pinned-workload suite and return the report dict."""
    import numpy as np

    micro = _micro_benchmarks(quick)
    engine_soa = _engine_soa_micro_benchmarks(quick)
    engine_e2e = _engine_e2e_benchmark(quick)
    end_to_end = _end_to_end_benchmark(quick)
    span_overhead = _span_overhead_benchmark(quick)
    sweep = _sweep_benchmark(quick, jobs)
    prefix_reuse = _prefix_reuse_benchmark(quick)

    pertree = micro["forest_predict_pertree"]["best_us"]
    fused = micro["forest_predict_fused"]["best_us"]
    per_row = micro["forest_predict_batch"]["best_us_per_row"]
    derived = {
        "fused_scalar_speedup_vs_pertree": pertree / fused,
        "fused_batch_speedup_vs_pertree": pertree / per_row,
        "soa_advance_speedup": (
            engine_soa["object_advance"]["best_us"]
            / engine_soa["soa_advance"]["best_us"]
        ),
        "soa_kv_grow_speedup": (
            engine_soa["object_kv_grow"]["best_us"]
            / engine_soa["soa_kv_grow"]["best_us"]
        ),
        "soa_victim_select_speedup": (
            engine_soa["object_victim_select"]["best_us"]
            / engine_soa["soa_victim_select"]["best_us"]
        ),
        "engine_e2e_conv_speedup": engine_e2e["conv"]["speedup"],
        "engine_e2e_code_speedup": engine_e2e["code"]["speedup"],
    }
    return {
        "schema": SCHEMA_VERSION,
        "created_unix": time.time(),
        "quick": quick,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "micro_us": micro,
        "engine_soa": engine_soa,
        "engine_e2e": engine_e2e,
        "derived": derived,
        "end_to_end": end_to_end,
        "span_overhead": span_overhead,
        "sweep": sweep,
        "prefix_reuse": prefix_reuse,
    }


def next_bench_path(root: Path = REPO_ROOT) -> Path:
    """First free ``BENCH_<n>.json`` slot at the repo root."""
    taken = set()
    for path in root.glob("BENCH_*.json"):
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            taken.add(int(match.group(1)))
    index = 1
    while index in taken:
        index += 1
    return root / f"BENCH_{index:03d}.json"


def write_bench(report: dict, out: Path | None = None) -> Path:
    """Write ``report`` to ``out`` or the next free ``BENCH_<n>.json``."""
    path = out if out is not None else next_bench_path()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


if __name__ == "__main__":
    result = run_bench(quick="--quick" in sys.argv)
    print(json.dumps(result, indent=2, sort_keys=True))
