"""Transformer model architecture specifications.

Only the quantities the cost model needs are recorded: layer counts and
widths (for FLOPs and weight bytes) and the KV head layout (for KV-cache
size and attention memory traffic).  The three models match Table 1 of
the paper, including the GQA-vs-MHA distinction that makes Qwen-7B far
more KV-hungry than Llama3-8B.
"""

from __future__ import annotations

from dataclasses import dataclass

BYTES_PER_PARAM = 2  # bf16 weights
BYTES_PER_KV_SCALAR = 2  # bf16 KV cache


@dataclass(frozen=True)
class ModelSpec:
    """Architecture description of a decoder-only transformer.

    Attributes:
        name: Human readable identifier.
        num_layers: Number of transformer blocks.
        hidden_size: Model (embedding) dimension.
        intermediate_size: MLP hidden dimension (per direction).
        num_q_heads: Query heads.
        num_kv_heads: Key/value heads (``num_q_heads`` for MHA, fewer
            for GQA).
        vocab_size: Vocabulary size (for the LM head GEMM).
    """

    name: str
    num_layers: int
    hidden_size: int
    intermediate_size: int
    num_q_heads: int
    num_kv_heads: int
    vocab_size: int

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_q_heads

    @property
    def kv_dim(self) -> int:
        """Width of the K (or V) projection output."""
        return self.num_kv_heads * self.head_dim

    def linear_flops_per_token(self) -> float:
        """Dense (GEMM) FLOPs to push one token through the network.

        Counts QKV/output projections, the gated MLP, and the LM head,
        at 2 FLOPs per multiply-accumulate.
        """
        h = self.hidden_size
        attn_proj = h * h + 2 * h * self.kv_dim + h * h  # Q, K, V, O
        mlp = 3 * h * self.intermediate_size  # gate, up, down
        per_layer = 2.0 * (attn_proj + mlp)
        lm_head = 2.0 * h * self.vocab_size
        return per_layer * self.num_layers + lm_head

    def weight_bytes(self) -> float:
        """Total parameter bytes that each iteration streams from HBM."""
        h = self.hidden_size
        attn_proj = h * h + 2 * h * self.kv_dim + h * h
        mlp = 3 * h * self.intermediate_size
        per_layer = attn_proj + mlp
        embed = h * self.vocab_size
        total_params = per_layer * self.num_layers + 2 * embed
        return total_params * BYTES_PER_PARAM

    def kv_bytes_per_token(self) -> float:
        """KV-cache bytes stored per token across all layers."""
        return 2.0 * self.kv_dim * BYTES_PER_KV_SCALAR * self.num_layers


#: Llama3-8B: 32 layers, GQA 32/8 heads (Table 1, TP1 on A100).
LLAMA3_8B = ModelSpec(
    name="Llama3-8B",
    num_layers=32,
    hidden_size=4096,
    intermediate_size=14336,
    num_q_heads=32,
    num_kv_heads=8,
    vocab_size=128256,
)

#: Qwen-7B: 32 layers, MHA 32/32 heads (Table 1, TP2 on A100).
QWEN_7B = ModelSpec(
    name="Qwen-7B",
    num_layers=32,
    hidden_size=4096,
    intermediate_size=11008,
    num_q_heads=32,
    num_kv_heads=32,
    vocab_size=151936,
)

#: Llama3-70B: 80 layers, GQA 64/8 heads (Table 1, TP4 on H100).
LLAMA3_70B = ModelSpec(
    name="Llama3-70B",
    num_layers=80,
    hidden_size=8192,
    intermediate_size=28672,
    num_q_heads=64,
    num_kv_heads=8,
    vocab_size=128256,
)
