"""GPU hardware specifications used by the execution-time model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareSpec:
    """Capabilities of a single accelerator.

    Attributes:
        name: Human-readable identifier.
        peak_flops: Peak dense bf16 throughput in FLOP/s.
        mem_bandwidth: HBM bandwidth in bytes/s.
        mem_capacity: Usable device memory in bytes.
        mfu_linear: Achievable fraction of peak on large GEMMs.
        mfu_attention: Achievable fraction of peak on attention kernels.
        base_overhead: Fixed per-iteration overhead in seconds (kernel
            launches, scheduler bookkeeping, sampling).
        tp_link_overhead: Additional per-iteration overhead per tensor
            parallel rank beyond the first (allreduce latency), seconds.
    """

    name: str
    peak_flops: float
    mem_bandwidth: float
    mem_capacity: float
    mfu_linear: float = 0.55
    mfu_attention: float = 0.30
    base_overhead: float = 2.5e-3
    tp_link_overhead: float = 0.6e-3

    def overhead(self, tp_degree: int) -> float:
        """Per-iteration fixed overhead for a TP group of this hardware."""
        return self.base_overhead + self.tp_link_overhead * (tp_degree - 1)


#: NVIDIA A100 80GB SXM: 312 TFLOP/s bf16, 2.04 TB/s HBM2e.
A100_80GB = HardwareSpec(
    name="A100-80GB",
    peak_flops=312e12,
    mem_bandwidth=2.039e12,
    mem_capacity=80e9,
)

#: NVIDIA H100 80GB SXM: 989 TFLOP/s bf16, 3.35 TB/s HBM3.
H100_80GB = HardwareSpec(
    name="H100-80GB",
    peak_flops=989e12,
    mem_bandwidth=3.35e12,
    mem_capacity=80e9,
    mfu_linear=0.50,
    mfu_attention=0.28,
    base_overhead=2.2e-3,
)
