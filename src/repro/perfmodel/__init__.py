"""Analytical performance model of transformer inference.

This package plays the role the A100/H100 testbed plays in the paper:
given a mixed batch of prefill chunks and decode tokens it returns the
iteration execution time.  The model captures the two regimes that
matter to the scheduler — memory-bound decode (weight + KV traffic) and
compute-bound prefill (linear + quadratic attention FLOPs) — plus a
fixed per-iteration overhead, and is calibrated so the chunk-size
throughput/latency trade-off matches Figure 4 of the paper (throughput
saturating near chunk 2500, ~50 ms batches at chunk ~330 for Llama3-8B
on A100).

It also exposes the Vidur-style profiling harness used to train the
random-forest batch-latency predictor of Section 3.6.1.
"""

from repro.perfmodel.hardware import A100_80GB, H100_80GB, HardwareSpec
from repro.perfmodel.modelspec import (
    LLAMA3_70B,
    LLAMA3_8B,
    QWEN_7B,
    ModelSpec,
)
from repro.perfmodel.execution import (
    BatchShape,
    ExecutionModel,
    PrefillChunk,
)
from repro.perfmodel.profiler import ProfileSample, Profiler

__all__ = [
    "A100_80GB",
    "H100_80GB",
    "HardwareSpec",
    "LLAMA3_8B",
    "LLAMA3_70B",
    "QWEN_7B",
    "ModelSpec",
    "BatchShape",
    "ExecutionModel",
    "PrefillChunk",
    "ProfileSample",
    "Profiler",
]
