"""Analytical iteration-time model for mixed prefill/decode batches.

The model mirrors how a chunked-prefill engine (Sarathi/vLLM) spends an
iteration:

* **Dense GEMMs** — every token in the batch (prefill or decode) flows
  through the same projections and MLP.  GEMM efficiency saturates with
  the number of tokens in flight, which is what makes small chunks
  expensive per token and produces the throughput/latency trade-off of
  Figure 4.
* **Attention** — prefill chunks pay a causal quadratic cost against
  the tokens already processed; decode tokens pay a linear cost in
  their context length.
* **Memory traffic** — each iteration streams the weight shard once
  (the memory-bound floor that dominates decode-only batches) plus KV
  cache reads/writes.
* **Fixed overhead** — kernel launches, sampling, TP allreduce.

Compute and memory are assumed to overlap, so the iteration takes the
maximum of the two, plus overhead.  The model is deterministic, cheap
(a handful of multiply-adds), and strictly monotone in chunk size,
which the dynamic chunker relies on when inverting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as _np

from repro.perfmodel.hardware import HardwareSpec
from repro.perfmodel.modelspec import ModelSpec


@dataclass(frozen=True)
class PrefillChunk:
    """A slice of one request's prompt processed this iteration.

    Attributes:
        tokens: Number of prompt tokens in the chunk.
        context_before: Prompt tokens of the same request already
            processed in earlier iterations (the chunk attends to them).
    """

    tokens: int
    context_before: int = 0


@dataclass
class BatchShape:
    """Aggregate description of one iteration's work.

    Attributes:
        prefill_chunks: Chunks of prompt processing in this iteration.
        num_decodes: Number of requests contributing one decode token.
        decode_context_total: Sum of context lengths (prompt + generated
            so far) across the decode requests.
    """

    prefill_chunks: list[PrefillChunk] = field(default_factory=list)
    num_decodes: int = 0
    decode_context_total: int = 0

    @property
    def prefill_tokens(self) -> int:
        return sum(chunk.tokens for chunk in self.prefill_chunks)

    @property
    def total_tokens(self) -> int:
        return self.prefill_tokens + self.num_decodes


class ExecutionModel:
    """Computes iteration latency for a (model, hardware, TP) deployment."""

    #: Entry cap on the prefill_time memo (distinct prompt lengths x
    #: chunk sizes per deployment; cleared wholesale on overflow).
    _PREFILL_CACHE_LIMIT = 100_000

    def __init__(
        self,
        model: ModelSpec,
        hardware: HardwareSpec,
        tp_degree: int = 1,
        mfu_half_tokens: float = 230.0,
        kv_memory_reserve_fraction: float = 0.08,
    ) -> None:
        """Args:
        model: Transformer architecture.
        hardware: Per-GPU capabilities.
        tp_degree: Tensor-parallel width; FLOPs, bandwidth and memory
            all scale linearly, at the cost of allreduce overhead.
        mfu_half_tokens: Token count at which GEMM efficiency reaches
            half of its asymptote (controls the Figure 4 knee).
        kv_memory_reserve_fraction: Fraction of device memory kept
            aside for activations and fragmentation.
        """
        if tp_degree < 1:
            raise ValueError(f"tp_degree must be >= 1, got {tp_degree}")
        self.model = model
        self.hardware = hardware
        self.tp_degree = int(tp_degree)
        self.mfu_half_tokens = float(mfu_half_tokens)

        # Precomputed per-deployment constants (per-rank view: shard
        # the work by TP, each rank has its own FLOPs and bandwidth).
        self._linear_flops_per_token = model.linear_flops_per_token() / tp_degree
        self._attn_flops_scale = (
            4.0 * model.hidden_size * model.num_layers / tp_degree
        )
        self._weight_bytes = model.weight_bytes() / tp_degree
        self._kv_bytes_per_token = model.kv_bytes_per_token() / tp_degree
        self._peak_flops = hardware.peak_flops
        self._bandwidth = hardware.mem_bandwidth
        self._mfu_linear = hardware.mfu_linear
        self._mfu_attention = hardware.mfu_attention
        self._overhead = hardware.overhead(tp_degree)

        # SJF/SRPF service estimates and the capacity planner call
        # prefill_time() with heavily repeating (prompt, chunk) pairs;
        # the fixed-chunk sum is deterministic, so memoize it.
        self._prefill_time_cache: dict[tuple[int, int], float] = {}

        reserve = kv_memory_reserve_fraction * hardware.mem_capacity
        kv_room = hardware.mem_capacity - self._weight_bytes - reserve
        if kv_room <= 0:
            raise ValueError(
                f"{model.name} does not fit on {tp_degree}x{hardware.name}: "
                f"weight shard {self._weight_bytes / 1e9:.1f} GB"
            )
        self._kv_capacity_tokens = int(kv_room / self._kv_bytes_per_token)

    @property
    def overhead(self) -> float:
        """Fixed per-iteration overhead in seconds."""
        return self._overhead

    @property
    def kv_capacity_tokens(self) -> int:
        """Tokens of KV cache that fit in device memory."""
        return self._kv_capacity_tokens

    def _gemm_efficiency(self, prefill_tokens: int) -> float:
        """Prefill-GEMM MFU as a saturating function of chunk size."""
        t = float(prefill_tokens)
        return self._mfu_linear * t / (t + self.mfu_half_tokens)

    def batch_time(self, shape: BatchShape) -> float:
        """Execution time in seconds for one iteration of ``shape``.

        The linear-layer cost distinguishes the two regimes the
        scheduler lives between.  Prefill chunks run real GEMMs whose
        utilization degrades at small M (the Figure 4 knee), so their
        FLOPs are charged at a chunk-size-dependent MFU.  Decode
        tokens piggyback on the same weight stream (Sarathi's fused
        prefill-decode batches); a decode-only batch is bandwidth
        bound, charged at the asymptotic MFU and dominated by the
        weight/KV memory term.
        """
        total_tokens = shape.total_tokens
        if total_tokens <= 0:
            return 0.0

        # --- compute path ---
        prefill_tokens = shape.prefill_tokens
        compute = (
            self._linear_flops_per_token
            * total_tokens
            / (self._peak_flops * self._mfu_linear)
        )
        if prefill_tokens > 0:
            compute_prefill = (
                self._linear_flops_per_token
                * prefill_tokens
                / (
                    self._peak_flops
                    * self._gemm_efficiency(prefill_tokens)
                )
            )
            compute = max(compute, compute_prefill)

        attn_flops = 0.0
        prefill_context_read = 0
        for chunk in shape.prefill_chunks:
            # Causal attention: query i attends to context_before + i keys.
            avg_keys = chunk.context_before + (chunk.tokens + 1) / 2.0
            attn_flops += self._attn_flops_scale * chunk.tokens * avg_keys
            prefill_context_read += chunk.context_before
        attn_flops += self._attn_flops_scale * shape.decode_context_total
        compute += attn_flops / (self._peak_flops * self._mfu_attention)

        # --- memory path ---
        kv_read = self._kv_bytes_per_token * (
            shape.decode_context_total + prefill_context_read
        )
        kv_write = self._kv_bytes_per_token * total_tokens
        mem_bytes = self._weight_bytes + kv_read + kv_write
        memory = mem_bytes / self._bandwidth

        return max(compute, memory) + self._overhead

    def batch_time_flat(
        self,
        prefill_chunks: "list[tuple[int, int]] | tuple[tuple[int, int], ...]",
        num_decodes: int,
        decode_context_total: int,
    ) -> float:
        """:meth:`batch_time` over ``(tokens, context_before)`` pairs.

        The struct-of-arrays engine calls this on its hot path to skip
        constructing :class:`PrefillChunk`/:class:`BatchShape` objects
        per iteration.  The float operation sequence mirrors
        :meth:`batch_time` exactly, so the two are bit-identical for
        equivalent inputs (pinned by the equivalence test).
        """
        prefill_tokens = 0
        for tokens, _ in prefill_chunks:
            prefill_tokens += tokens
        total_tokens = prefill_tokens + num_decodes
        if total_tokens <= 0:
            return 0.0

        compute = (
            self._linear_flops_per_token
            * total_tokens
            / (self._peak_flops * self._mfu_linear)
        )
        if prefill_tokens > 0:
            compute_prefill = (
                self._linear_flops_per_token
                * prefill_tokens
                / (
                    self._peak_flops
                    * self._gemm_efficiency(prefill_tokens)
                )
            )
            compute = max(compute, compute_prefill)

        attn_flops = 0.0
        prefill_context_read = 0
        for tokens, context_before in prefill_chunks:
            avg_keys = context_before + (tokens + 1) / 2.0
            attn_flops += self._attn_flops_scale * tokens * avg_keys
            prefill_context_read += context_before
        attn_flops += self._attn_flops_scale * decode_context_total
        compute += attn_flops / (self._peak_flops * self._mfu_attention)

        kv_read = self._kv_bytes_per_token * (
            decode_context_total + prefill_context_read
        )
        kv_write = self._kv_bytes_per_token * total_tokens
        mem_bytes = self._weight_bytes + kv_read + kv_write
        memory = mem_bytes / self._bandwidth

        return max(compute, memory) + self._overhead

    def decode_batch_times_flat(self, num_decodes: int, decode_context_totals):
        """Vectorized :meth:`batch_time` for a pure-decode schedule.

        ``decode_context_totals`` is a NumPy int array of context
        totals, one per future iteration; the return value is the
        float64 exec-time array.  Each element reproduces the exact
        float operation sequence of :meth:`batch_time` for the
        equivalent decode-only :class:`BatchShape` (``num_decodes``
        must be positive), so the array engine's level-synchronous
        decode stretches stay bit-identical to per-iteration calls.
        """
        compute = (
            self._linear_flops_per_token
            * num_decodes
            / (self._peak_flops * self._mfu_linear)
        )
        attn_flops = 0.0 + self._attn_flops_scale * decode_context_totals
        compute = compute + attn_flops / (
            self._peak_flops * self._mfu_attention
        )
        kv_read = self._kv_bytes_per_token * decode_context_totals
        kv_write = self._kv_bytes_per_token * num_decodes
        mem_bytes = self._weight_bytes + kv_read + kv_write
        memory = mem_bytes / self._bandwidth
        return _np.maximum(compute, memory) + self._overhead

    def decode_batch_time(
        self, num_decodes: int, decode_context_total: int
    ) -> float:
        """Iteration time for a pure decode batch (no prefill chunk)."""
        return self.batch_time(
            BatchShape(
                prefill_chunks=[],
                num_decodes=num_decodes,
                decode_context_total=decode_context_total,
            )
        )

    def prefill_time(self, prompt_tokens: int, chunk_size: int) -> float:
        """Total time to prefill a prompt alone using fixed-size chunks.

        Used by baselines (SJF/SRPF service-time estimates) and by the
        capacity planner; it sums the per-chunk iteration times.
        """
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        key = (prompt_tokens, chunk_size)
        cached = self._prefill_time_cache.get(key)
        if cached is not None:
            return cached
        total = 0.0
        done = 0
        while done < prompt_tokens:
            tokens = min(chunk_size, prompt_tokens - done)
            total += self.batch_time(
                BatchShape(prefill_chunks=[PrefillChunk(tokens, done)])
            )
            done += tokens
        if len(self._prefill_time_cache) >= self._PREFILL_CACHE_LIMIT:
            self._prefill_time_cache.clear()
        self._prefill_time_cache[key] = total
        return total

    def seconds_per_prefill_token(self, chunk_size: int = 512) -> float:
        """Marginal prefill cost per token at a reference chunk size.

        A cheap linearization used by priority functions (Eqs. 4-5 use
        alpha in ms/token against remaining token counts).
        """
        shape = BatchShape(prefill_chunks=[PrefillChunk(chunk_size, 0)])
        return self.batch_time(shape) / chunk_size

    def peak_prefill_throughput(self, chunk_size: int) -> float:
        """Prefill tokens/s when running chunks of ``chunk_size`` alone."""
        shape = BatchShape(prefill_chunks=[PrefillChunk(chunk_size, 0)])
        return chunk_size / self.batch_time(shape)
