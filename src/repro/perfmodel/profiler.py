"""Vidur-style profiling harness.

The paper trains its batch-latency predictor "on latency profiles of
MLP and attention operation collected at varying chunk sizes, batch
sizes as well as context lengths ... using a lightweight harness
exposed by an inference simulator Vidur" (Section 3.6.1).  Here the
:class:`~repro.perfmodel.execution.ExecutionModel` is the thing being
profiled: the harness sweeps (chunk size, decode batch size, context
length) grids, optionally perturbs the measurements with multiplicative
noise to emulate real measurement jitter, and emits feature/latency
samples the random forest trains on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.execution import BatchShape, ExecutionModel, PrefillChunk

#: Feature vector layout shared by the profiler and the predictor:
#: [prefill_tokens, prefill_context_before, num_decodes, decode_context_total]
FEATURE_NAMES = (
    "prefill_tokens",
    "prefill_context_before",
    "num_decodes",
    "decode_context_total",
)


@dataclass(frozen=True)
class ProfileSample:
    """One profiled batch: features plus measured latency (seconds)."""

    prefill_tokens: int
    prefill_context_before: int
    num_decodes: int
    decode_context_total: int
    latency: float

    def features(self) -> tuple[float, float, float, float]:
        return (
            float(self.prefill_tokens),
            float(self.prefill_context_before),
            float(self.num_decodes),
            float(self.decode_context_total),
        )


def batch_features(shape: BatchShape) -> tuple[float, float, float, float]:
    """Map a :class:`BatchShape` to the predictor's feature vector."""
    context_before = sum(c.context_before for c in shape.prefill_chunks)
    return (
        float(shape.prefill_tokens),
        float(context_before),
        float(shape.num_decodes),
        float(shape.decode_context_total),
    )


class Profiler:
    """Sweeps the execution model over batch-shape grids."""

    DEFAULT_CHUNK_SIZES = (0, 32, 64, 96, 128, 192, 256, 320, 384, 448,
                           512, 640, 768, 896, 1024, 1280, 1536, 1792,
                           2048, 2304, 2560, 2816, 3072, 3584, 4096)
    DEFAULT_BATCH_SIZES = (0, 1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256)
    DEFAULT_CONTEXTS = (0, 256, 512, 1024, 2048, 4096, 8192)

    def __init__(
        self,
        execution_model: ExecutionModel,
        noise_std: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        """Args:
        execution_model: The deployment to profile.
        noise_std: Relative std-dev of multiplicative lognormal noise
            applied to latencies, emulating measurement jitter.
        rng: Source of noise randomness (required if noise_std > 0).
        """
        self.execution_model = execution_model
        self.noise_std = float(noise_std)
        if self.noise_std > 0 and rng is None:
            raise ValueError("noise_std > 0 requires an rng")
        self._rng = rng

    def _measure(self, shape: BatchShape) -> float:
        latency = self.execution_model.batch_time(shape)
        if self.noise_std > 0 and self._rng is not None:
            latency *= float(
                np.exp(self._rng.normal(0.0, self.noise_std))
            )
        return latency

    def collect(
        self,
        chunk_sizes: tuple[int, ...] | None = None,
        batch_sizes: tuple[int, ...] | None = None,
        contexts: tuple[int, ...] | None = None,
    ) -> list[ProfileSample]:
        """Profile the full (chunk, batch, context) grid.

        Empty batches (no prefill and no decodes) are skipped.  Decode
        context per request is taken from the ``contexts`` grid, as is
        the prefill chunk's prior context.
        """
        chunk_sizes = chunk_sizes or self.DEFAULT_CHUNK_SIZES
        batch_sizes = batch_sizes or self.DEFAULT_BATCH_SIZES
        contexts = contexts or self.DEFAULT_CONTEXTS

        samples: list[ProfileSample] = []
        for chunk in chunk_sizes:
            for batch in batch_sizes:
                if chunk == 0 and batch == 0:
                    continue
                for ctx in contexts:
                    chunks = (
                        [PrefillChunk(tokens=chunk, context_before=ctx)]
                        if chunk > 0
                        else []
                    )
                    decode_context_total = batch * max(ctx, 1)
                    shape = BatchShape(
                        prefill_chunks=chunks,
                        num_decodes=batch,
                        decode_context_total=decode_context_total,
                    )
                    samples.append(
                        ProfileSample(
                            prefill_tokens=chunk,
                            prefill_context_before=ctx if chunk > 0 else 0,
                            num_decodes=batch,
                            decode_context_total=decode_context_total,
                            latency=self._measure(shape),
                        )
                    )
        return samples

    def to_arrays(
        self, samples: list[ProfileSample]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack samples into (X, y) matrices for model training."""
        x = np.array([s.features() for s in samples], dtype=np.float64)
        y = np.array([s.latency for s in samples], dtype=np.float64)
        return x, y
