"""The QoServe scheduler (Section 3, Algorithm 1).

Each iteration:

1. **Hybrid prioritization** orders the prefill queue by the EDF/SRPF
   interpolation of Eqs. 4-5, with load-adaptive alpha tuning.
2. **Eager relegation** demotes requests that have violated — or are
   about to violate — their TTFT/TTLT deadline, preferring free-tier
   victims via application hints; relegated work sorts behind all
   non-relegated work and completes opportunistically.
3. **Dynamic chunking** converts the minimum decode slack into the
   largest prefill token budget the batch-latency predictor deems safe.
4. **Selective preemption** lets a higher-priority arrival take the
   prefill slot of an in-flight request, but never preempts decodes
   and never when the delay would itself cause a violation (such
   requests are pinned to the queue front for one iteration).

Every technique can be toggled via :class:`QoServeConfig`, which is how
the Table 5 ablation is produced.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.chunking import DynamicChunker
from repro.core.decode_estimator import (
    DecodeLengthEstimator,
    HistoryDecodeEstimator,
)
from repro.core.predictor import (
    BatchLatencyPredictor,
    OracleBatchPredictor,
    cached_forest_predictor,
)
from repro.core.priority import MS_PER_TOKEN, HybridPriority, LoadAdaptiveAlpha
from repro.core.relegation import RelegationPolicy, ViolationChecker
from repro.core.request import Request
from repro.engine.batch import PrefillAssignment
from repro.engine.interface import EngineView
from repro.obs.observer import Observer
from repro.obs.timing import timed
from repro.perfmodel.execution import ExecutionModel
from repro.schedulers.base import FixedChunkScheduler, pack_prefill_assignments


@dataclass(frozen=True)
class QoServeConfig:
    """Feature toggles and tuning knobs for :class:`QoServeScheduler`.

    Attributes:
        dynamic_chunking: Enable slack-driven chunk sizing (Sec. 3.3).
        eager_relegation: Enable the relegation policy (Sec. 3.4).
        hybrid_prioritization: Enable the alpha-weighted SRPF term;
            when False the priority degenerates to pure EDF.
        selective_preemption: Pin in-flight prefills that one more
            iteration of delay would push past their deadline.
        use_hints: Let relegation prefer free-tier victims.
        alpha: Fixed alpha in seconds/token; ``None`` enables the
            load-adaptive tuning of Section 3.6.
        fixed_chunk_size: Token budget when dynamic chunking is off.
        min_chunk_size / max_chunk_size: Dynamic chunking bounds (the
            paper saturates throughput at 2500, Figure 4).
        use_forest_predictor: Predict batch latency with the trained
            random forest (paper's design); False uses the oracle.
        predictor_quantile: Conservative aggregation quantile for the
            forest (Section 3.6.1's under-prediction tuning).
        kv_start_watermark: Admission watermark inherited from the
            base scheduler.
        pressure_horizon: Seconds of queue backlog treated as pressure
            1.0 by the load-adaptive alpha.
        replan_interval: Iterations between full queue re-sorts and
            relegation scans.  Priority scores only move with arrivals,
            chunk progress and (slow) alpha drift, so re-planning every
            iteration is wasted work; arrivals force a re-plan anyway.
    """

    dynamic_chunking: bool = True
    eager_relegation: bool = True
    hybrid_prioritization: bool = True
    selective_preemption: bool = True
    use_hints: bool = True
    alpha: float | None = None
    fixed_chunk_size: int = 256
    min_chunk_size: int = 32
    max_chunk_size: int = 2500
    use_forest_predictor: bool = True
    predictor_quantile: float | None = 0.75
    kv_start_watermark: float = 0.90
    pressure_horizon: float = 6.0
    replan_interval: int = 8


class QoServeScheduler(FixedChunkScheduler):
    """Algorithm 1: hybrid priority queue + violation check + budget."""

    name = "QoServe"

    def __init__(
        self,
        execution_model: ExecutionModel,
        config: QoServeConfig | None = None,
        decode_estimator: DecodeLengthEstimator | None = None,
        predictor: BatchLatencyPredictor | None = None,
    ) -> None:
        self.config = config or QoServeConfig()
        super().__init__(
            chunk_size=self.config.fixed_chunk_size,
            kv_start_watermark=self.config.kv_start_watermark,
        )
        self.execution_model = execution_model
        self.decode_estimator = decode_estimator or HistoryDecodeEstimator()

        if predictor is None:
            if self.config.use_forest_predictor:
                predictor = cached_forest_predictor(
                    execution_model,
                    quantile=self.config.predictor_quantile,
                )
            else:
                predictor = OracleBatchPredictor(execution_model)
        self.predictor = predictor
        self.chunker = DynamicChunker(
            predictor,
            min_chunk=self.config.min_chunk_size,
            max_chunk=self.config.max_chunk_size,
        )

        # Linearize prefill cost at the throughput the scheduler will
        # actually achieve: the saturated dynamic chunk when dynamic
        # chunking is on, the fixed chunk otherwise.  Over-estimating
        # service here would relegate requests that were still savable.
        reference_chunk = (
            self.config.max_chunk_size
            if self.config.dynamic_chunking
            else self.config.fixed_chunk_size
        )
        seconds_per_token = execution_model.seconds_per_prefill_token(
            reference_chunk
        )
        # Typical iteration latency under the strict tier's chunk; used
        # to linearize decode service time in deadline projections.
        typical_iteration = execution_model.decode_batch_time(48, 48 * 1024)
        self.checker = ViolationChecker(
            seconds_per_prefill_token=seconds_per_token,
            seconds_per_decode_token=max(0.015, typical_iteration),
            decode_estimator=self.decode_estimator,
        )
        self.relegation = RelegationPolicy(
            self.checker, use_hints=self.config.use_hints
        )

        if self.config.hybrid_prioritization:
            if self.config.alpha is not None:
                self._adaptive_alpha = None
                initial_alpha = self.config.alpha
            else:
                self._adaptive_alpha = LoadAdaptiveAlpha()
                initial_alpha = self._adaptive_alpha.alpha
        else:
            self._adaptive_alpha = None
            initial_alpha = 0.0  # pure EDF
        self.hybrid = HybridPriority(
            alpha=initial_alpha, decode_estimator=self.decode_estimator
        )

        self._last_iteration_estimate = typical_iteration
        self.relegation_events = 0
        self._order_cache: list[Request] = []
        self._order_keys: list[float] = []
        self._order_dirty = True
        self._iterations_since_replan = 0

    def set_observer(self, observer: Observer) -> None:
        """Propagate hooks to the chunker and relegation policy so
        their decisions land in the same trace as the scheduler's."""
        super().set_observer(observer)
        self.chunker.observer = observer
        self.relegation.observer = observer

    # --- priority ---------------------------------------------------------

    def priority(self, request: Request, now: float) -> float:
        """Relegated requests sort behind everything (Algorithm 1's
        comparator orders first on drop status, then on Eq. 4/5)."""
        base = self.hybrid.score(request)
        if request.relegated:
            return 1e12 + base
        return base

    # --- planning -----------------------------------------------------------

    def enqueue(self, request: Request, now: float) -> None:
        # QoServe manages its own priority-ordered cache instead of the
        # base class's lazy heap: relegation and load-adaptive alpha
        # re-rank the whole queue, which a heap cannot express.  A new
        # arrival is bisect-inserted into the cached order (its score
        # is stable between the periodic full replans).
        self._member[request.request_id] = request
        if self._order_dirty:
            return
        key = self.priority(request, now)
        index = bisect.bisect_right(self._order_keys, key)
        self._order_keys.insert(index, key)
        self._order_cache.insert(index, request)

    def on_prefill_complete(self, request: Request, now: float) -> None:
        # Departed requests stay in the cached order until the next
        # periodic replan; the packer skips them (no prefill left).
        self._member.pop(request.request_id, None)

    def remove(self, request: Request, now: float) -> None:
        # A withdrawn request may still have prefill work left (crash
        # resets its progress), so the stale cached order would keep
        # offering it to the packer; force a replan to purge it.
        self._member.pop(request.request_id, None)
        self._order_dirty = True

    @timed("qoserve.plan_prefill")
    def plan_prefill(self, view: EngineView) -> list[PrefillAssignment]:
        now = view.now
        if not self._member:
            return []

        self._iterations_since_replan += 1
        if (
            self._order_dirty
            or self._iterations_since_replan >= self.config.replan_interval
        ):
            self._replan(now)

        ordered = self._order_cache
        if self.config.selective_preemption:
            ordered = self._pin_at_risk_inflight(ordered, now)

        budget = self._token_budget(view, ordered)
        if budget <= 0:
            return []
        return pack_prefill_assignments(
            ordered, budget, view, self.kv_start_watermark
        )

    def _replan(self, now: float) -> None:
        """Refresh alpha, the priority order and the relegation plan."""
        self._update_alpha(now)
        keyed = sorted(
            ((self.priority(r, now), r) for r in self._member.values()),
            key=lambda kr: (kr[0], kr[1].request_id),
        )
        if self.config.eager_relegation:
            active = [r for _, r in keyed if not r.relegated]
            plan = self.relegation.plan(active, now)
            if plan.to_relegate:
                for victim in plan.to_relegate:
                    victim.relegated = True
                    victim.relegated_time = now
                    self.relegation_events += 1
                    self.observer.on_relegated(victim, now)
                keyed = sorted(
                    ((self.priority(r, now), r) for r in self._member.values()),
                    key=lambda kr: (kr[0], kr[1].request_id),
                )
        self._order_keys = [k for k, _ in keyed]
        self._order_cache = [r for _, r in keyed]
        self._order_dirty = False
        self._iterations_since_replan = 0

    def _token_budget(
        self, view: EngineView, ordered: list[Request]
    ) -> int:
        if not self.config.dynamic_chunking:
            return max(0, self.chunk_size - len(view.decode_requests))
        head_context = ordered[0].prefill_done if ordered else 0
        decision = self.chunker.prefill_budget(
            view.now,
            view.decode_requests,
            prefill_context_before=head_context,
            decode_context_total=view.decode_context_total,
        )
        self._last_iteration_estimate = decision.predicted_latency
        return decision.prefill_budget

    def _pin_at_risk_inflight(
        self, ordered: list[Request], now: float
    ) -> list[Request]:
        """Selective preemption guard (Section 3.4).

        An in-flight (partially prefilled) request may lose its slot to
        a higher-priority arrival only if the one-iteration delay does
        not push it past its deadline; otherwise it is pinned ahead.
        Only in-flight requests are examined — decodes are never
        preempted by construction (the engine batches all of them).
        """
        horizon = self._last_iteration_estimate
        pinned: list[Request] = []
        pinned_ids: set[int] = set()
        for request in ordered:
            if request.scheduled_first_time is None:
                continue
            if request.prefill_done <= 0 or request.relegated:
                continue
            if request.remaining_prefill <= 0:
                continue
            if self.checker.deadline_slack(request, now) < horizon:
                pinned.append(request)
                pinned_ids.add(request.request_id)
        if not pinned:
            return ordered
        pinned.sort(key=lambda r: self.checker.deadline_slack(r, now))
        rest = [r for r in ordered if r.request_id not in pinned_ids]
        return pinned + rest

    def _update_alpha(self, now: float) -> None:
        if self._adaptive_alpha is None:
            return
        backlog = sum(
            self.checker.prefill_service_time(r)
            for r in self._member.values()
            if not r.relegated
        )
        pressure = backlog / self.config.pressure_horizon
        self.hybrid.alpha = self._adaptive_alpha.update(pressure)

    # --- notifications -----------------------------------------------------

    def on_request_complete(self, request: Request, now: float) -> None:
        self.decode_estimator.observe(request)


def make_ablation_config(
    dynamic_chunking: bool = False,
    eager_relegation: bool = False,
    hybrid_prioritization: bool = False,
    **overrides,
) -> QoServeConfig:
    """Table 5 helper: start from Sarathi-EDF and add techniques.

    With all three flags False the scheduler degenerates to fixed-chunk
    EDF (the ablation baseline); each flag layers one technique on.
    """
    return QoServeConfig(
        dynamic_chunking=dynamic_chunking,
        eager_relegation=eager_relegation,
        hybrid_prioritization=hybrid_prioritization,
        selective_preemption=hybrid_prioritization,
        **overrides,
    )
