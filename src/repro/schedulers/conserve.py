"""ConServe-style binary collocation baseline (Section 5, related work).

ConServe [Qiao et al. 2024] "advocates collocated serving by
prioritizing interactive jobs and adding offline tasks when latency
permits, using reactive preemption during load surges.  However, its
binary interactive-offline classification is inadequate for multi-QoS
scenarios where all requests have definite SLO requirements."

This re-implementation captures that design point on the shared
engine:

* **Binary classes** — interactive requests are served strictly first
  (FCFS within the class); everything else is "offline" background
  work with no deadline awareness at all.
* **Latency-permitting admission** — offline prefill runs only when no
  interactive prefill is pending.
* **Reactive chunking** — with interactive work in flight the chunk
  stays at the latency-safe size; when only offline work remains the
  budget opens up to the throughput chunk (harvesting idle capacity).

What it lacks — by construction, and measurably (see
``experiments.ext_conserve``) — is any notion of the offline tiers'
own TTLT deadlines, so under sustained load Q2's 600 s target is
sacrificed indiscriminately while Q3's 1800 s slack goes unexploited.
"""

from __future__ import annotations

from repro.core.request import Request
from repro.engine.batch import PrefillAssignment
from repro.engine.interface import EngineView
from repro.schedulers.base import FixedChunkScheduler


class ConServeScheduler(FixedChunkScheduler):
    """Interactive-first binary collocation with reactive chunking."""

    name = "ConServe"

    def __init__(
        self,
        interactive_chunk_size: int = 256,
        offline_chunk_size: int = 2048,
        **kwargs,
    ) -> None:
        """Args:
        interactive_chunk_size: Token budget while any interactive
            request is in the system (protects TBT).
        offline_chunk_size: Token budget when only offline work
            remains (throughput harvesting).
        """
        super().__init__(chunk_size=interactive_chunk_size, **kwargs)
        if offline_chunk_size < interactive_chunk_size:
            raise ValueError(
                "offline_chunk_size must be >= interactive_chunk_size"
            )
        self.interactive_chunk_size = int(interactive_chunk_size)
        self.offline_chunk_size = int(offline_chunk_size)

    def priority(self, request: Request, now: float) -> float:
        # Binary class first, arrival order within the class.  The
        # large constant keeps the classes disjoint for any realistic
        # simulated timespan.
        cls = 0.0 if request.is_interactive else 1.0
        return cls * 1e12 + request.arrival_time

    def _interactive_active(self, view: EngineView) -> bool:
        if any(r.is_interactive for r in view.decode_requests):
            return True
        return any(r.is_interactive for r in self._member.values())

    def prefill_token_budget(self, view: EngineView) -> int:
        chunk = (
            self.interactive_chunk_size
            if self._interactive_active(view)
            else self.offline_chunk_size
        )
        return max(0, chunk - len(view.decode_requests))

    def plan_prefill(self, view: EngineView) -> list[PrefillAssignment]:
        # Latency-permitting admission: offline prefill is withheld
        # while interactive prefill is pending (reactive preemption of
        # in-flight offline chunks follows from the class priority).
        assignments = super().plan_prefill(view)
        if any(
            r.is_interactive and r.remaining_prefill > 0
            for r in self._member.values()
        ):
            assignments = [
                a for a in assignments if a.request.is_interactive
            ]
        return assignments
