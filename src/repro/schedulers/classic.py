"""Classic multi-tenant scheduling policies (Section 2.4).

These are the literature baselines the paper analyses in Figure 2 and
evaluates against in Section 4: FCFS, SJF, SRPF and EDF, each realized
as a queue ordering over the shared fixed-chunk Sarathi engine.
"""

from __future__ import annotations

from repro.core.decode_estimator import (
    DecodeLengthEstimator,
    HistoryDecodeEstimator,
)
from repro.core.request import Request
from repro.schedulers.base import FixedChunkScheduler


class FCFSScheduler(FixedChunkScheduler):
    """First-come-first-served: process in arrival order.

    The production default (Sarathi/vLLM); deadline-unaware, so urgent
    requests stall behind non-urgent ones under load.
    """

    name = "FCFS"

    def priority(self, request: Request, now: float) -> float:
        return request.arrival_time


class SJFScheduler(FixedChunkScheduler):
    """Shortest job first, on *estimated total* service demand.

    Job size is the prompt length plus the application's historic
    decode-length estimate weighted by how much slower decode tokens
    are than prefill tokens (each decode token costs a full iteration).
    """

    name = "SJF"

    def __init__(
        self,
        chunk_size: int = 256,
        decode_estimator: DecodeLengthEstimator | None = None,
        decode_token_weight: float = 100.0,
        **kwargs,
    ) -> None:
        super().__init__(chunk_size=chunk_size, **kwargs)
        self.decode_estimator = decode_estimator or HistoryDecodeEstimator()
        self.decode_token_weight = float(decode_token_weight)

    def priority(self, request: Request, now: float) -> float:
        decode_estimate = self.decode_estimator.estimate(request)
        return (
            request.prompt_tokens
            + self.decode_token_weight * decode_estimate
        )

    def on_request_complete(self, request: Request, now: float) -> None:
        self.decode_estimator.observe(request)


class SRPFScheduler(FixedChunkScheduler):
    """Shortest remaining prompt first (preemptive).

    Re-evaluated every iteration, so a long prompt mid-prefill is
    preempted the moment a shorter one arrives — which is exactly the
    unfairness to long jobs that Figure 2(d) documents.
    """

    name = "SRPF"

    def priority(self, request: Request, now: float) -> float:
        return float(request.remaining_prefill)


class EDFScheduler(FixedChunkScheduler):
    """Earliest deadline first on the governing SLO deadline.

    Interactive requests are ordered by their TTFT deadline (Eq. 1),
    non-interactive ones by their TTLT deadline (Eq. 3).  Optimal at
    low load, but collapses once the queue outgrows capacity because
    it keeps serving requests that are already doomed.
    """

    name = "EDF"

    def priority(self, request: Request, now: float) -> float:
        return request.first_token_deadline
