"""Medha's adaptive chunking, re-implemented per Section 4.5.1.

Medha [6] "uses adaptive chunking that starts with large chunks and
progressively shrinks to maintain consistent TBT as attention overhead
increases in later chunked iterations".  Concretely: the per-iteration
token budget is the largest chunk whose predicted latency stays under a
*fixed* TBT target, given the prefill request's current context.  As
context grows, attention gets costlier, so the admitted chunk shrinks.
Unlike QoServe, the budget never grows with accumulated slack — Medha
is unaware of the deadlines of the requests in the batch.

Requests are served FCFS, matching the comparison setup of Figure 15a
("we evaluate QoServe with only dynamic chunking under FCFS scheduling
... compared to Medha's adaptive chunking (also under FCFS)").
"""

from __future__ import annotations

from repro.core.chunking import DynamicChunker
from repro.core.predictor import (
    BatchLatencyPredictor,
    OracleBatchPredictor,
)
from repro.core.request import Request
from repro.engine.batch import PrefillAssignment
from repro.engine.interface import EngineView
from repro.obs.observer import Observer
from repro.perfmodel.execution import ExecutionModel
from repro.schedulers.base import FixedChunkScheduler, pack_prefill_assignments


class MedhaScheduler(FixedChunkScheduler):
    """FCFS ordering with fixed-TBT-target adaptive chunking."""

    name = "Medha"

    def __init__(
        self,
        execution_model: ExecutionModel,
        tbt_target: float = 0.050,
        min_chunk_size: int = 32,
        max_chunk_size: int = 2500,
        predictor: BatchLatencyPredictor | None = None,
        **kwargs,
    ) -> None:
        """Args:
        execution_model: Deployment cost model (for the predictor).
        tbt_target: The fixed per-iteration latency target the chunk
            is fitted to (Medha assumes one TBT SLO for everyone).
        min_chunk_size / max_chunk_size: Chunk bounds.
        predictor: Batch latency predictor; defaults to the oracle.
        """
        super().__init__(chunk_size=max_chunk_size, **kwargs)
        if tbt_target <= 0:
            raise ValueError("tbt_target must be positive")
        self.tbt_target = float(tbt_target)
        self.predictor = predictor or OracleBatchPredictor(execution_model)
        # Reuse the chunk-search machinery, but feed it the fixed
        # target instead of decode slack.
        self._chunker = DynamicChunker(
            self.predictor,
            min_chunk=min_chunk_size,
            max_chunk=max_chunk_size,
        )
        self.chunk_history: list[int] = []

    def set_observer(self, observer: Observer) -> None:
        super().set_observer(observer)
        self._chunker.observer = observer

    def priority(self, request: Request, now: float) -> float:
        return request.arrival_time

    def plan_prefill(self, view: EngineView) -> list[PrefillAssignment]:
        if not self._member:
            return []
        ordered = self._pop_candidates()
        try:
            head_context = ordered[0].prefill_done if ordered else 0
            decision = self._chunker.prefill_budget(
                view.now,
                decode_requests=view.decode_requests,
                prefill_context_before=head_context,
                extra_latency_budget=self.tbt_target,
                ignore_decode_slack=True,
                decode_context_total=view.decode_context_total,
            )
            # Medha ignores slack: cap the budget by the fixed target
            # even when the decode queue could tolerate more.
            budget = decision.prefill_budget
            if budget <= 0:
                return []
            assignments = pack_prefill_assignments(
                ordered, budget, view, self.kv_start_watermark
            )
            if assignments:
                self.chunk_history.append(sum(a.tokens for a in assignments))
            return assignments
        finally:
            for request in ordered:
                if request.request_id in self._member:
                    self._push_entry(request, view.now)
