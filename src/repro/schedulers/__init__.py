"""Scheduling policies.

All policies share the replica engine; they differ only in how the
prefill queue is ordered and how the per-iteration token budget is
chosen — exactly the isolation the paper's evaluation aims for
("evaluate different scheduling policies within the same serving
framework to isolate algorithmic improvements").

Baselines (Section 2.4 / Section 4):

* :class:`FCFSScheduler` — Sarathi with arrival-order prefill.
* :class:`SJFScheduler` — shortest estimated job first.
* :class:`SRPFScheduler` — shortest remaining prompt first.
* :class:`EDFScheduler` — earliest governing deadline first.

The contribution (Section 3):

* :class:`QoServeScheduler` — hybrid prioritization + dynamic
  chunking + eager relegation + selective preemption (Algorithm 1).

Concurrent work re-implemented for Section 4.5:

* :class:`MedhaScheduler` — adaptive chunking against a fixed TBT
  target, FCFS ordered.
"""

from repro.schedulers.base import FixedChunkScheduler
from repro.schedulers.classic import (
    EDFScheduler,
    FCFSScheduler,
    SJFScheduler,
    SRPFScheduler,
)
from repro.schedulers.qoserve import QoServeConfig, QoServeScheduler
from repro.schedulers.medha import MedhaScheduler
from repro.schedulers.conserve import ConServeScheduler

__all__ = [
    "FixedChunkScheduler",
    "EDFScheduler",
    "FCFSScheduler",
    "SJFScheduler",
    "SRPFScheduler",
    "QoServeConfig",
    "QoServeScheduler",
    "MedhaScheduler",
    "ConServeScheduler",
]
