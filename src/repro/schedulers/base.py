"""Shared machinery for queue-ordered, chunk-budgeted schedulers.

:class:`FixedChunkScheduler` implements Sarathi's scheduling contract:
every iteration carries at most ``chunk_size`` tokens *including* the
decode tokens (Section 2.1 — "chunked prefills split a prefill request
into equal-sized chunks"), and the remaining budget is filled with
prompt tokens drawn from the queue in a policy-defined order.
Subclasses supply the ordering via :meth:`priority`.

The queue is a lazy heap: entries are keyed when pushed, and any entry
whose key may have changed (a request that just received a chunk) is
re-pushed with a fresh key.  This keeps per-iteration cost logarithmic
even when overload grows the queue to thousands of requests, where a
sort-per-iteration design would dominate the simulation.
"""

from __future__ import annotations

import heapq
import itertools
from abc import abstractmethod

from repro.core.request import Request
from repro.engine.batch import PrefillAssignment
from repro.engine.interface import EngineView, Scheduler
from repro.obs.timing import timed


def pack_prefill_assignments(
    order: list[Request],
    budget: int,
    view: EngineView,
    kv_start_watermark: float,
) -> list[PrefillAssignment]:
    """Greedily pack prompt tokens from ``order`` into ``budget``.

    Honours decode-slot and KV constraints: a request whose prefill has
    not started (not in ``view.inflight_prefill_ids``) consumes a
    decode slot and is only admitted while KV utilization sits below
    the watermark; every assignment must fit in free KV blocks.
    Unreferenced prefix-cache blocks count as free on both sides of
    the ledger (the ledger's ``grow`` reclaims them on demand) —
    otherwise a cache-full replica would starve its own prefill queue.
    """
    assignments: list[PrefillAssignment] = []
    kv = view.kv_cache
    reclaimable = kv.reclaimable_blocks
    free_blocks = kv.free_blocks + reclaimable
    free_slots = max(
        0,
        view.max_decode_slots
        - len(view.decode_requests)
        - len(view.inflight_prefill_ids),
    )
    watermark_blocks = int(kv_start_watermark * kv.capacity_blocks)
    used_blocks = kv.used_blocks - reclaimable

    assigned: set[int] = set()
    for request in order:
        if budget <= 0:
            break
        remaining = request.remaining_prefill
        if remaining <= 0 or request.request_id in assigned:
            continue
        assigned.add(request.request_id)
        is_new = request.request_id not in view.inflight_prefill_ids
        if is_new:
            if free_slots <= 0:
                continue
            if used_blocks >= watermark_blocks:
                continue
        tokens = min(budget, remaining)
        need = kv.blocks_needed(request.request_id, tokens)
        if need > free_blocks:
            # Shrink to what fits rather than skipping outright.
            fit_tokens = _tokens_fitting(kv, request.request_id, free_blocks)
            tokens = min(tokens, fit_tokens)
            if tokens <= 0:
                continue
            need = kv.blocks_needed(request.request_id, tokens)
        assignments.append(PrefillAssignment(request, tokens))
        budget -= tokens
        free_blocks -= need
        used_blocks += need
        if is_new:
            free_slots -= 1
    return assignments


def _tokens_fitting(kv, request_id: int, free_blocks: int) -> int:
    """Largest token growth for ``request_id`` within ``free_blocks``."""
    held = kv.holding(request_id)
    slack_in_block = (-held) % kv.block_size
    return slack_in_block + free_blocks * kv.block_size


class FixedChunkScheduler(Scheduler):
    """Sarathi-style fixed token budget with pluggable queue ordering."""

    name = "fixed-chunk"

    #: Queue entries examined per iteration before giving up.  Bounds
    #: the cost of skipping inadmissible (slot/KV-blocked) requests.
    MAX_EXAMINED = 64

    def __init__(
        self,
        chunk_size: int = 256,
        kv_start_watermark: float = 0.90,
    ) -> None:
        """Args:
        chunk_size: Total tokens per iteration (prefill + decode).
            The paper's shared-cluster baselines use 256 to satisfy the
            strictest 50 ms TBT tier; throughput silos use 2048.
        kv_start_watermark: New requests begin prefilling only while
            KV utilization is below this, leaving headroom for decode
            growth (vLLM's watermark admission).
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if not 0.0 < kv_start_watermark <= 1.0:
            raise ValueError("kv_start_watermark must be in (0, 1]")
        self.chunk_size = int(chunk_size)
        self.kv_start_watermark = float(kv_start_watermark)
        # Lazy-deletion heap: each queued request has exactly one live
        # entry; re-keying invalidates the old entry in place and
        # pushes a fresh one.  Entries are [key, seq, request, valid].
        self._heap: list[list] = []
        self._entry: dict[int, list] = {}
        self._member: dict[int, Request] = {}
        self._seq = itertools.count()

    # --- queue maintenance --------------------------------------------------

    def _push_entry(self, request: Request, now: float) -> None:
        old = self._entry.get(request.request_id)
        if old is not None:
            old[3] = False
        entry = [self.priority(request, now), next(self._seq), request, True]
        self._entry[request.request_id] = entry
        heapq.heappush(self._heap, entry)

    # --- Scheduler contract ------------------------------------------------

    def enqueue(self, request: Request, now: float) -> None:
        self._member[request.request_id] = request
        self._push_entry(request, now)

    def has_pending_prefill(self) -> bool:
        return bool(self._member)

    def pending_requests(self) -> list[Request]:
        return list(self._member.values())

    def queue_length(self) -> int:
        return len(self._member)

    def on_prefill_complete(self, request: Request, now: float) -> None:
        self._member.pop(request.request_id, None)
        entry = self._entry.pop(request.request_id, None)
        if entry is not None:
            entry[3] = False

    @abstractmethod
    def priority(self, request: Request, now: float) -> float:
        """Ordering key; lower runs first."""

    # --- planning ------------------------------------------------------------

    def prefill_token_budget(self, view: EngineView) -> int:
        """Prompt tokens allowed this iteration under the fixed chunk."""
        return max(0, self.chunk_size - len(view.decode_requests))

    @timed("scheduler.plan_prefill")
    def plan_prefill(self, view: EngineView) -> list[PrefillAssignment]:
        budget = self.prefill_token_budget(view)
        if budget <= 0 or not self._member:
            return []
        order = self._pop_candidates()
        assignments = pack_prefill_assignments(
            order, budget, view, self.kv_start_watermark
        )
        # Re-queue everything examined: keys may be stale after chunk
        # progress, and skipped requests must stay in the queue.
        for request in order:
            if request.request_id in self._member:
                self._push_entry(request, view.now)
        return assignments

    def _pop_candidates(self) -> list[Request]:
        """Pop up to MAX_EXAMINED live queue entries in key order.

        Invalidated entries (re-keys, departures) are discarded lazily.
        """
        candidates: list[Request] = []
        while self._heap and len(candidates) < self.MAX_EXAMINED:
            entry = heapq.heappop(self._heap)
            if not entry[3]:
                continue
            entry[3] = False
            request = entry[2]
            self._entry.pop(request.request_id, None)
            candidates.append(request)
        return candidates
