"""QoServe's core abstractions.

This package holds the paper's primary contribution, independent of the
serving engine that hosts it:

* :mod:`repro.core.qos` — fine-grained QoS classes and per-token
  deadlines (Section 3.2, Eqs. 1-3).
* :mod:`repro.core.request` — the request lifecycle shared by every
  scheduler.
* :mod:`repro.core.decode_estimator` — per-application decode-length
  history with the mean + 2 sigma over-approximation (Section 3.4).
* :mod:`repro.core.priority` — the hybrid EDF/SRPF priority
  (Section 3.4, Eqs. 4-5) and load-adaptive alpha tuning.
* :mod:`repro.core.predictor` — batch latency predictors (analytical
  oracle and the trained random forest of Section 3.6.1).
* :mod:`repro.core.chunking` — dynamic chunk sizing from decode slack.
* :mod:`repro.core.relegation` — violation checking and eager
  relegation with application hints (Section 3.4).
"""

from repro.core.qos import (
    DEFAULT_TIERS,
    Q1_INTERACTIVE,
    Q2_RELAXED,
    Q3_BATCH,
    QoSClass,
    QoSSpec,
)
from repro.core.request import Request, RequestPhase
from repro.core.decode_estimator import (
    DecodeLengthEstimator,
    HistoryDecodeEstimator,
    OracleDecodeEstimator,
    StaticDecodeEstimator,
)
from repro.core.priority import (
    HybridPriority,
    LoadAdaptiveAlpha,
    MS_PER_TOKEN,
)
from repro.core.predictor import (
    BatchLatencyPredictor,
    ForestBatchPredictor,
    OracleBatchPredictor,
)
from repro.core.chunking import ChunkDecision, DynamicChunker
from repro.core.relegation import RelegationPolicy, ViolationChecker

__all__ = [
    "DEFAULT_TIERS",
    "Q1_INTERACTIVE",
    "Q2_RELAXED",
    "Q3_BATCH",
    "QoSClass",
    "QoSSpec",
    "Request",
    "RequestPhase",
    "DecodeLengthEstimator",
    "HistoryDecodeEstimator",
    "OracleDecodeEstimator",
    "StaticDecodeEstimator",
    "HybridPriority",
    "LoadAdaptiveAlpha",
    "MS_PER_TOKEN",
    "BatchLatencyPredictor",
    "ForestBatchPredictor",
    "OracleBatchPredictor",
    "ChunkDecision",
    "DynamicChunker",
    "RelegationPolicy",
    "ViolationChecker",
]
