"""Violation checking and eager relegation (Section 3.4).

The violation checker answers "has this request already violated, or
will it violate, its TTFT/TTLT deadline?" using cheap linearized
service-time estimates.  The relegation policy runs a feasibility scan
over the priority-ordered prefill queue each scheduling round and
demotes the *minimal* set of requests needed to keep the rest on time:

1. Low-priority (free-tier) requests standing in front of an important
   request that would otherwise miss its deadline are demoted first,
   largest remaining work first.
2. Requests whose own deadline is unreachable even if served
   immediately are demoted regardless of priority — keeping them in
   the main queue only cascades violations onto others (Figure 5).

Relegated requests are never rejected: they sort behind all
non-relegated work and complete opportunistically during lulls.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.decode_estimator import DecodeLengthEstimator
from repro.core.request import Request
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.timing import timed


class ViolationChecker:
    """Projects deadlines using linearized service-time estimates."""

    def __init__(
        self,
        seconds_per_prefill_token: float,
        seconds_per_decode_token: float = 0.030,
        decode_estimator: DecodeLengthEstimator | None = None,
    ) -> None:
        """Args:
        seconds_per_prefill_token: Marginal prefill cost (from
            :meth:`ExecutionModel.seconds_per_prefill_token`).
        seconds_per_decode_token: Expected iteration latency — each
            decode token costs one iteration of wall-clock time.
        decode_estimator: Decode-length source for TTLT projections;
            ``None`` falls back to the ground-truth length.
        """
        if seconds_per_prefill_token <= 0 or seconds_per_decode_token <= 0:
            raise ValueError("per-token costs must be positive")
        self.seconds_per_prefill_token = float(seconds_per_prefill_token)
        self.seconds_per_decode_token = float(seconds_per_decode_token)
        self.decode_estimator = decode_estimator

    def prefill_service_time(self, request: Request) -> float:
        """Estimated time to finish the request's remaining prefill."""
        return request.remaining_prefill * self.seconds_per_prefill_token

    def decode_service_time(self, request: Request) -> float:
        """Estimated time to produce the request's remaining tokens."""
        if self.decode_estimator is not None:
            estimate = self.decode_estimator.estimate(request)
            remaining = max(0.0, estimate - request.decoded)
        else:
            remaining = float(request.remaining_decode)
        return remaining * self.seconds_per_decode_token

    def deadline_slack(self, request: Request, now: float) -> float:
        """Headroom before the request's governing deadline.

        Interactive: TTFT deadline minus now minus remaining prefill.
        Non-interactive: TTLT deadline minus now minus remaining
        prefill and estimated decode time.  Negative slack means the
        deadline is unreachable even with immediate service.
        """
        if request.is_interactive:
            deadline = request.first_token_deadline
            service = self.prefill_service_time(request)
        else:
            deadline = request.total_deadline
            service = self.prefill_service_time(
                request
            ) + self.decode_service_time(request)
        return deadline - now - service

    def will_violate(
        self, request: Request, now: float, queue_delay: float = 0.0
    ) -> bool:
        """True if the deadline is missed assuming ``queue_delay`` wait."""
        return self.deadline_slack(request, now) < queue_delay


@dataclass
class RelegationPlan:
    """Outcome of one relegation scan."""

    to_relegate: list[Request] = field(default_factory=list)
    important_saved: int = 0
    scanned: int = 0


class RelegationPolicy:
    """Eager relegation with application hints (Section 3.4)."""

    def __init__(
        self,
        checker: ViolationChecker,
        use_hints: bool = True,
        max_scan: int = 2048,
    ) -> None:
        """Args:
        checker: Deadline projector shared with the scheduler.
        use_hints: Honour the important/free-tier hint.  When False,
            only hopeless requests are demoted (the no-hints mode used
            in single-tenant experiments).
        max_scan: Cap on queue positions examined per round; requests
            deeper than this are revisited as they advance.
        """
        self.checker = checker
        self.use_hints = use_hints
        self.max_scan = int(max_scan)
        #: Observability hooks; each scan reports its outcome via
        #: :meth:`Observer.on_relegation_scan` (no-op by default).
        self.observer: Observer = NULL_OBSERVER

    @timed("relegation.plan")
    def plan(self, queue: list[Request], now: float) -> RelegationPlan:
        """Select the requests to demote from a priority-ordered queue.

        Walks the queue front-to-back accumulating projected service
        time.  A low-priority request projected to violate is demoted
        on the spot.  When an *important* request is projected to
        violate, preceding low-priority requests (largest service
        first) are demoted until the important one fits; if it still
        cannot fit and its own deadline is already unreachable, it too
        is demoted to stop the cascade.
        """
        plan = RelegationPlan()
        removed: set[int] = set()
        cumulative = 0.0
        # Max-heap (by service time) of demotable low-priority requests
        # seen so far and not yet removed.
        demotable: list[tuple[float, int, Request]] = []

        for position, request in enumerate(queue):
            if position >= self.max_scan:
                break
            plan.scanned += 1
            service = self.checker.prefill_service_time(request)
            slack = self.checker.deadline_slack(request, now)
            projected_wait = cumulative

            if projected_wait <= slack:
                # On time; low-priority requests become candidates for
                # later demotion in favour of important ones.
                cumulative += service
                if self.use_hints and not request.important:
                    heapq.heappush(
                        demotable, (-service, request.request_id, request)
                    )
                continue

            if not request.important and self.use_hints:
                # A violating free-tier request: demote immediately.
                plan.to_relegate.append(request)
                removed.add(request.request_id)
                continue

            # Important (or hints disabled): try to save it by demoting
            # queued low-priority work ahead of it.
            saved = False
            while demotable and projected_wait > slack:
                neg_service, _, victim = heapq.heappop(demotable)
                if victim.request_id in removed:
                    continue
                plan.to_relegate.append(victim)
                removed.add(victim.request_id)
                projected_wait += neg_service  # neg_service is negative
                cumulative += neg_service
                saved = True
            if projected_wait <= slack:
                if saved:
                    plan.important_saved += 1
                cumulative += service
                continue

            # Still violating.  If its own deadline is unreachable even
            # with immediate service, demote it; otherwise leave it in
            # place — it may still be saved by completions ahead of it.
            if slack < 0.0:
                plan.to_relegate.append(request)
                removed.add(request.request_id)
            else:
                cumulative += service
        self.observer.on_relegation_scan(now, plan)
        return plan
