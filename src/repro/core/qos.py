"""QoS classes, SLOs and deadline arithmetic (Section 3.2).

QoServe defines two QoS *classes* — interactive and non-interactive —
while letting each application pick its own SLO targets inside the
class.  Interactive requests carry a TTFT SLO and a TBT SLO; their
deadlines follow Eqs. 1-2 of the paper.  Non-interactive requests carry
a single TTLT SLO (Eq. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class QoSClass(enum.Enum):
    """The two QoS classes of Section 3.2."""

    INTERACTIVE = "interactive"
    NON_INTERACTIVE = "non-interactive"


@dataclass(frozen=True)
class QoSSpec:
    """An application's QoS bucket: class plus concrete SLO targets.

    Attributes:
        name: Bucket label (e.g. "Q1").
        qos_class: Interactive or non-interactive.
        ttft_slo: Time-to-first-token target in seconds (interactive).
        tbt_slo: Time-between-tokens target in seconds (interactive).
        ttlt_slo: Time-to-last-token target in seconds (non-interactive).
    """

    name: str
    qos_class: QoSClass
    ttft_slo: float | None = None
    tbt_slo: float | None = None
    ttlt_slo: float | None = None

    def __post_init__(self) -> None:
        if self.qos_class is QoSClass.INTERACTIVE:
            if self.ttft_slo is None or self.tbt_slo is None:
                raise ValueError(
                    f"{self.name}: interactive tiers need ttft_slo and tbt_slo"
                )
            if self.ttft_slo <= 0 or self.tbt_slo <= 0:
                raise ValueError(f"{self.name}: SLOs must be positive")
        else:
            if self.ttlt_slo is None:
                raise ValueError(
                    f"{self.name}: non-interactive tiers need ttlt_slo"
                )
            if self.ttlt_slo <= 0:
                raise ValueError(f"{self.name}: SLOs must be positive")

    @property
    def is_interactive(self) -> bool:
        return self.qos_class is QoSClass.INTERACTIVE

    def first_token_deadline(self, arrival_time: float) -> float:
        """Eq. 1 for interactive tiers; Eq. 3 otherwise.

        Non-interactive tiers have no first-token deadline of their
        own, so the completion deadline doubles as the latest
        acceptable first-token time.
        """
        if self.is_interactive:
            assert self.ttft_slo is not None
            return arrival_time + self.ttft_slo
        assert self.ttlt_slo is not None
        return arrival_time + self.ttlt_slo

    def token_deadline(self, arrival_time: float, token_index: int) -> float:
        """Deadline for the ``token_index``-th output token (1-based).

        Interactive: Eq. 2, ``arrival + TTFT + (n - 1) * TBT``.
        Non-interactive: every token shares the TTLT deadline (Eq. 3).
        """
        if token_index < 1:
            raise ValueError(f"token_index is 1-based, got {token_index}")
        if self.is_interactive:
            assert self.ttft_slo is not None and self.tbt_slo is not None
            return (
                arrival_time
                + self.ttft_slo
                + (token_index - 1) * self.tbt_slo
            )
        assert self.ttlt_slo is not None
        return arrival_time + self.ttlt_slo

    def total_deadline(
        self, arrival_time: float, num_output_tokens: int
    ) -> float:
        """Deadline for the final output token."""
        return self.token_deadline(arrival_time, max(1, num_output_tokens))


#: Table 3: Q1 interactive, TTFT 6 s / TBT 50 ms.
Q1_INTERACTIVE = QoSSpec(
    name="Q1",
    qos_class=QoSClass.INTERACTIVE,
    ttft_slo=6.0,
    tbt_slo=0.050,
)

#: Table 3: Q2 non-interactive, TTLT 600 s.
Q2_RELAXED = QoSSpec(
    name="Q2",
    qos_class=QoSClass.NON_INTERACTIVE,
    ttlt_slo=600.0,
)

#: Table 3: Q3 non-interactive, TTLT 1800 s.
Q3_BATCH = QoSSpec(
    name="Q3",
    qos_class=QoSClass.NON_INTERACTIVE,
    ttlt_slo=1800.0,
)

#: The three-tier preset used throughout the paper's evaluation.
DEFAULT_TIERS: tuple[QoSSpec, ...] = (Q1_INTERACTIVE, Q2_RELAXED, Q3_BATCH)
