"""Batch latency predictors used by dynamic chunking (Section 3.6.1).

Two implementations share one interface:

* :class:`OracleBatchPredictor` — queries the analytical execution
  model directly.  In a simulation study this is "perfect profiling";
  it serves as the ablation upper bound.
* :class:`ForestBatchPredictor` — the paper's deployed design: a
  random forest trained on Vidur-style profiles, evaluated on the CPU
  with <10% error, optionally biased towards over-predicting latency
  so chunk sizes err small.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.forest import RandomForestRegressor
from repro.perfmodel.execution import BatchShape, ExecutionModel
from repro.perfmodel.profiler import Profiler, batch_features


class BatchLatencyPredictor(ABC):
    """Predicts execution time (seconds) of a candidate batch."""

    @abstractmethod
    def predict(self, shape: BatchShape) -> float:
        """Estimated latency of one iteration running ``shape``."""


class OracleBatchPredictor(BatchLatencyPredictor):
    """Zero-error predictor wrapping the ground-truth execution model."""

    def __init__(self, execution_model: ExecutionModel) -> None:
        self.execution_model = execution_model

    def predict(self, shape: BatchShape) -> float:
        return self.execution_model.batch_time(shape)


class ForestBatchPredictor(BatchLatencyPredictor):
    """Random-forest predictor trained on profiler samples.

    Args:
        forest: A fitted :class:`RandomForestRegressor` over the
            feature layout of :mod:`repro.perfmodel.profiler`.
        quantile: Aggregation quantile across trees.  Values above 0.5
            bias the predictor towards larger latency estimates — the
            "err on the side of under-predicting chunk size" tuning.
    """

    #: Feature-bucketing granularity for the prediction memo.  The
    #: forest is piecewise constant, so nearby inputs share leaves;
    #: rounding decode context and batch size before lookup turns the
    #: scheduler's inner-loop predictions into dictionary hits.
    MEMO_BUCKETS = (32, 256, 8, 16384)
    MEMO_LIMIT = 200_000

    def __init__(
        self,
        forest: RandomForestRegressor,
        quantile: float | None = 0.75,
        safety_factor: float = 1.10,
        memoize: bool = True,
    ) -> None:
        """Args:
        forest: Fitted forest over the profiler's feature layout.
        quantile: Per-sample aggregation quantile across trees.
        safety_factor: Multiplier on predictions.  Tree leaves are
            piecewise constant over chunk-size ranges, so a raw
            prediction systematically under-estimates the top of each
            leaf; inflating it keeps the chunker's inversion on the
            safe (small-chunk) side — the paper's under-prediction
            tuning.
        memoize: Cache predictions at bucketed feature keys.
        """
        if not forest.is_fitted:
            raise ValueError("forest must be fitted")
        if quantile is not None and not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if safety_factor <= 0:
            raise ValueError("safety_factor must be positive")
        self.forest = forest
        self.quantile = quantile
        self.safety_factor = float(safety_factor)
        self.memoize = memoize
        self._memo: dict[tuple[float, ...], float] = {}

    def predict(self, shape: BatchShape) -> float:
        features = batch_features(shape)
        if not self.memoize:
            return self.safety_factor * self.forest.predict_one(
                features, quantile=self.quantile
            )
        # Round *up* to the bucket edge: the memoized prediction then
        # corresponds to a batch at least as heavy as the real one,
        # keeping the memo on the conservative side of the SLO.
        key = tuple(
            bucket * -(-value // bucket)
            for value, bucket in zip(features, self.MEMO_BUCKETS)
        )
        cached = self._memo.get(key)
        if cached is None:
            if len(self._memo) >= self.MEMO_LIMIT:
                self._memo.clear()
            cached = self.safety_factor * self.forest.predict_one(
                key, quantile=self.quantile
            )
            self._memo[key] = cached
        return cached

    @classmethod
    def train(
        cls,
        execution_model: ExecutionModel,
        quantile: float | None = 0.75,
        n_trees: int = 16,
        max_depth: int = 14,
        noise_std: float = 0.0,
        seed: int = 0,
    ) -> "ForestBatchPredictor":
        """Profile ``execution_model`` and fit a forest on the samples.

        This is the full Section 3.6.1 pipeline: collect latency
        profiles at varying chunk sizes, batch sizes and context
        lengths, then train the forest.  ``noise_std`` injects
        measurement jitter into the profiles for robustness studies.
        """
        rng = np.random.default_rng(seed) if noise_std > 0 else None
        profiler = Profiler(execution_model, noise_std=noise_std, rng=rng)
        samples = profiler.collect()
        x, y = profiler.to_arrays(samples)
        forest = RandomForestRegressor(
            n_trees=n_trees, max_depth=max_depth, seed=seed
        )
        forest.fit(x, y)
        return cls(forest, quantile=quantile)

    def validation_error(self, execution_model: ExecutionModel) -> float:
        """Mean relative error against the oracle on a shifted grid.

        Evaluates on chunk/batch/context points *between* the training
        grid's knots, which is the honest generalization check.
        """
        profiler = Profiler(execution_model)
        samples = profiler.collect(
            chunk_sizes=(48, 96, 320, 640, 1280, 2304, 3584),
            batch_sizes=(3, 6, 12, 24, 48, 160),
            contexts=(384, 768, 1536, 3072, 6144),
        )
        x, y = profiler.to_arrays(samples)
        return self.forest.mean_relative_error(x, y)


# Profiling + training takes a few CPU-seconds per deployment; within a
# process (an experiment sweep) the result is deterministic, so cache it.
_FOREST_CACHE: dict[tuple, ForestBatchPredictor] = {}


def cached_forest_predictor(
    execution_model: ExecutionModel,
    quantile: float | None = 0.75,
    seed: int = 0,
) -> ForestBatchPredictor:
    """Train-once-per-deployment accessor for the forest predictor."""
    key = (
        execution_model.model.name,
        execution_model.hardware.name,
        execution_model.tp_degree,
        quantile,
        seed,
    )
    if key not in _FOREST_CACHE:
        _FOREST_CACHE[key] = ForestBatchPredictor.train(
            execution_model, quantile=quantile, seed=seed
        )
    return _FOREST_CACHE[key]
