"""Hybrid EDF/SRPF prioritization (Section 3.4, Eqs. 4-5).

The priority of a request is a timestamp-like score in seconds; lower
is more urgent.  With ``alpha = 0`` the score is the TTFT/TTLT deadline
and the policy degenerates to EDF; as ``alpha`` grows, remaining-work
terms dominate and the policy behaves like SRPF, shedding long jobs
first under overload.  The paper's deployed values: 8 ms/token for
fixed-QPS runs, 1 ms/token at low load with load-adaptive tuning for
variable-QPS runs.
"""

from __future__ import annotations

from repro.core.decode_estimator import DecodeLengthEstimator
from repro.core.request import Request

#: Convenience unit: alpha values in the paper are quoted in ms/token.
MS_PER_TOKEN = 1.0e-3


class HybridPriority:
    """Computes the hybrid priority score of Eqs. 4-5.

    Interactive (Eq. 4)::

        P = arrival + SLO_TTFT + alpha * prefill_remaining

    Non-interactive (Eq. 5)::

        P = arrival + SLO_TTLT + alpha * (prefill_remaining
                                          + decode_remaining_estimate)

    ``alpha`` is expressed in seconds per token.
    """

    def __init__(
        self,
        alpha: float = 8.0 * MS_PER_TOKEN,
        decode_estimator: DecodeLengthEstimator | None = None,
    ) -> None:
        """Args:
        alpha: Interpolation weight in seconds/token; 0 gives EDF.
        decode_estimator: Source of decode-length estimates for
            non-interactive requests.  ``None`` means decode work is
            ignored (prefill-only SRPF term).
        """
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.decode_estimator = decode_estimator

    def score(self, request: Request) -> float:
        """Priority score in seconds; lower means schedule sooner."""
        if request.is_interactive:
            deadline = request.first_token_deadline
            work = float(request.remaining_prefill)
        else:
            deadline = request.first_token_deadline  # arrival + TTLT
            work = float(request.remaining_prefill)
            if self.decode_estimator is not None:
                estimate = self.decode_estimator.estimate(request)
                work += max(0.0, estimate - request.decoded)
        return deadline + self.alpha * work


class LoadAdaptiveAlpha:
    """Load-adaptive tuning of alpha (Section 3.6).

    At low load small alpha keeps tail latency low (EDF-like, fair to
    long jobs); at high load large alpha sheds long work (SRPF-like).
    Load is summarized by queue *pressure*: the ratio of queued prefill
    work to the scheduling headroom of the strictest queued deadline.
    The instantaneous pressure is smoothed with an EMA so alpha does
    not thrash between iterations.
    """

    def __init__(
        self,
        alpha_low: float = 1.0 * MS_PER_TOKEN,
        alpha_high: float = 8.0 * MS_PER_TOKEN,
        pressure_low: float = 0.5,
        pressure_high: float = 2.0,
        smoothing: float = 0.1,
    ) -> None:
        """Args:
        alpha_low: Alpha when the system is underloaded (paper: 1 ms).
        alpha_high: Alpha under overload (paper's offline-swept 8 ms).
        pressure_low: Pressure at or below which alpha_low applies.
        pressure_high: Pressure at or above which alpha_high applies.
        smoothing: EMA coefficient applied to pressure updates.
        """
        if alpha_low < 0 or alpha_high < alpha_low:
            raise ValueError("need 0 <= alpha_low <= alpha_high")
        if pressure_high <= pressure_low:
            raise ValueError("need pressure_low < pressure_high")
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.alpha_low = alpha_low
        self.alpha_high = alpha_high
        self.pressure_low = pressure_low
        self.pressure_high = pressure_high
        self.smoothing = smoothing
        self._pressure = 0.0
        #: Largest smoothed pressure seen (diagnostics: the EMA decays
        #: during the drain, so end-of-run pressure understates what
        #: the controller experienced).
        self.peak_pressure = 0.0

    @property
    def pressure(self) -> float:
        """Smoothed queue-pressure estimate."""
        return self._pressure

    def update(self, instantaneous_pressure: float) -> float:
        """Fold one pressure observation in and return current alpha."""
        if instantaneous_pressure < 0:
            raise ValueError("pressure must be non-negative")
        self._pressure += self.smoothing * (
            instantaneous_pressure - self._pressure
        )
        if self._pressure > self.peak_pressure:
            self.peak_pressure = self._pressure
        return self.alpha

    @property
    def alpha(self) -> float:
        """Current alpha, linearly interpolated over the pressure band."""
        if self._pressure <= self.pressure_low:
            return self.alpha_low
        if self._pressure >= self.pressure_high:
            return self.alpha_high
        frac = (self._pressure - self.pressure_low) / (
            self.pressure_high - self.pressure_low
        )
        return self.alpha_low + frac * (self.alpha_high - self.alpha_low)
