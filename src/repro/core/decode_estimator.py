"""Decode-length estimation for non-interactive priorities.

Decode length is unknown at scheduling time.  Section 3.4 observes that
for non-interactive jobs the TTLT deadline is much larger than service
time, so a coarse estimate suffices: keep a running history of decode
tokens generated per application and over-approximate by two standard
deviations.  Oracle and static variants exist for ablations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.core.request import Request


class DecodeLengthEstimator(ABC):
    """Estimates how many output tokens a request will generate."""

    @abstractmethod
    def estimate(self, request: Request) -> float:
        """Predicted total decode tokens for ``request``."""

    def observe(self, request: Request) -> None:
        """Feed back the true decode length of a finished request."""


class StaticDecodeEstimator(DecodeLengthEstimator):
    """Always predicts a fixed decode length (a worst-case knob)."""

    def __init__(self, tokens: float = 512.0) -> None:
        if tokens <= 0:
            raise ValueError(f"tokens must be positive, got {tokens}")
        self.tokens = float(tokens)

    def estimate(self, request: Request) -> float:
        return self.tokens


class OracleDecodeEstimator(DecodeLengthEstimator):
    """Reads the ground-truth decode length (ablation upper bound)."""

    def estimate(self, request: Request) -> float:
        return float(request.decode_tokens)


class _RunningMoments:
    """Welford accumulator of mean and variance."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))


class HistoryDecodeEstimator(DecodeLengthEstimator):
    """Per-application history: mean + ``margin_stds`` standard deviations.

    This is the estimator the paper deploys (Section 3.4 / 3.6): the
    system "maintains a running history of token generation patterns
    per application" and over-approximates by two standard deviations.
    Before enough history accumulates, a prior estimate is returned.
    """

    def __init__(
        self,
        margin_stds: float = 2.0,
        prior_tokens: float = 256.0,
        min_history: int = 10,
    ) -> None:
        """Args:
        margin_stds: Safety margin in standard deviations (paper: 2).
        prior_tokens: Estimate used until ``min_history`` completions
            of the same application have been observed.
        min_history: Observations required before trusting the history.
        """
        if margin_stds < 0:
            raise ValueError("margin_stds must be non-negative")
        self.margin_stds = float(margin_stds)
        self.prior_tokens = float(prior_tokens)
        self.min_history = int(min_history)
        self._per_app: dict[str, _RunningMoments] = {}

    def estimate(self, request: Request) -> float:
        moments = self._per_app.get(request.app_id)
        if moments is None or moments.count < self.min_history:
            return self.prior_tokens
        return moments.mean + self.margin_stds * moments.std

    def observe(self, request: Request) -> None:
        moments = self._per_app.setdefault(request.app_id, _RunningMoments())
        moments.add(float(request.decode_tokens))

    def history_size(self, app_id: str) -> int:
        """Number of completions recorded for ``app_id``."""
        moments = self._per_app.get(app_id)
        return 0 if moments is None else moments.count
