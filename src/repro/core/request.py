"""The inference request lifecycle shared by every scheduler.

A request arrives with a prompt, is prefilled in chunks, emits its
first output token when the last prefill chunk completes, then decodes
one token per engine iteration until ``decode_tokens`` outputs exist.
The dataclass records both the static trace attributes and the mutable
runtime state (progress counters, token timestamps, relegation flags)
that metrics and schedulers read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.qos import QoSSpec


class RequestPhase(enum.Enum):
    """Where a request currently is in its lifecycle."""

    PREFILL = "prefill"  # arrived, prompt not fully processed
    DECODE = "decode"  # prompt done, generating output tokens
    FINISHED = "finished"  # all output tokens produced


@dataclass
class Request:
    """One LLM inference request with QoS metadata and runtime state.

    Static trace attributes:
        request_id: Unique identifier within a trace.
        arrival_time: Simulated arrival timestamp in seconds.
        prompt_tokens: Prompt length; must be >= 1.
        decode_tokens: Number of output tokens to generate (>= 1; the
            first output token is produced by the final prefill chunk).
        qos: The QoS bucket with its SLO targets.
        app_id: Application the request belongs to (drives the
            per-application decode-length history of Section 3.4).
        important: Application hint — True for paid-tier/important
            requests, False for relegation-preferred free-tier traffic.
        token_ids: Optional concrete prompt token ids (length must
            equal ``prompt_tokens`` when present).  Only prefix-aware
            KV reuse reads them; traces without token ids behave
            exactly as before.
        session_id: Conversation this request belongs to, if any.
            Turns of one session share a token-id prefix, which is
            what the radix KV cache exploits.
        parent_request_id: The previous turn of the same session, if
            any (forensics and gateway bookkeeping; the engine does
            not read it).

    Runtime state (owned by the engine):
        prefill_done: Prompt tokens processed so far.
        decoded: Output tokens produced so far.
        first_token_time: Timestamp of output token 1 (TTFT anchor).
        completion_time: Timestamp of the final output token.
        relegated: True once eager relegation demoted the request.
        relegated_time: When the demotion happened.
        max_tbt: Largest observed gap between consecutive tokens.
        tbt_gap_misses: Inter-token gaps exceeding the TBT SLO
            (interactive tiers only) — the paper's TBT-violation
            metric.
        tbt_deadline_misses: Output tokens produced after their
            cumulative Eq. 2 deadline (interactive tiers only); late
            TTFT poisons all of these, so gap misses are the fairer
            pacing measure.
        last_token_time: Timestamp of the most recent output token.
        scheduled_first_time: When the first prefill chunk ran (queueing
            delay diagnostics).

    Resilience state (owned by the fault layer, see ``repro.faults``):
        attempts: Times the request was dispatched to a replica; >1
            means it was re-dispatched after a replica crash.
        cancelled: True once the request was abandoned (client deadline
            timeout, retry budget exhausted) and will never finish.
        cancelled_time / cancel_reason: When and why.
        shed: True when admission control refused the request under
            degraded capacity (it was never dispatched).
    """

    request_id: int
    arrival_time: float
    prompt_tokens: int
    decode_tokens: int
    qos: QoSSpec
    app_id: str = "default"
    important: bool = True
    token_ids: tuple[int, ...] | None = None
    session_id: str | None = None
    parent_request_id: int | None = None

    prefill_done: int = 0
    decoded: int = 0
    folded: int = 0  # decode tokens folded back into prefill after eviction
    evictions: int = 0
    first_token_time: float | None = None
    completion_time: float | None = None
    relegated: bool = False
    relegated_time: float | None = None
    max_tbt: float = 0.0
    tbt_gap_misses: int = 0
    tbt_deadline_misses: int = 0
    last_token_time: float | None = None
    scheduled_first_time: float | None = None
    attempts: int = 0
    cancelled: bool = False
    cancelled_time: float | None = None
    cancel_reason: str | None = None
    shed: bool = False
    _extra: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.prompt_tokens < 1:
            raise ValueError(
                f"request {self.request_id}: prompt_tokens must be >= 1"
            )
        if self.decode_tokens < 1:
            raise ValueError(
                f"request {self.request_id}: decode_tokens must be >= 1"
            )
        if (
            self.token_ids is not None
            and len(self.token_ids) != self.prompt_tokens
        ):
            raise ValueError(
                f"request {self.request_id}: token_ids length "
                f"{len(self.token_ids)} != prompt_tokens "
                f"{self.prompt_tokens}"
            )

    # --- lifecycle -----------------------------------------------------

    @property
    def prefill_target(self) -> int:
        """Tokens that must pass through prefill processing.

        Normally the prompt length; after a KV eviction the generated
        tokens are folded back in and must be recomputed too.
        """
        return self.prompt_tokens + self.folded

    @property
    def phase(self) -> RequestPhase:
        if self.decoded >= self.decode_tokens:
            return RequestPhase.FINISHED
        if self.prefill_done >= self.prefill_target:
            return RequestPhase.DECODE
        return RequestPhase.PREFILL

    @property
    def remaining_prefill(self) -> int:
        return max(0, self.prefill_target - self.prefill_done)

    @property
    def remaining_decode(self) -> int:
        return max(0, self.decode_tokens - self.decoded)

    @property
    def context_length(self) -> int:
        """Tokens currently held in the KV cache for this request."""
        return self.prefill_done + (self.decoded - self.folded)

    def evict(self) -> None:
        """Reset KV-resident state after the engine dropped this
        request's cache; everything generated so far must recompute."""
        self.folded = self.decoded
        self.prefill_done = 0
        self.evictions += 1

    def cancel(self, now: float, reason: str) -> None:
        """Mark the request as abandoned; it will never finish.

        Cancellation is terminal and idempotent: the first call wins,
        so the recorded reason reflects what actually gave up first
        (a deadline timeout racing an exhausted retry budget).
        """
        if self.is_finished:
            raise RuntimeError(
                f"request {self.request_id} already finished; "
                "cannot cancel"
            )
        if self.cancelled:
            return
        self.cancelled = True
        self.cancelled_time = now
        self.cancel_reason = reason

    @property
    def retries(self) -> int:
        """Re-dispatches after the initial attempt (>= 0)."""
        return max(0, self.attempts - 1)

    @property
    def is_interactive(self) -> bool:
        return self.qos.is_interactive

    @property
    def is_finished(self) -> bool:
        return self.phase is RequestPhase.FINISHED

    # --- deadlines (Section 3.2) ---------------------------------------

    @property
    def first_token_deadline(self) -> float:
        return self.qos.first_token_deadline(self.arrival_time)

    def token_deadline(self, token_index: int) -> float:
        return self.qos.token_deadline(self.arrival_time, token_index)

    @property
    def next_token_deadline(self) -> float:
        """Deadline of the next output token this request will emit."""
        return self.token_deadline(self.decoded + 1)

    @property
    def total_deadline(self) -> float:
        return self.qos.total_deadline(self.arrival_time, self.decode_tokens)

    # --- observed latencies ---------------------------------------------

    @property
    def ttft(self) -> float | None:
        """Observed time to first token, or None if not yet produced."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def ttlt(self) -> float | None:
        """Observed time to last token, or None if unfinished."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def violated_deadline(self) -> bool:
        """Whether the request's headline SLO was missed.

        Interactive requests are judged on TTFT (the paper tracks TBT
        separately and reports <0.1% TBT violations); non-interactive
        requests on TTLT.  An unfinished request counts as violated
        once its deadline has passed — callers evaluating mid-run
        should prefer :meth:`violated_by`.  Cancelled or shed requests
        can never meet their SLO and count as violated immediately.
        """
        if self.cancelled or self.shed:
            return True
        if self.is_interactive:
            if self.first_token_time is None:
                return True
            return self.first_token_time > self.first_token_deadline
        if self.completion_time is None:
            return True
        return self.completion_time > self.total_deadline

    def violated_by(self, now: float) -> bool:
        """SLO-violation status as observable at simulated time ``now``."""
        if self.cancelled or self.shed:
            return True
        if self.is_interactive:
            if self.first_token_time is not None:
                return self.first_token_time > self.first_token_deadline
            return now > self.first_token_deadline
        if self.completion_time is not None:
            return self.completion_time > self.total_deadline
        return now > self.total_deadline

    # --- engine callbacks -----------------------------------------------

    def record_output_token(self, time: float) -> None:
        """Register production of the next output token at ``time``."""
        if self.is_finished:
            raise RuntimeError(
                f"request {self.request_id} is finished; no more tokens"
            )
        self.decoded += 1
        if self.decoded == 1:
            self.first_token_time = time
        elif self.last_token_time is not None:
            gap = time - self.last_token_time
            if gap > self.max_tbt:
                self.max_tbt = gap
            if (
                self.is_interactive
                and self.qos.tbt_slo is not None
                and gap > self.qos.tbt_slo
            ):
                self.tbt_gap_misses += 1
        if time > self.token_deadline(self.decoded) and self.is_interactive:
            self.tbt_deadline_misses += 1
        self.last_token_time = time
        if self.decoded >= self.decode_tokens:
            self.completion_time = time

    def clone_fresh(self) -> "Request":
        """Copy with all runtime state reset (for re-running traces)."""
        return Request(
            request_id=self.request_id,
            arrival_time=self.arrival_time,
            prompt_tokens=self.prompt_tokens,
            decode_tokens=self.decode_tokens,
            qos=self.qos,
            app_id=self.app_id,
            important=self.important,
            token_ids=self.token_ids,
            session_id=self.session_id,
            parent_request_id=self.parent_request_id,
        )
