"""Dynamic chunk sizing from decode slack (Sections 3.3 and 3.6.1).

Each scheduling iteration must finish before the tightest deadline among
the decodes it carries, otherwise a TBT (or TTLT pace) violation occurs.
The chunker turns that *latency budget* into a *prefill token budget*:
the largest chunk whose predicted batch latency stays within budget.
When slack accumulates (decodes finished ahead of their deadlines, or
no strict-TBT request is active), the budget grows and throughput rises
opportunistically — the behaviour of Figures 6 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.predictor import BatchLatencyPredictor
from repro.core.request import Request
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.timing import timed
from repro.perfmodel.execution import BatchShape, PrefillChunk


@dataclass(frozen=True)
class ChunkDecision:
    """Outcome of one dynamic-chunking computation.

    Attributes:
        prefill_budget: Prefill tokens the iteration may carry.
        latency_budget: The slack-derived time budget in seconds.
        predicted_latency: Predictor output at the chosen budget.
    """

    prefill_budget: int
    latency_budget: float
    predicted_latency: float


class DynamicChunker:
    """Maximizes the prefill chunk under the decode-slack budget."""

    def __init__(
        self,
        predictor: BatchLatencyPredictor,
        min_chunk: int = 32,
        max_chunk: int = 2500,
        ni_pace_floor: float = 0.025,
        search_tolerance: int = 16,
    ) -> None:
        """Args:
        predictor: Batch latency predictor (forest or oracle).
        min_chunk: Smallest prefill budget granted when any prefill
            work is pending, so progress never stalls completely.
        max_chunk: Saturation point of the throughput curve; the paper
            picks 2500 from the Figure 4 profile.
        ni_pace_floor: Lower bound (seconds) on the per-token pace
            budget derived from non-interactive TTLT slack, so one
            late batch request cannot strangle the whole iteration.
        search_tolerance: Binary-search resolution in tokens.
        """
        if min_chunk < 1 or max_chunk < min_chunk:
            raise ValueError("need 1 <= min_chunk <= max_chunk")
        self.predictor = predictor
        self.min_chunk = int(min_chunk)
        self.max_chunk = int(max_chunk)
        self.ni_pace_floor = float(ni_pace_floor)
        self.search_tolerance = max(1, int(search_tolerance))
        #: Observability hooks; every chosen budget is reported via
        #: :meth:`Observer.on_chunk_sized` (no-op by default).
        self.observer: Observer = NULL_OBSERVER
        # Warm-start state: the (lo, hi) bracket the previous binary
        # search converged to.  The predictor is monotone in chunk
        # size (the same assumption the binary search itself rests
        # on), so when the new budget still falls in this bracket the
        # search would converge to the identical cell — we verify the
        # bracket with two predictions and skip the search.
        self._warm_bracket: tuple[int, int] | None = None

    def latency_budget(
        self, now: float, decode_requests: Iterable[Request]
    ) -> float:
        """Eq. 2-style slack: min over decodes of next-token headroom.

        Interactive decodes contribute their next-token deadline minus
        ``now``.  Non-interactive decodes contribute an even pace:
        remaining TTLT slack divided by remaining tokens, floored at
        ``ni_pace_floor``.  Returns ``inf`` when no decode constrains
        the iteration.
        """
        budget = float("inf")
        for request in decode_requests:
            if request.is_interactive:
                slack = request.next_token_deadline - now
                if slack <= 0.0:
                    # Deadline already blown (e.g. a relegated request
                    # that finally reached decode): honouring it is
                    # impossible, so pace it best-effort at the floor
                    # instead of strangling the whole iteration.
                    slack = self.ni_pace_floor
            else:
                remaining = max(1, request.remaining_decode)
                slack = (request.total_deadline - now) / remaining
                slack = max(slack, self.ni_pace_floor)
            if slack < budget:
                budget = slack
        return budget

    @timed("chunker.prefill_budget")
    def prefill_budget(
        self,
        now: float,
        decode_requests: list[Request],
        prefill_context_before: int = 0,
        extra_latency_budget: float | None = None,
        ignore_decode_slack: bool = False,
        decode_context_total: int | None = None,
    ) -> ChunkDecision:
        """Choose the prefill token budget for the next iteration.

        Args:
            now: Current simulated time.
            decode_requests: Requests that will decode this iteration.
            prefill_context_before: Context already processed for the
                prefill request that will consume the budget (affects
                attention cost, hence the prediction).
            extra_latency_budget: Additional cap on iteration latency,
                e.g. the TTFT slack of the prefill request itself.
            ignore_decode_slack: Use only ``extra_latency_budget`` as
                the time budget (Medha-style fixed-target chunking,
                deadline-unaware); decode shapes still inform the
                latency prediction.
            decode_context_total: Precomputed sum of the decode
                requests' context lengths (the engine tracks it
                incrementally); ``None`` recomputes it here.

        Returns:
            The chosen budget; ``prefill_budget`` is 0 only when even
            ``min_chunk`` does not fit the latency budget.
        """
        if ignore_decode_slack:
            if extra_latency_budget is None:
                raise ValueError(
                    "ignore_decode_slack requires extra_latency_budget"
                )
            budget = extra_latency_budget
        else:
            budget = self.latency_budget(now, decode_requests)
            if extra_latency_budget is not None:
                budget = min(budget, extra_latency_budget)

        num_decodes = len(decode_requests)
        decode_context = (
            decode_context_total
            if decode_context_total is not None
            else sum(r.context_length for r in decode_requests)
        )

        def predict(chunk: int) -> float:
            chunks = (
                [PrefillChunk(chunk, prefill_context_before)]
                if chunk > 0
                else []
            )
            return self.predictor.predict(
                BatchShape(
                    prefill_chunks=chunks,
                    num_decodes=num_decodes,
                    decode_context_total=decode_context,
                )
            )

        decision = self._decide(budget, predict)
        self.observer.on_chunk_sized(now, decision, num_decodes)
        return decision

    def _decide(self, budget: float, predict) -> ChunkDecision:
        top = self.max_chunk
        # One evaluation per distinct chunk size: the binary search
        # re-visits its final point and both bracket ends, and the
        # oracle predictor has no memo of its own to absorb that.
        evaluated: dict[int, float] = {}

        def latency(chunk: int) -> float:
            value = evaluated.get(chunk)
            if value is None:
                value = evaluated[chunk] = predict(chunk)
            return value

        top_latency = latency(top)
        if budget == float("inf") or top_latency <= budget:
            return ChunkDecision(top, budget, top_latency)
        low_latency = latency(self.min_chunk)
        if low_latency > budget:
            # Even the floor chunk busts the budget; grant the floor
            # anyway so prefill work cannot be starved forever, and let
            # the violation checker deal with the fallout.
            return ChunkDecision(self.min_chunk, budget, low_latency)

        # Warm start: consecutive iterations carry nearly the same
        # batch, so the previous search's bracket usually still
        # straddles the new budget.  The bracket cells are leaves of
        # the fixed bisection lattice over [min_chunk, max_chunk], and
        # the predictor is monotone in chunk size, so a verified
        # bracket pins the exact cell a full search would land on —
        # two predictions instead of ~log2(range/tolerance).
        bracket = self._warm_bracket
        if bracket is not None:
            warm_lo, warm_hi = bracket
            if latency(warm_lo) <= budget < latency(warm_hi):
                return ChunkDecision(warm_lo, budget, latency(warm_lo))

        # Binary search for the largest chunk within budget.  The
        # forest is piecewise constant so we verify the final choice.
        lo, hi = self.min_chunk, top
        while hi - lo > self.search_tolerance:
            mid = (lo + hi) // 2
            if latency(mid) <= budget:
                lo = mid
            else:
                hi = mid
        self._warm_bracket = (lo, hi)
        return ChunkDecision(lo, budget, latency(lo))
