"""Resilience policies: retries, deadline abandonment, load shedding.

These are pure-data knobs consumed by
:class:`repro.cluster.resilient.ResilientClusterDeployment`; keeping
them here lets experiments sweep policies without touching the
deployment wiring.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for crash-lost requests.

    A request lost to a replica crash is re-dispatched after
    ``backoff(attempt)`` seconds, where ``attempt`` counts dispatches
    already made (so the first retry waits ``base_backoff``).  Once a
    request has burned ``max_attempts`` dispatches it is cancelled
    instead — its user has given up.

    Retried requests keep their **original arrival time**, so SLO
    accounting stays honest: the latency a client saw spans every
    attempt, not just the last.
    """

    max_attempts: int = 3
    base_backoff: float = 0.5
    backoff_factor: float = 2.0
    max_backoff: float = 8.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff < 0:
            raise ValueError("base_backoff must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff < self.base_backoff:
            raise ValueError("max_backoff must be >= base_backoff")

    def backoff(self, attempt: int) -> float:
        """Delay before dispatch number ``attempt + 1``.

        ``attempt`` is the number of dispatches already made (>= 1
        when retrying).  Growth is geometric and capped:
        ``min(base * factor**(attempt-1), max_backoff)``.
        """
        if attempt < 1:
            return 0.0
        return min(
            self.base_backoff * self.backoff_factor ** (attempt - 1),
            self.max_backoff,
        )

    def exhausted(self, attempts: int) -> bool:
        return attempts >= self.max_attempts


@dataclass(frozen=True)
class ResilienceConfig:
    """Cluster-level degradation behavior under faults.

    Attributes:
        retry: Backoff schedule for crash-lost requests.
        abandonment_factor: A request still unfinished at
            ``abandonment_factor × deadline`` after arrival is
            cancelled and its KV freed (the client hung up).  ``None``
            disables timeouts.  Interactive (TBT-deadline) requests
            are only abandoned while waiting for their *first* token —
            once streaming, the client is reading the output.
        shed_free_below: When the alive fraction of replicas drops
            below this, admission sheds free-tier (``not important``)
            arrivals.  (Degradation level 1.)
        shed_batch_below: When the alive fraction drops below this,
            admission additionally sheds non-interactive arrivals,
            keeping only paid interactive traffic.  (Level 2.)
    """

    retry: RetryPolicy = RetryPolicy()
    abandonment_factor: float | None = 4.0
    shed_free_below: float = 0.75
    shed_batch_below: float = 0.25

    def __post_init__(self) -> None:
        if (
            self.abandonment_factor is not None
            and self.abandonment_factor <= 0
        ):
            raise ValueError("abandonment_factor must be positive or None")
        for name in ("shed_free_below", "shed_batch_below"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.shed_batch_below > self.shed_free_below:
            raise ValueError(
                "shed_batch_below must not exceed shed_free_below "
                "(level-2 shedding implies level 1)"
            )

    def degradation_level(self, alive_fraction: float) -> int:
        """0 = admit everything, 1 = shed free tier, 2 = also shed
        non-interactive paid traffic."""
        if alive_fraction < self.shed_batch_below:
            return 2
        if alive_fraction < self.shed_free_below:
            return 1
        return 0
