"""Fault injection and resilience (``repro.faults``).

Chaos for the simulated cluster: deterministic fault schedules
(:class:`FaultPlan`), the injector that replays them onto a
simulator, and the policies — retry backoff, deadline abandonment,
tier-aware load shedding — that
:class:`repro.cluster.resilient.ResilientClusterDeployment` applies
when faults land.  See ``docs/RESILIENCE.md``.
"""

from repro.faults.injector import FAULT_PRIORITY, FaultInjector, FaultTarget
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    ReplicaCrash,
    ReplicaSlowdownFault,
    get_default_fault_plan,
    set_default_fault_plan,
    validate_plan_dict,
)
from repro.faults.policy import ResilienceConfig, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FAULT_PRIORITY",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultTarget",
    "ReplicaCrash",
    "ReplicaSlowdownFault",
    "ResilienceConfig",
    "RetryPolicy",
    "get_default_fault_plan",
    "set_default_fault_plan",
    "validate_plan_dict",
]
