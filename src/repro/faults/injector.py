"""Turns a :class:`FaultPlan` into simulator events.

The injector is deliberately decoupled from the cluster: it only
needs a *target* exposing three hooks —

* ``on_replica_crash(replica_id)``
* ``on_replica_recover(replica_id)``
* ``on_replica_slowdown(replica_id, factor)`` (``factor`` 1.0 restores
  nominal speed)

— which :class:`repro.cluster.resilient.ResilientClusterDeployment`
implements.  Tests can pass any stub.

Fault events are scheduled at priority ``FAULT_PRIORITY`` (< 0) so a
fault taking effect at time *t* is visible to all regular work
scheduled at the same instant — a request arriving exactly when its
replica dies must not land on it.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.faults.plan import FaultPlan, ReplicaCrash, ReplicaSlowdownFault
from repro.simcore.simulator import Simulator

#: Faults fire before same-timestamp regular events (priority 0).
FAULT_PRIORITY = -10


class FaultTarget(Protocol):
    def on_replica_crash(self, replica_id: int) -> None: ...

    def on_replica_recover(self, replica_id: int) -> None: ...

    def on_replica_slowdown(self, replica_id: int, factor: float) -> None: ...


class FaultInjector:
    """Schedules every event of a plan onto a simulator once."""

    def __init__(
        self,
        simulator: Simulator,
        target: FaultTarget,
        plan: FaultPlan,
    ) -> None:
        self.simulator = simulator
        self.target = target
        self.plan = plan
        self._armed = False

    def arm(self, num_replicas: int | None = None) -> int:
        """Schedule the plan's events; returns how many were armed.

        Idempotent: a second call is a no-op (the plan is a schedule,
        not a rate).  An empty plan schedules nothing, so it cannot
        perturb event ordering — the determinism-pin guarantee.

        Args:
            num_replicas: When given, reject plans targeting replica
                indices outside ``range(num_replicas)`` — previously
                such events were silently armed and fired into
                nothingness.  Elastic fleets arm against their
                *maximum* pool size and downgrade faults on
                since-drained slots to ``fault_skipped`` trace events
                at fire time.
        """
        if self._armed:
            return 0
        if num_replicas is not None:
            out_of_range = {
                rid
                for rid in self.plan.replicas_touched()
                if rid < 0 or rid >= num_replicas
            }
            if out_of_range:
                raise ValueError(
                    f"fault plan targets replicas {sorted(out_of_range)} "
                    f"but the deployment has only {num_replicas}"
                )
        self._armed = True
        armed = 0
        for event in self.plan.events:
            if event.time < self.simulator.now:
                raise ValueError(
                    f"fault at t={event.time} is in the past "
                    f"(now={self.simulator.now})"
                )
            if isinstance(event, ReplicaCrash):
                armed += self._arm_crash(event)
            elif isinstance(event, ReplicaSlowdownFault):
                armed += self._arm_slowdown(event)
            else:  # pragma: no cover - plan types are closed
                raise TypeError(f"unknown fault event {event!r}")
        return armed

    def _arm_crash(self, event: ReplicaCrash) -> int:
        replica_id = event.replica_id
        self.simulator.schedule(
            event.time,
            lambda: self.target.on_replica_crash(replica_id),
            priority=FAULT_PRIORITY,
        )
        if math.isfinite(event.recover_after):
            self.simulator.schedule(
                event.time + event.recover_after,
                lambda: self.target.on_replica_recover(replica_id),
                priority=FAULT_PRIORITY,
            )
            return 2
        return 1

    def _arm_slowdown(self, event: ReplicaSlowdownFault) -> int:
        replica_id, factor = event.replica_id, event.factor
        self.simulator.schedule(
            event.time,
            lambda: self.target.on_replica_slowdown(replica_id, factor),
            priority=FAULT_PRIORITY,
        )
        self.simulator.schedule(
            event.time + event.duration,
            lambda: self.target.on_replica_slowdown(replica_id, 1.0),
            priority=FAULT_PRIORITY,
        )
        return 2
