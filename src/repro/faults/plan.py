"""Deterministic fault schedules (the ``FaultPlan``).

A :class:`FaultPlan` is a declarative, fully deterministic list of
infrastructure faults to inject into a simulated cluster: replica
crashes (with a recovery delay) and transient slowdowns (stragglers).
Plans come from three places:

* hand-written JSON files (``repro run --fault-plan plan.json``,
  linted by ``repro faults validate``);
* the :meth:`FaultPlan.poisson` chaos generator, which draws
  crash/recover cycles from exponential MTBF/MTTR distributions using
  a named :mod:`repro.simcore.rng` stream, so a (seed, mtbf, mttr)
  triple always yields the same schedule;
* tests, which construct event dataclasses directly.

An **empty plan is a strict no-op**: attaching it to a deployment
must leave every simulation byte-identical (the determinism pin test
enforces this), which is why injection is event-driven rather than a
per-iteration check.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

import numpy as np


class FaultPlanError(ValueError):
    """A fault plan file or payload is malformed."""


@dataclass(frozen=True)
class ReplicaCrash:
    """Replica ``replica_id`` fails at ``time``.

    Attributes:
        time: Simulated seconds at which the crash fires.
        replica_id: Index of the replica in the deployment.
        recover_after: Seconds of downtime before the replica rejoins
            with a cold cache; ``inf`` means it never recovers.
    """

    time: float
    replica_id: int
    recover_after: float = math.inf

    kind = "crash"

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind,
            "time": self.time,
            "replica": self.replica_id,
        }
        if math.isfinite(self.recover_after):
            payload["recover_after"] = self.recover_after
        return payload


@dataclass(frozen=True)
class ReplicaSlowdownFault:
    """Replica ``replica_id`` runs ``factor``× slower for ``duration``."""

    time: float
    replica_id: int
    duration: float
    factor: float = 3.0

    kind = "slowdown"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "time": self.time,
            "replica": self.replica_id,
            "duration": self.duration,
            "factor": self.factor,
        }


FaultEvent = ReplicaCrash | ReplicaSlowdownFault

#: Accepted ``kind`` discriminators in serialized plans.
FAULT_KINDS = ("crash", "slowdown")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of fault events."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, e.replica_id))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def replicas_touched(self) -> set[int]:
        return {event.replica_id for event in self.events}

    # --- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    def to_file(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Parse a plan payload; raises :class:`FaultPlanError` with
        every problem found (not just the first)."""
        errors = validate_plan_dict(payload)
        if errors:
            raise FaultPlanError("; ".join(errors))
        events: list[FaultEvent] = []
        for entry in payload.get("events", []):
            if entry["kind"] == "crash":
                events.append(ReplicaCrash(
                    time=float(entry["time"]),
                    replica_id=int(entry["replica"]),
                    recover_after=float(
                        entry.get("recover_after", math.inf)
                    ),
                ))
            else:
                events.append(ReplicaSlowdownFault(
                    time=float(entry["time"]),
                    replica_id=int(entry["replica"]),
                    duration=float(entry["duration"]),
                    factor=float(entry.get("factor", 3.0)),
                ))
        return cls(events=tuple(events))

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        text = Path(path).read_text()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"not valid JSON: {error}") from error
        return cls.from_dict(payload)

    # --- generation ------------------------------------------------------

    @classmethod
    def poisson(
        cls,
        num_replicas: int,
        duration: float,
        mtbf: float,
        mttr: float,
        rng: np.random.Generator,
        slowdown_mtbf: float | None = None,
        slowdown_duration: float = 10.0,
        slowdown_factor: float = 3.0,
        spare_replica: int | None = 0,
    ) -> "FaultPlan":
        """Draw a chaos schedule from exponential MTBF/MTTR clocks.

        Each replica alternates exponential up-times (mean ``mtbf``)
        and down-times (mean ``mttr``) over ``[0, duration)``; when
        ``slowdown_mtbf`` is set, straggler windows are drawn the same
        way.  ``spare_replica`` (default replica 0) never faults so a
        plan can never take the whole fleet down at once — pass
        ``None`` to allow total outages.

        Determinism: draws consume ``rng`` in replica order, so the
        same generator state always yields the same plan (use a named
        :class:`~repro.simcore.rng.RngStreams` stream).
        """
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if duration <= 0 or mtbf <= 0 or mttr <= 0:
            raise ValueError("duration, mtbf and mttr must be positive")
        events: list[FaultEvent] = []
        for replica in range(num_replicas):
            if spare_replica is not None and replica == spare_replica:
                continue
            t = float(rng.exponential(mtbf))
            while t < duration:
                downtime = float(rng.exponential(mttr))
                events.append(ReplicaCrash(
                    time=t, replica_id=replica, recover_after=downtime,
                ))
                t += downtime + float(rng.exponential(mtbf))
            if slowdown_mtbf is not None:
                t = float(rng.exponential(slowdown_mtbf))
                while t < duration:
                    events.append(ReplicaSlowdownFault(
                        time=t,
                        replica_id=replica,
                        duration=slowdown_duration,
                        factor=slowdown_factor,
                    ))
                    t += slowdown_duration + float(
                        rng.exponential(slowdown_mtbf)
                    )
        return cls(events=tuple(events))


def validate_plan_dict(
    payload: Any, num_replicas: int | None = None
) -> list[str]:
    """Lint a serialized fault plan; returns human-readable errors.

    Used by ``repro faults validate`` and :meth:`FaultPlan.from_dict`.
    An empty list means the payload is a valid plan.  When
    ``num_replicas`` is given, replica indices are range-checked too.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"plan must be a JSON object, got {type(payload).__name__}"]
    unknown = set(payload) - {"events"}
    if unknown:
        errors.append(f"unknown top-level keys: {sorted(unknown)}")
    events = payload.get("events")
    if events is None:
        errors.append("missing required key 'events' (use [] for none)")
        return errors
    if not isinstance(events, list):
        errors.append(f"'events' must be a list, got {type(events).__name__}")
        return errors

    def check_number(
        entry: dict, where: str, key: str, minimum: float | None = None,
        required: bool = True, strict: bool = False,
    ) -> None:
        if key not in entry:
            if required:
                errors.append(f"{where}: missing '{key}'")
            return
        value = entry[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(f"{where}: '{key}' must be a number, got {value!r}")
            return
        if not math.isfinite(value):
            errors.append(f"{where}: '{key}' must be finite, got {value!r}")
            return
        if minimum is not None:
            if strict and value <= minimum:
                errors.append(f"{where}: '{key}' must be > {minimum}")
            elif not strict and value < minimum:
                errors.append(f"{where}: '{key}' must be >= {minimum}")

    for index, entry in enumerate(events):
        where = f"events[{index}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: must be an object, got {entry!r}")
            continue
        kind = entry.get("kind")
        if kind not in FAULT_KINDS:
            errors.append(
                f"{where}: unknown kind {kind!r}; options: {FAULT_KINDS}"
            )
            continue
        check_number(entry, where, "time", minimum=0.0)
        replica = entry.get("replica")
        if replica is None:
            errors.append(f"{where}: missing 'replica'")
        elif isinstance(replica, bool) or not isinstance(replica, int):
            errors.append(
                f"{where}: 'replica' must be an integer, got {replica!r}"
            )
        elif replica < 0:
            errors.append(f"{where}: 'replica' must be >= 0")
        elif num_replicas is not None and replica >= num_replicas:
            errors.append(
                f"{where}: replica {replica} out of range for a "
                f"{num_replicas}-replica deployment"
            )
        if kind == "crash":
            check_number(entry, where, "recover_after", minimum=0.0,
                         required=False, strict=True)
            extra = set(entry) - {"kind", "time", "replica", "recover_after"}
        else:
            check_number(entry, where, "duration", minimum=0.0, strict=True)
            check_number(entry, where, "factor", minimum=0.0,
                         required=False, strict=True)
            extra = set(entry) - {"kind", "time", "replica", "duration",
                                  "factor"}
        if extra:
            errors.append(f"{where}: unknown keys {sorted(extra)}")
    return errors


# --- process-wide default plan (the CLI's --fault-plan) ----------------

_DEFAULT_PLAN: FaultPlan | None = None


def get_default_fault_plan() -> FaultPlan | None:
    """The plan resilient deployments adopt when none is passed."""
    return _DEFAULT_PLAN


def set_default_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install a process-wide default fault plan; returns the previous.

    Mirrors :func:`repro.obs.set_default_observer`: the CLI installs
    the ``--fault-plan`` file here so fault-aware experiments pick it
    up without threading an argument through every driver.
    """
    global _DEFAULT_PLAN
    previous = _DEFAULT_PLAN
    _DEFAULT_PLAN = plan
    return previous


def _iter_events(plan: FaultPlan) -> Iterable[FaultEvent]:
    return iter(plan.events)
