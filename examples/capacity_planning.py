#!/usr/bin/env python3
"""Capacity planning: how many GPUs does your workload need?

The scenario the paper's introduction motivates: a provider serves
three applications — an interactive chat product, a user-facing video
summarizer, and overnight email-insight batch jobs — and must decide
between siloed per-tier clusters and a shared QoServe deployment.

This example measures per-replica goodput for (a) each tier served in
its own tuned silo and (b) the shared QoServe deployment, then prices
a target cluster load in GPUs both ways.

Run:
    python examples/capacity_planning.py [total_qps]
"""

import sys

from repro import AZURE_CODE, replicas_needed
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import goodput_search
from repro.core.qos import Q1_INTERACTIVE, Q2_RELAXED, Q3_BATCH
from repro.workload.tiers import TierMix

#: Tier -> (silo chunk size).  The strict tier needs small chunks for
#: its 50 ms TBT; throughput tiers run big chunks (Section 4's setup).
SILO_PLAN = {
    "Q1": (Q1_INTERACTIVE, 256),
    "Q2": (Q2_RELAXED, 2048),
    "Q3": (Q3_BATCH, 2048),
}

NUM_REQUESTS = 700  # per capacity probe; raise for tighter estimates


def main(total_qps: float = 24.0) -> None:
    execution_model = get_execution_model("llama3-8b")
    per_tier_qps = total_qps / 3.0
    print(f"target: {total_qps:.0f} QPS of AzCode, equal thirds "
          f"across Q1/Q2/Q3 on Llama3-8B A100 replicas\n")

    # --- siloed plan -----------------------------------------------------
    silo_gpus = 0
    print("siloed deployment (Sarathi FCFS per tier):")
    for name, (tier, chunk) in SILO_PLAN.items():
        mix = TierMix(tiers=(tier,), weights=(1.0,), app_names=(name,))
        capacity = goodput_search(
            "fcfs", execution_model, AZURE_CODE,
            num_requests=NUM_REQUESTS, mix=mix, chunk_size=chunk,
        )
        replicas = replicas_needed(per_tier_qps, capacity.max_qps)
        silo_gpus += replicas * execution_model.tp_degree
        print(f"  {name}: goodput {capacity.max_qps:5.2f} QPS/replica "
              f"(chunk {chunk:4d}) -> {replicas} replicas")
    print(f"  total: {silo_gpus} GPUs\n")

    # --- shared QoServe plan ----------------------------------------------
    capacity = goodput_search(
        "qoserve", execution_model, AZURE_CODE,
        num_requests=NUM_REQUESTS,
    )
    replicas = replicas_needed(total_qps, capacity.max_qps)
    shared_gpus = replicas * execution_model.tp_degree
    print("shared QoServe deployment:")
    print(f"  goodput {capacity.max_qps:5.2f} QPS/replica "
          f"-> {replicas} replicas = {shared_gpus} GPUs\n")

    saving = 100.0 * (silo_gpus - shared_gpus) / silo_gpus
    print(f"GPU saving from co-scheduling: {saving:.0f}% "
          f"({silo_gpus} -> {shared_gpus})")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 24.0)
