#!/usr/bin/env python3
"""Trace toolkit: characterize, persist, replay and export.

A tour of the workload tooling around the simulator:

1. build a synthetic Azure Code trace and print its Table 2-style
   characterization;
2. write it in the public Azure CSV layout and reload it (the same
   loader ingests the real Azure LLM inference traces);
3. replay it through QoServe and export the run summary as JSON and
   the per-tier table as CSV.

Run:
    python examples/trace_toolkit.py [output_dir]
"""

import sys
from pathlib import Path

from repro import AZURE_CODE, PoissonArrivals, TierAssigner, TraceBuilder
from repro.experiments.configs import get_execution_model
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import make_scheduler, run_replica_trace
from repro.metrics.export import result_to_csv, summary_to_json
from repro.workload.analysis import analyze_trace
from repro.workload.azure_csv import load_azure_trace, write_azure_csv


def main(output_dir: str = "trace_toolkit_output") -> None:
    out = Path(output_dir)
    out.mkdir(exist_ok=True)

    # 1. Build and characterize.
    trace = TraceBuilder(
        AZURE_CODE,
        arrivals=PoissonArrivals(3.0),
        tier_assigner=TierAssigner(low_priority_fraction=0.1),
        seed=11,
    ).build(800)
    print("--- trace characterization ---")
    print(analyze_trace(trace).render())

    # 2. Round-trip through the Azure CSV layout.
    csv_path = out / "trace.csv"
    write_azure_csv(trace, csv_path)
    reloaded = load_azure_trace(csv_path, seed=11)
    print(f"\nwrote {csv_path} and reloaded {len(reloaded)} requests")

    # 3. Replay and export.
    execution_model = get_execution_model("llama3-8b")
    scheduler = make_scheduler("qoserve", execution_model)
    summary, _ = run_replica_trace(execution_model, scheduler, reloaded)

    summary_path = out / "run_summary.json"
    summary_to_json(summary, summary_path)

    table = ExperimentResult(
        experiment="trace-toolkit", title="per-tier replay results"
    )
    for tier in ("Q1", "Q2", "Q3"):
        table.rows.append(
            {
                "tier": tier,
                "p50_s": summary.tier_percentile(tier, 0.50),
                "p99_s": summary.tier_percentile(tier, 0.99),
                "viol_pct": summary.violations.tier(tier),
            }
        )
    csv_out = out / "per_tier.csv"
    result_to_csv(table, csv_out)

    print("\n--- replay ---")
    print(table.render())
    print(f"\nviolations: {summary.violations.overall_pct:.2f}% | "
          f"exports: {summary_path}, {csv_out}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "trace_toolkit_output")
