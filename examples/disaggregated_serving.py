#!/usr/bin/env python3
"""Prefill/decode disaggregation with QoS-aware prefill scheduling.

The Section 4.1.3 scenario: prefill nodes run with a large 8K chunk
budget (no colocated decodes to pace), feeding a fixed decode pool.
QoServe's hybrid prioritization and eager relegation still apply on
the prefill side; this example measures how many prefill replicas each
policy needs for a target load.

Run:
    python examples/disaggregated_serving.py
"""

from repro import AZURE_CONV, DisaggregatedDeployment, QoServeConfig
from repro.cluster.capacity import find_max_goodput, stable_drain
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import build_trace, scheduler_factory

TARGET_QPS = 30.0
CHUNK = 8192
NUM_REQUESTS = 800


def prefill_goodput(scheme: str, execution_model) -> float:
    base = build_trace(AZURE_CONV, qps=1.0, num_requests=NUM_REQUESTS,
                       seed=3)
    if scheme == "qoserve":
        kwargs = {"qoserve_config": QoServeConfig(
            max_chunk_size=CHUNK, fixed_chunk_size=CHUNK)}
    else:
        kwargs = {"chunk_size": CHUNK}

    def evaluate(qps):
        deployment = DisaggregatedDeployment(
            execution_model,
            scheduler_factory(scheme, execution_model, **kwargs),
        )
        trace = base.scaled_arrivals(qps)
        deployment.submit_trace(trace)
        deployment.run()
        summary = deployment.summarize()
        arrivals = [r.arrival_time for r in trace]
        summary.drain_time = deployment.simulator.now - max(arrivals)
        summary.arrival_span = max(arrivals) - min(arrivals)
        return summary

    return find_max_goodput(
        evaluate, qps_high=20.0, tolerance=0.25,
        extra_criterion=stable_drain,
    ).max_qps


def main() -> None:
    execution_model = get_execution_model("llama3-8b")
    print(f"disaggregated serving of AzConv at {TARGET_QPS:.0f} QPS, "
          f"prefill chunk {CHUNK}\n")
    print(f"{'policy':16s} {'goodput/replica':>16s} "
          f"{'prefill replicas':>17s}")
    print("-" * 52)
    for scheme in ("fcfs", "edf", "qoserve"):
        goodput = prefill_goodput(scheme, execution_model)
        replicas = -(-TARGET_QPS // max(goodput, 1e-9))
        name = f"Sarathi-{scheme.upper()}" if scheme != "qoserve" \
            else "QoServe"
        print(f"{name:16s} {goodput:13.2f} QPS {int(replicas):17d}")
    print("\nDeadline-aware prefill scheduling (EDF/QoServe) needs far "
          "fewer\nprefill replicas than FCFS — the Figure 8 claim.  At "
          "the 8K chunk\nthere is no dynamic-chunking headroom, so EDF "
          "and QoServe run close.")


if __name__ == "__main__":
    main()
