#!/usr/bin/env python3
"""Quickstart: serve a mixed-QoS workload on one simulated replica.

Builds a 500-request trace of the Azure Code workload split across the
paper's three QoS tiers (Table 3), serves it with the QoServe scheduler
on a simulated Llama3-8B / A100 replica, and prints the latency and
SLO-violation summary.

Run:
    python examples/quickstart.py
"""

from repro import (
    A100_80GB,
    AZURE_CODE,
    ExecutionModel,
    LLAMA3_8B,
    PoissonArrivals,
    QoServeScheduler,
    ReplicaEngine,
    Simulator,
    TierAssigner,
    TraceBuilder,
    summarize_run,
)


def main() -> None:
    # 1. The deployment: Llama3-8B on a single A100 (Table 1, row 1).
    execution_model = ExecutionModel(LLAMA3_8B, A100_80GB)

    # 2. The workload: Azure Code lengths, Poisson arrivals at 3 QPS,
    #    requests split equally across Q1/Q2/Q3 (Table 3).
    trace = TraceBuilder(
        AZURE_CODE,
        arrivals=PoissonArrivals(qps=3.0),
        tier_assigner=TierAssigner(),
        seed=7,
    ).build(500)

    # 3. The scheduler: full QoServe — hybrid prioritization, dynamic
    #    chunking with the trained random-forest predictor, eager
    #    relegation, selective preemption.
    scheduler = QoServeScheduler(execution_model)

    # 4. Simulate one replica to completion.
    simulator = Simulator()
    engine = ReplicaEngine(simulator, execution_model, scheduler)
    for request in trace:
        engine.submit(request)
    simulator.run()

    # 5. Report.
    summary = summarize_run(engine.submitted, now=simulator.now)
    print(f"requests: {summary.num_requests}  "
          f"finished: {summary.finished}")
    print(f"simulated span: {simulator.now:.0f}s, "
          f"iterations: {engine.iterations_run}")
    print()
    print("governing latency per tier (p50 / p99 seconds):")
    for tier in ("Q1", "Q2", "Q3"):
        p50 = summary.tier_percentile(tier, 0.50)
        p99 = summary.tier_percentile(tier, 0.99)
        print(f"  {tier}: {p50:8.2f} / {p99:8.2f}")
    print()
    violations = summary.violations
    print(f"SLO violations: {violations.overall_pct:.2f}% overall "
          f"(Q1 {violations.tier('Q1'):.1f}%, "
          f"Q2 {violations.tier('Q2'):.1f}%, "
          f"Q3 {violations.tier('Q3'):.1f}%)")
    print(f"TBT deadline misses among on-time interactive requests: "
          f"{violations.tbt_miss_pct:.2f}%")
    print(f"relegated: {violations.relegated_pct:.2f}%")


if __name__ == "__main__":
    main()
