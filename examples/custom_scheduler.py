#!/usr/bin/env python3
"""Extending the library: plug in your own scheduling policy.

Implements a "Strict-Tier-First" scheduler in ~20 lines on top of the
:class:`FixedChunkScheduler` base — requests are served interactive
tier first, FCFS within a tier — and races it against the built-in
policies on the same trace.  This is the extension surface a
downstream scheduler researcher would use.

Run:
    python examples/custom_scheduler.py
"""

from repro import AZURE_CONV, PoissonArrivals, TierAssigner, TraceBuilder
from repro.core.request import Request
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import make_scheduler, run_replica_trace
from repro.schedulers.base import FixedChunkScheduler


class StrictTierFirstScheduler(FixedChunkScheduler):
    """Interactive requests always preempt non-interactive prefill.

    A plausible-looking policy that production teams actually deploy —
    and a useful foil: it protects Q1 unconditionally but lets the Q2
    backlog grow unboundedly under load, because unlike QoServe it
    never reasons about the relaxed tiers' deadlines.
    """

    name = "StrictTierFirst"

    def priority(self, request: Request, now: float) -> float:
        tier_rank = 0.0 if request.is_interactive else 1.0
        # Large constant separates the tiers; arrival breaks ties.
        return tier_rank * 1e9 + request.arrival_time


def main() -> None:
    execution_model = get_execution_model("llama3-8b")
    trace_builder = TraceBuilder(
        AZURE_CONV,
        arrivals=PoissonArrivals(qps=4.0),
        tier_assigner=TierAssigner(),
        seed=21,
    )

    contenders = {
        "StrictTierFirst": lambda: StrictTierFirstScheduler(chunk_size=256),
        "Sarathi-FCFS": lambda: make_scheduler("fcfs", execution_model),
        "Sarathi-EDF": lambda: make_scheduler("edf", execution_model),
        "QoServe": lambda: make_scheduler("qoserve", execution_model),
    }

    print(f"{'scheduler':16s} {'viol%':>7s} {'Q1 p99':>8s} "
          f"{'Q2 p99':>9s} {'Q3 p99':>9s}")
    print("-" * 55)
    for name, factory in contenders.items():
        trace = trace_builder.build(1500)
        summary, _ = run_replica_trace(
            execution_model, factory(), trace
        )
        print(f"{name:16s} {summary.violations.overall_pct:7.2f} "
              f"{summary.tier_percentile('Q1', 0.99):8.2f} "
              f"{summary.tier_percentile('Q2', 0.99):9.1f} "
              f"{summary.tier_percentile('Q3', 0.99):9.1f}")
    print("\nStrictTierFirst keeps Q1 pristine but starves Q2 under "
          "load;\nQoServe balances all three tiers' deadlines.")


if __name__ == "__main__":
    main()
