#!/usr/bin/env python3
"""Overload survival: graceful degradation with application hints.

Models the Section 4.3 scenario: a diurnal load that repeatedly bursts
to 2.5x the trough rate, with 20% of traffic marked as free-tier via
application hints.  Compares Sarathi-FCFS, Sarathi-EDF and QoServe on
the same replica and shows how eager relegation sheds just enough
low-priority work to keep every important request within SLO.

Run:
    python examples/overload_survival.py
"""

from repro import DiurnalArrivals, AZURE_CODE, TierAssigner, TraceBuilder
from repro.experiments.configs import get_execution_model
from repro.experiments.runner import make_scheduler, run_replica_trace
from repro.metrics.latency import rolling_percentile

NUM_REQUESTS = 2500
SCHEMES = ("fcfs", "edf", "qoserve")


def build_trace():
    return TraceBuilder(
        AZURE_CODE,
        arrivals=DiurnalArrivals(low_qps=2.0, high_qps=5.0,
                                 phase_duration=120.0),
        tier_assigner=TierAssigner(low_priority_fraction=0.20),
        seed=13,
    ).build(NUM_REQUESTS)


def main() -> None:
    execution_model = get_execution_model("llama3-8b")
    print(f"diurnal load 2.0 <-> 5.0 QPS, {NUM_REQUESTS} requests, "
          f"20% free-tier\n")
    header = (f"{'scheme':14s} {'viol%':>7s} {'important%':>11s} "
              f"{'free%':>7s} {'relegated%':>11s} {'Q1 burst p95':>13s}")
    print(header)
    print("-" * len(header))
    for scheme in SCHEMES:
        trace = build_trace()
        scheduler = make_scheduler(scheme, execution_model)
        summary, engine = run_replica_trace(
            execution_model, scheduler, trace
        )
        violations = summary.violations
        # Peak of the rolling p95 across Q1's important requests: the
        # "did the burst hurt paying users?" number.  (p95 rather than
        # p99: a 60-second window holds only a few dozen requests, so
        # p99 would be a single-sample statistic.)
        q1_important = [
            r for r in trace if r.qos.name == "Q1" and r.important
        ]
        _, series = rolling_percentile(q1_important, 0.95, window=60.0)
        peak = max(x for x in series if x == x)
        name = f"Sarathi-{scheme.upper()}" if scheme != "qoserve" \
            else "QoServe"
        print(f"{name:14s} {violations.overall_pct:7.2f} "
              f"{violations.important_pct:11.2f} "
              f"{violations.low_priority_pct:7.2f} "
              f"{violations.relegated_pct:11.2f} "
              f"{peak:12.1f}s")
    print("\nQoServe relegates a sliver of free-tier traffic during the "
          "bursts;\nimportant requests ride through every peak.")


if __name__ == "__main__":
    main()
